"""Benchmark regenerating Figure 11 of the paper.

Figure 11: provenance-query bandwidth with and without distributed result caching.

The benchmark runs the figure's experiment once (simulations are
deterministic, so repeated timing rounds would only measure the simulator's
Python overhead), records the reproduced series as extra benchmark info, and
asserts that the paper's qualitative shape checks hold.

Run with::

    pytest benchmarks/bench_fig11_query_caching_bandwidth.py --benchmark-only
"""

from __future__ import annotations

from repro.experiments.figures import figure_11_caching_bandwidth
from repro.experiments.reporting import check_shape


def test_figure_11_caching_bandwidth(benchmark):
    result = benchmark.pedantic(
        lambda: figure_11_caching_bandwidth(**{}), rounds=1, iterations=1
    )
    benchmark.extra_info["figure"] = result.figure_id
    benchmark.extra_info["series_means"] = {
        label: round(value, 6) for label, value in result.summary().items()
    }
    failed = [description for description, holds in check_shape(result) if not holds]
    assert not failed, (
        f"Figure 11: shape checks failed: {failed}; "
        f"series means: {result.summary()}"
    )
