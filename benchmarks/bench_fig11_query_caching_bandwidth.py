"""Benchmark regenerating Figure 11 of the paper: provenance query bandwidth with and without result caching.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig11_caching_bandwidth`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig11_query_caching_bandwidth.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_11_caching_bandwidth = make_figure_benchmark("fig11_caching_bandwidth")
