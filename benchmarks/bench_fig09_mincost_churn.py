"""Benchmark regenerating Figure 9 of the paper: MINCOST maintenance bandwidth under stub-link churn.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig09_mincost_churn`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig09_mincost_churn.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_09_mincost_churn = make_figure_benchmark("fig09_mincost_churn")
