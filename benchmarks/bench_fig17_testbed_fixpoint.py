"""Benchmark regenerating Figure 17 of the paper: PATHVECTOR fixpoint latency vs testbed network size.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig17_testbed_fixpoint`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig17_testbed_fixpoint.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_17_testbed_fixpoint = make_figure_benchmark("fig17_testbed_fixpoint")
