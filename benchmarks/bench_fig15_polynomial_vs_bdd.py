"""Benchmark regenerating Figure 15 of the paper.

Figure 15: query bandwidth for POLYNOMIAL vs BDD (condensed) provenance results.

The benchmark runs the figure's experiment once (simulations are
deterministic, so repeated timing rounds would only measure the simulator's
Python overhead), records the reproduced series as extra benchmark info, and
asserts that the paper's qualitative shape checks hold.

Run with::

    pytest benchmarks/bench_fig15_polynomial_vs_bdd.py --benchmark-only
"""

from __future__ import annotations

from repro.experiments.figures import figure_15_polynomial_vs_bdd
from repro.experiments.reporting import check_shape


def test_figure_15_polynomial_vs_bdd(benchmark):
    result = benchmark.pedantic(
        lambda: figure_15_polynomial_vs_bdd(**{}), rounds=1, iterations=1
    )
    benchmark.extra_info["figure"] = result.figure_id
    benchmark.extra_info["series_means"] = {
        label: round(value, 6) for label, value in result.summary().items()
    }
    failed = [description for description, holds in check_shape(result) if not holds]
    assert not failed, (
        f"Figure 15: shape checks failed: {failed}; "
        f"series means: {result.summary()}"
    )
