"""Benchmark regenerating Figure 15 of the paper: query bandwidth for POLYNOMIAL vs BDD provenance encodings.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig15_polynomial_vs_bdd`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig15_polynomial_vs_bdd.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_15_polynomial_vs_bdd = make_figure_benchmark("fig15_polynomial_vs_bdd")
