"""Sharded simulation engine speedup: one fixpoint, N worker processes.

Benchmarks the conservative windowed sharded engine
(:mod:`repro.net.sharding`) against the single-process engine on the
paper-scale fixpoint workload of the ``scale_sweep`` scenario: PATHVECTOR
(default) or MINCOST with reference provenance on a clustered topology.
The flagship configuration is the **512-node PATHVECTOR fixpoint at
shards ∈ {1, 2, 4}** (several minutes of simulated routing — run smaller
sizes for a quick look)::

    PYTHONPATH=src python benchmarks/bench_shard_speedup.py              # 512 nodes
    PYTHONPATH=src python benchmarks/bench_shard_speedup.py 128          # quicker
    PYTHONPATH=src python benchmarks/bench_shard_speedup.py 128 --shards 1 2 4 8

Two quantities are reported per shard count:

* **wall-clock** — machine-dependent (scales with available cores; a
  CPU-quota'd single-core container shows ~1x regardless of shards);
* **attainable speedup** — total executed events over critical-path
  events (the per-window maximum across shards, summed).  Windows are
  barriers, so the most-loaded shard bounds each window's wall-clock;
  this ratio is what the run's schedule admits on enough cores.  It is
  fully deterministic, so it is what this benchmark *asserts* (≥2x at 4
  shards on the default workload); wall-clock is printed as evidence and
  asserted by the same bar only when ``--assert-wall`` is passed (the
  README scaling table is produced on a multi-core machine with it on).

Result identity is always asserted: merged summaries — fixpoint time,
every traffic/planner/provenance counter, per-host receive counters —
must be equal across all shard counts, and for sizes ≤ 128 the full
per-node state digests (table rows, annotations, engine counters) too.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from typing import Any, Dict, List, Optional

from repro.core.api import ExspanNetwork
from repro.core.config import ExspanConfig
from repro.core.modes import ProvenanceMode
from repro.experiments.trials import MODE_KEYS, PROGRAM_FACTORIES, scale_topology
from repro.net.sharding import ShardedExspanNetwork, collect_digest, collect_summary

DEFAULT_SIZE = 512
DEFAULT_SHARDS = (1, 2, 4)
#: Full per-node digests are compared up to this size (they are large).
DIGEST_MAX_SIZE = 128
#: The deterministic acceptance bar at >= 4 shards on the default workload.
MIN_ATTAINABLE_AT_4 = 2.0


def run_once(
    program: str,
    size: int,
    shards: int,
    mode: str = "ref",
    seed: int = 0,
) -> Dict[str, Any]:
    """One seeded fixpoint at *shards* workers; returns metrics + state."""
    topology = scale_topology(size, seed)
    program_factory = PROGRAM_FACTORIES[program]
    gc.collect()
    started = time.perf_counter()
    if shards <= 1:
        network = ExspanNetwork(
            topology,
            program_factory(),
            config=ExspanConfig(mode=MODE_KEYS[mode], seed=seed),
        )
        network.seed_links()
        network.run_to_fixpoint()
        elapsed = time.perf_counter() - started
        summary = collect_summary(network)
        digest = (
            collect_digest(network) if topology.node_count() <= DIGEST_MAX_SIZE else None
        )
        parallelism: Dict[str, Any] = {}
    else:
        with ShardedExspanNetwork(
            topology, program_factory(), mode=MODE_KEYS[mode], shards=shards, seed=seed
        ) as sharded:
            sharded.seed_links()
            sharded.run_to_fixpoint()
            elapsed = time.perf_counter() - started
            summary = sharded.summary()
            digest = (
                sharded.digest() if topology.node_count() <= DIGEST_MAX_SIZE else None
            )
            parallelism = sharded.parallelism_report()
    return {
        "shards": shards,
        "seconds": elapsed,
        "summary": summary,
        "digest": digest,
        "parallelism": parallelism,
    }


def run_matrix(
    program: str,
    size: int,
    shard_counts: List[int],
    mode: str = "ref",
    seed: int = 0,
    assert_wall: bool = False,
) -> List[Dict[str, Any]]:
    """Run every shard count, assert identity, print the scaling table."""
    rows = [run_once(program, size, shards, mode=mode, seed=seed) for shards in shard_counts]
    reference = rows[0]
    for row in rows[1:]:
        assert row["summary"] == reference["summary"], (
            f"shards={row['shards']} summary diverged from "
            f"shards={reference['shards']}"
        )
        if row["digest"] is not None and reference["digest"] is not None:
            assert row["digest"] == reference["digest"], (
                f"shards={row['shards']} node state diverged"
            )

    base_wall = reference["seconds"]
    traffic = reference["summary"]["traffic"]
    print(
        f"\n{program} fixpoint, {size} nodes, mode={mode}: "
        f"{traffic['total_messages']} messages, "
        f"fixpoint at t={reference['summary']['fixpoint_time']:.3f}s (simulated)"
    )
    print(f"{'shards':>7} {'wall (s)':>10} {'speedup':>8} {'windows':>8} "
          f"{'attainable':>11}  identity")
    for row in rows:
        speedup = base_wall / row["seconds"] if row["seconds"] else float("inf")
        windows = row["parallelism"].get("windows", "-")
        attainable = row["parallelism"].get("attainable_speedup")
        attainable_text = f"{attainable:10.2f}x" if attainable else f"{'-':>11}"
        print(
            f"{row['shards']:>7} {row['seconds']:>10.2f} {speedup:>7.2f}x "
            f"{windows:>8} {attainable_text}  ok"
        )

    for row in rows:
        if row["shards"] >= 4 and row["parallelism"]:
            attainable = row["parallelism"]["attainable_speedup"]
            assert attainable >= MIN_ATTAINABLE_AT_4, (
                f"attainable speedup {attainable:.2f}x at {row['shards']} shards "
                f"is below the {MIN_ATTAINABLE_AT_4}x bar"
            )
            if assert_wall:
                speedup = base_wall / row["seconds"]
                assert speedup >= MIN_ATTAINABLE_AT_4, (
                    f"wall-clock speedup {speedup:.2f}x at {row['shards']} shards "
                    f"is below the {MIN_ATTAINABLE_AT_4}x bar (is this machine "
                    f"multi-core?)"
                )
    return rows


# ---------------------------------------------------------------------- #
# pytest smoke cases (tiny sizes; no timing assertions)
# ---------------------------------------------------------------------- #
def test_sharded_fixpoint_identity_smoke():
    """2- and 4-shard 64-node fixpoints match the serial engine exactly."""
    rows = run_matrix("pathvector", 64, [1, 2, 4], mode="ref")
    assert rows[0]["digest"] is not None  # digests compared at this size


def test_attainable_parallelism_smoke():
    """The windowed schedule admits real parallelism even at small scale."""
    reference = run_once("mincost", 64, 1)
    sharded = run_once("mincost", 64, 4)
    assert sharded["summary"] == reference["summary"]
    assert sharded["parallelism"]["attainable_speedup"] > 1.5


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("size", nargs="?", type=int, default=DEFAULT_SIZE,
                        help=f"topology size in nodes (default {DEFAULT_SIZE})")
    parser.add_argument("--shards", type=int, nargs="+", default=list(DEFAULT_SHARDS),
                        help="shard counts to sweep (default: 1 2 4)")
    parser.add_argument("--program", choices=sorted(PROGRAM_FACTORIES), default="pathvector")
    parser.add_argument("--mode", choices=sorted(MODE_KEYS), default="ref")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--assert-wall", action="store_true",
                        help="also gate on wall-clock >= 2x at 4+ shards "
                        "(requires a multi-core machine)")
    arguments = parser.parse_args(argv)
    run_matrix(
        arguments.program,
        arguments.size,
        arguments.shards,
        mode=arguments.mode,
        seed=arguments.seed,
        assert_wall=arguments.assert_wall,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
