"""Benchmark regenerating Figure 7 of the paper: average per-node communication cost (MB) for PATHVECTOR vs network size.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig07_pathvector_comm`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig07_pathvector_comm.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_07_pathvector_communication = make_figure_benchmark("fig07_pathvector_comm")
