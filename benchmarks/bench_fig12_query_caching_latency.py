"""Benchmark regenerating Figure 12 of the paper.

Figure 12: CDF of query completion latency with and without result caching.

The benchmark runs the figure's experiment once (simulations are
deterministic, so repeated timing rounds would only measure the simulator's
Python overhead), records the reproduced series as extra benchmark info, and
asserts that the paper's qualitative shape checks hold.

Run with::

    pytest benchmarks/bench_fig12_query_caching_latency.py --benchmark-only
"""

from __future__ import annotations

from repro.experiments.figures import figure_12_caching_latency
from repro.experiments.reporting import check_shape


def test_figure_12_caching_latency(benchmark):
    result = benchmark.pedantic(
        lambda: figure_12_caching_latency(**{}), rounds=1, iterations=1
    )
    benchmark.extra_info["figure"] = result.figure_id
    benchmark.extra_info["series_means"] = {
        label: round(value, 6) for label, value in result.summary().items()
    }
    failed = [description for description, holds in check_shape(result) if not holds]
    assert not failed, (
        f"Figure 12: shape checks failed: {failed}; "
        f"series means: {result.summary()}"
    )
