"""Benchmark regenerating Figure 12 of the paper: CDF of query completion latency with and without caching.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig12_caching_latency`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig12_query_caching_latency.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_12_caching_latency = make_figure_benchmark("fig12_caching_latency")
