"""Benchmark regenerating Figure 16 of the paper: PATHVECTOR bandwidth over time on the ring testbed topology.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig16_testbed_bandwidth`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig16_testbed_bandwidth.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_16_testbed_bandwidth = make_figure_benchmark("fig16_testbed_bandwidth")
