"""Shared factory for the per-figure benchmark wrappers.

Every ``bench_fig*.py`` module is now two lines: a docstring and a call to
:func:`make_figure_benchmark` with a scenario name from the registry
(:mod:`repro.experiments.scenarios`).  The factory builds the standard
benchmark body: run the scenario once at quick scale (simulations are
deterministic, so repeated timing rounds would only measure the simulator's
Python overhead), record the reproduced series as extra benchmark info, and
assert that the paper's qualitative shape checks hold.

Run any wrapper with::

    pytest benchmarks/bench_fig06_mincost_comm.py --benchmark-only
"""

from __future__ import annotations

from repro.experiments.reporting import check_shape
from repro.experiments.scenarios import get_scenario, run_figure

__all__ = ["make_figure_benchmark"]


def make_figure_benchmark(scenario_name: str):
    """Build a pytest-benchmark test function for one registered scenario."""
    get_scenario(scenario_name)  # fail at import time on a bad name

    def benchmark_figure(benchmark):
        result = benchmark.pedantic(
            lambda: run_figure(scenario_name), rounds=1, iterations=1
        )
        benchmark.extra_info["figure"] = result.figure_id
        benchmark.extra_info["scenario"] = scenario_name
        benchmark.extra_info["series_means"] = {
            label: round(value, 6) for label, value in result.summary().items()
        }
        failed = [description for description, holds in check_shape(result) if not holds]
        assert not failed, (
            f"{result.figure_id}: shape checks failed: {failed}; "
            f"series means: {result.summary()}"
        )

    benchmark_figure.__name__ = f"test_{scenario_name}"
    benchmark_figure.__doc__ = get_scenario(scenario_name).title
    return benchmark_figure
