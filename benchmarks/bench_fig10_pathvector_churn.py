"""Benchmark regenerating Figure 10 of the paper: PATHVECTOR maintenance bandwidth under stub-link churn.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig10_pathvector_churn`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig10_pathvector_churn.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_10_pathvector_churn = make_figure_benchmark("fig10_pathvector_churn")
