"""Benchmark regenerating Figure 8 of the paper: data-plane bandwidth (MBps) over time for PACKETFORWARD.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig08_packetforward_bandwidth`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig08_packetforward_bandwidth.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_08_packetforward_bandwidth = make_figure_benchmark("fig08_packetforward_bandwidth")
