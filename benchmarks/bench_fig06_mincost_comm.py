"""Benchmark regenerating Figure 6 of the paper: average per-node communication cost (MB) for MINCOST vs network size,
for value-based (BDD), reference-based and no provenance.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig06_mincost_comm`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig06_mincost_comm.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_06_mincost_communication = make_figure_benchmark("fig06_mincost_comm")
