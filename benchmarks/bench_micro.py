"""Micro-benchmarks of the core building blocks.

These measure the substrate rather than reproduce a paper figure: NDlog
parsing and evaluation throughput, provenance-rewrite cost, BDD operations,
and single-query provenance traversal latency.  They make regressions in the
underlying engines visible independently of the end-to-end experiments.
"""

from __future__ import annotations

from repro.core import (
    BddManager,
    ExspanConfig,
    ExspanNetwork,
    ProvenanceMode,
    QueryRequest,
    polynomial_query,
    rewrite_program,
)
from repro.datalog import Fact, StandaloneNetwork, parse_program
from repro.net import ring_topology
from repro.protocols import MINCOST_SOURCE, mincost_program


def test_parse_mincost(benchmark):
    program = benchmark(lambda: parse_program(MINCOST_SOURCE))
    assert len(program.rules) == 3


def test_provenance_rewrite(benchmark):
    rewritten = benchmark(lambda: rewrite_program(mincost_program()))
    assert len(rewritten.rules) > len(mincost_program().rules)


def test_standalone_mincost_fixpoint(benchmark):
    """Local fixpoint computation of MINCOST on a 12-node ring (no simulator)."""
    topology = ring_topology(12, seed=1)

    def run() -> int:
        network = StandaloneNetwork(topology.nodes, mincost_program())
        for source, destination, cost in topology.link_facts():
            network.insert(Fact("link", (source, destination, cost)))
        network.run()
        return len(network.all_rows("bestPathCost"))

    rows = benchmark(run)
    assert rows == 12 * 11


def test_simulated_reference_fixpoint(benchmark):
    """Event-driven fixpoint with reference provenance on a 12-node ring."""

    def run() -> int:
        network = ExspanNetwork(
            ring_topology(12, seed=1),
            mincost_program(),
            config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
        )
        network.seed_links()
        network.run_to_fixpoint()
        return network.provenance_row_counts()["prov"]

    prov_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert prov_rows > 0


def test_single_polynomial_query(benchmark):
    network = ExspanNetwork(
        ring_topology(12, seed=1),
        mincost_program(),
        config=ExspanConfig(mode=ProvenanceMode.REFERENCE),
    )
    network.seed_links()
    network.run_to_fixpoint()
    _, fact = network.random_tuple("bestPathCost")
    spec = polynomial_query(name="bench-poly")
    network.register_spec(spec)

    def run():
        return network.execute(QueryRequest(fact=fact, spec="bench-poly"))

    outcome = benchmark(run)
    assert outcome.result is not None


def test_bdd_construction_and_apply(benchmark):
    """Building a monotone DNF as a BDD (OR of ANDs over nearby variables).

    Products use variables that are close in the ordering — the structure
    provenance polynomials actually have (links along a path) — so the BDD
    stays compact; widely-spread variable patterns are a known worst case
    for BDDs and are not representative of provenance expressions.
    """
    products = [[f"v{i}", f"v{i + 1}", f"v{i + 2}"] for i in range(24)]

    def run() -> int:
        manager = BddManager()
        bdd = manager.from_dnf(products)
        return bdd.node_count()

    nodes = benchmark(run)
    assert nodes > 0
