"""Benchmark regenerating Figure 13 of the paper: #DERIVATION query bandwidth under BFS / DFS / DFS-threshold traversal.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig13_traversal_bandwidth`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig13_traversal_bandwidth.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_13_traversal_bandwidth = make_figure_benchmark("fig13_traversal_bandwidth")
