"""Concurrent query engine speedup: k simultaneous queriers, before/after.

Benchmarks the concurrent provenance query engine (in-flight sub-query
coalescing, bounded result caching with the per-vertex key index, and
per-destination message batching) against the *naive* configuration that
resolves every traversal independently (coalescing and batching disabled) —
the message pattern of the pre-concurrency engine — on the multi-querier
burst workload the ``query_concurrency`` scenario sweeps: k querier nodes
firing #DERIVATION bursts at the same instant against a shared hot set of
tuples, on ring and grid MINCOST networks with reference provenance.

Both configurations produce identical per-query results — the equivalence
suite (``tests/test_query_concurrency.py``) enforces bit-identical results
against *serial* issuance as well — and this benchmark asserts the
before/after result identity again on every workload it measures.  The win
is counted where the paper counts it: prov-kind messages and bytes on the
wire, with wall-clock as a secondary (machine-dependent) indicator.

Run directly for the comparison table (the README "Performance" section
reproduces it)::

    PYTHONPATH=src python benchmarks/bench_query_concurrency.py [repeats]

or through pytest-benchmark for the two smallest cases.
"""

from __future__ import annotations

import gc
import sys
import time
from typing import Dict, List, Tuple

from repro.core import ExspanConfig, ExspanNetwork, ProvenanceMode, derivation_count_query
from repro.experiments.workloads import BurstQueryWorkload
from repro.net import grid_topology, ring_topology
from repro.protocols import mincost_program

#: (topology kind, size, k queriers) per workload row.
WORKLOADS: Tuple[Tuple[str, int, int], ...] = (
    ("ring", 24, 4),
    ("ring", 24, 16),
    ("grid", 5, 4),
    ("grid", 5, 16),
)
DEFAULT_REPEATS = 3

#: (coalescing, batching) per configuration.
CONFIGS: Dict[str, Tuple[bool, bool]] = {
    "before": (False, False),
    "after": (True, True),
}


def _build(topology: str, size: int, config: str) -> ExspanNetwork:
    coalescing, batching = CONFIGS[config]
    if topology == "ring":
        topo = ring_topology(size, seed=0)
    else:
        topo = grid_topology(size, size)
    network = ExspanNetwork(
        topo,
        mincost_program(),
        config=ExspanConfig(
            mode=ProvenanceMode.REFERENCE,
            query_coalescing=coalescing,
            query_batching=batching,
        ),
    )
    network.seed_links()
    network.run_to_fixpoint()
    return network


def run_burst(topology: str, size: int, k: int, config: str) -> Tuple[
    ExspanNetwork, BurstQueryWorkload
]:
    """One burst workload (cached #DERIVATION queries, two waves)."""
    network = _build(topology, size, config)
    spec = derivation_count_query(name="bqcspc", use_cache=True)
    network.stats.reset()
    workload = BurstQueryWorkload(
        network, spec, queriers=k, queries_per_querier=4, hot_tuples=4, waves=2,
        seed=0,
    )
    workload.run()
    return network, workload


def _results(workload: BurstQueryWorkload) -> List[Tuple[str, str]]:
    return [(outcome.vid, repr(outcome.result)) for outcome in workload.outcomes]


def _run_once(topology: str, size: int, k: int, config: str) -> Dict[str, float]:
    """One timed burst, excluding network construction / fixpoint."""
    network = _build(topology, size, config)
    spec = derivation_count_query(name="bqcspc", use_cache=True)
    network.stats.reset()
    workload = BurstQueryWorkload(
        network, spec, queriers=k, queries_per_querier=4, hot_tuples=4, waves=2,
        seed=0,
    )
    gc.collect()
    started = time.perf_counter()
    workload.run()
    elapsed = time.perf_counter() - started
    stats = network.query_service_stats()
    return {
        "seconds": elapsed,
        "messages": network.query_messages(),
        "bytes": network.query_bytes(),
        "coalesced": stats["coalesced_inflight"] + stats["coalesced_roots"],
        "cache_hits": stats["cache_hits"],
        "results": _results(workload),
    }


# ---------------------------------------------------------------------- #
# pytest-benchmark cases (and the equivalence guard)
# ---------------------------------------------------------------------- #
def _fresh_workload(config: str):
    """Per-round setup: the fixpointed network is built *outside* the timed
    region, so the benchmark isolates the burst (the quantity the
    concurrent engine changes) rather than maintenance."""
    network = _build("ring", 24, config)
    network.stats.reset()
    workload = BurstQueryWorkload(
        network,
        derivation_count_query(name="bqcspc", use_cache=True),
        queriers=4,
        queries_per_querier=4,
        hot_tuples=4,
        waves=2,
        seed=0,
    )
    return (workload,), {}


def _bench_burst(benchmark, config: str) -> None:
    outcomes = benchmark.pedantic(
        lambda workload: workload.run(),
        setup=lambda: _fresh_workload(config),
        rounds=3,
    )
    assert outcomes


def test_burst_before(benchmark):
    _bench_burst(benchmark, "before")


def test_burst_after(benchmark):
    _bench_burst(benchmark, "after")


def test_configs_result_identical():
    """Coalescing + batching must not change any per-query result."""
    for topology, size, k in WORKLOADS:
        _, before = run_burst(topology, size, k, "before")
        _, after = run_burst(topology, size, k, "after")
        assert _results(before) == _results(after), (topology, size, k)


def test_after_reduces_messages_and_bytes():
    """The acceptance bar: measurably fewer prov messages/bytes at k>1."""
    before_net, _ = run_burst("grid", 5, 16, "before")
    after_net, _ = run_burst("grid", 5, 16, "after")
    assert after_net.query_messages() < before_net.query_messages()
    assert after_net.query_bytes() < before_net.query_bytes()


# ---------------------------------------------------------------------- #
# standalone comparison table
# ---------------------------------------------------------------------- #
def main(repeats: int = DEFAULT_REPEATS) -> None:
    print(
        "Concurrent query engine comparison: cached #DERIVATION bursts, "
        f"2 waves x 4 queries/querier (best of {repeats})"
    )
    header = (
        f"{'workload':>12} {'k':>3} {'before msg':>10} {'after msg':>10} "
        f"{'before KB':>10} {'after KB':>10} {'msg x':>6} {'KB x':>6} "
        f"{'coalesced':>9} {'hits':>5} {'wall x':>7}"
    )
    print(header)
    print("-" * len(header))
    for topology, size, k in WORKLOADS:
        best: Dict[str, Dict[str, float]] = {}
        for _ in range(repeats):
            for config in CONFIGS:
                run = _run_once(topology, size, k, config)
                if config not in best or run["seconds"] < best[config]["seconds"]:
                    best[config] = run
        before, after = best["before"], best["after"]
        assert before["results"] == after["results"], "result divergence!"
        label = f"{topology}-{size}"
        print(
            f"{label:>12} {k:>3} {before['messages']:>10.0f} {after['messages']:>10.0f} "
            f"{before['bytes'] / 1e3:>10.2f} {after['bytes'] / 1e3:>10.2f} "
            f"{before['messages'] / max(after['messages'], 1):>5.2f}x "
            f"{before['bytes'] / max(after['bytes'], 1):>5.2f}x "
            f"{after['coalesced']:>9.0f} {after['cache_hits']:>5.0f} "
            f"{before['seconds'] / max(after['seconds'], 1e-9):>6.2f}x"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_REPEATS)
