"""Benchmark-suite configuration.

The benchmark modules import ``repro`` directly; like the repo-root
``conftest.py``, this defers to the shared ``_bootstrap.ensure_src_on_path``
helper (one definition for the whole repo) so the suite also works from an
uninstalled checkout even when pytest's rootdir is not the repo root (in
which case neither ``pytest.ini``'s ``pythonpath = src`` nor the root
conftest applies).
"""

from __future__ import annotations

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from _bootstrap import ensure_src_on_path  # noqa: E402

ensure_src_on_path()
