"""Benchmark-suite configuration.

The benchmark modules import ``repro`` directly; this conftest adds ``src``
to ``sys.path`` so the suite also works from an uninstalled checkout (the
same trick pytest.ini uses for the unit tests, repeated here because the
benchmarks live outside the configured ``testpaths``).
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
