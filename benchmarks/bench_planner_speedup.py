"""Planner speedup: ``planner="naive"`` vs ``planner="greedy"``.

Benchmarks the cost-based planner subsystem (:mod:`repro.datalog.plan`)
against the unoptimized left-to-right nested-loop strategy on the two
control-plane workloads that dominate every figure's run time: the
PATHVECTOR and MINCOST fixpoint computations.

Baseline definition: ``planner="naive"`` is the textbook nested loop with
no secondary indexes.  The engine that predates the planner subsystem sat
in between — it joined in body order but already constrained lookups with
lazily-built indexes; that indexing is subsumed by the greedy planner, so
the reduction reported here is the full cost of unindexed evaluation, an
upper bound on the win over the immediately-preceding engine.  Reported both as
pytest-benchmark cases and, when run directly, as a comparison table of
wall-clock time and tuples scanned::

    PYTHONPATH=src python benchmarks/bench_planner_speedup.py [ring-size]

The scan counters come from the engines' planner statistics (aggregated by
:func:`repro.net.stats.aggregate_engine_stats`), so the reduction shown is
evaluation work actually avoided, not a timing artifact.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, Tuple

from repro.datalog import Fact, StandaloneNetwork
from repro.datalog.ast import Program
from repro.net import ring_topology
from repro.net.stats import render_engine_stats
from repro.protocols import mincost_program, pathvector_program

DEFAULT_SIZE = 12

WORKLOADS: Dict[str, Callable[[], Program]] = {
    "pathvector": pathvector_program,
    "mincost": mincost_program,
}


def run_fixpoint(
    program_factory: Callable[[], Program], planner: str, size: int = DEFAULT_SIZE
) -> StandaloneNetwork:
    """Compute the distributed fixpoint of one workload on a ring."""
    topology = ring_topology(size, seed=1)
    network = StandaloneNetwork(topology.nodes, program_factory(), planner=planner)
    for source, destination, cost in topology.link_facts():
        network.insert(Fact("link", (source, destination, cost)))
    network.run()
    return network


# ---------------------------------------------------------------------- #
# pytest-benchmark cases
# ---------------------------------------------------------------------- #
def test_pathvector_fixpoint_naive(benchmark):
    network = benchmark(lambda: run_fixpoint(pathvector_program, "naive"))
    assert len(network.all_rows("bestPath")) == DEFAULT_SIZE * (DEFAULT_SIZE - 1)


def test_pathvector_fixpoint_greedy(benchmark):
    network = benchmark(lambda: run_fixpoint(pathvector_program, "greedy"))
    assert len(network.all_rows("bestPath")) == DEFAULT_SIZE * (DEFAULT_SIZE - 1)


def test_mincost_fixpoint_naive(benchmark):
    network = benchmark(lambda: run_fixpoint(mincost_program, "naive"))
    assert len(network.all_rows("bestPathCost")) == DEFAULT_SIZE * (DEFAULT_SIZE - 1)


def test_mincost_fixpoint_greedy(benchmark):
    network = benchmark(lambda: run_fixpoint(mincost_program, "greedy"))
    assert len(network.all_rows("bestPathCost")) == DEFAULT_SIZE * (DEFAULT_SIZE - 1)


def test_pathvector_scan_reduction():
    """Acceptance bar: the planner scans >= 2x fewer tuples on PATHVECTOR."""
    naive = run_fixpoint(pathvector_program, "naive").planner_stats()
    greedy = run_fixpoint(pathvector_program, "greedy").planner_stats()
    assert greedy["tuples_scanned"] * 2 <= naive["tuples_scanned"]


# ---------------------------------------------------------------------- #
# standalone comparison table
# ---------------------------------------------------------------------- #
def _measure(
    program_factory: Callable[[], Program], planner: str, size: int
) -> Tuple[float, Dict[str, int]]:
    """Time the fixpoint itself, excluding network/program construction.

    Plan compilation happens at program-load time by design; it is one-time
    setup amortized over the network's lifetime, so the fixpoint timing
    compares only the evaluation strategies.
    """
    topology = ring_topology(size, seed=1)
    network = StandaloneNetwork(topology.nodes, program_factory(), planner=planner)
    links = topology.link_facts()
    started = time.perf_counter()
    for source, destination, cost in links:
        network.insert(Fact("link", (source, destination, cost)))
    network.run()
    elapsed = time.perf_counter() - started
    return elapsed, network.planner_stats()


def main(size: int = DEFAULT_SIZE) -> None:
    print(f"Planner comparison on a {size}-node ring (StandaloneNetwork fixpoint)")
    header = (
        f"{'workload':<12} {'naive s':>9} {'greedy s':>9} {'speedup':>8} "
        f"{'naive scans':>12} {'greedy scans':>13} {'reduction':>10}"
    )
    print(header)
    print("-" * len(header))
    for name, factory in WORKLOADS.items():
        naive_time, naive_stats = _measure(factory, "naive", size)
        greedy_time, greedy_stats = _measure(factory, "greedy", size)
        naive_scans = naive_stats["tuples_scanned"]
        greedy_scans = greedy_stats["tuples_scanned"]
        print(
            f"{name:<12} {naive_time:>9.3f} {greedy_time:>9.3f} "
            f"{naive_time / max(greedy_time, 1e-9):>7.2f}x "
            f"{naive_scans:>12} {greedy_scans:>13} "
            f"{naive_scans / max(greedy_scans, 1):>9.2f}x"
        )
    greedy_stats = run_fixpoint(pathvector_program, "greedy", size).planner_stats()
    print(f"\npathvector greedy detail: {render_engine_stats(greedy_stats)}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_SIZE)
