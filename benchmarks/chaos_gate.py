"""CI chaos gate for the deterministic fault-injection subsystem.

Four checks, in order, all deterministic (no wall-clock — repo policy):

1. **Empty-plan byte-identity** — ``FaultPlan.empty()`` must be a literal
   no-op: ``install_faults`` returns ``None`` and the full per-node state
   digests (tables, annotations *and* counters) of an "empty-plan" run
   equal a run that never mentioned faults.  This is identity by
   construction, not convergence-up-to-retransmits.
2. **Serial fault matrix** — every (protocol × plan) cell of the chaos
   matrix (message drops, duplicates + delays, node crash/restart, link
   flap) must yield final protocol tables whose convergence digest equals
   the fault-free run's.  Protocols: MINCOST, PATHVECTOR, and
   PATHVECTOR + PACKETFORWARD with post-fixpoint data-plane packets.
3. **Sharded fault matrix** — the same cells at ``shards=2``: workers
   execute the plan locally, and the merged convergence digest must equal
   the same serial fault-free reference.
4. **Shard-worker SIGKILL** — a plan that SIGKILLs a shard worker between
   barrier windows, with the supervisor restarting it from the command
   log; the digest check must still pass and the supervisor must report
   the restart it performed.

The topology is the tie-free ring from
:func:`repro.experiments.trials.chaos_topology` (distinct power-of-two
link costs): PATHVECTOR breaks equal-cost ties by arrival order (RapidNet
materialize semantics), so only a tie-free cost assignment makes
"digest-identical final tables" a sound oracle under timing-perturbing
faults.  See docs/FAULTS.md.

Run from CI::

    PYTHONPATH=src python benchmarks/chaos_gate.py

Exit status 0 only when every check passes.
"""

from __future__ import annotations

import argparse
import sys

SIZE = 8

#: The chaos matrix: one named plan per fault class the subsystem injects.
PLANS = [
    ("drops", "seed=3; attempts=8; drop:*->*:p=0.25,n=30"),
    ("dup-delay", "seed=5; dup:*->*:p=0.15,n=15; delay:*->*:p=0.2,d=0.004"),
    ("crash-restart", "attempts=8; crash:n1@0.001:restart=0.02"),
    ("flap", "attempts=8; flap:n0-n1@0.001:up=0.01"),
]

PROTOCOLS = ("mincost", "pathvector", "packetforward")


def _build(program):
    from repro.core.api import ExspanNetwork
    from repro.core.config import ExspanConfig
    from repro.core.modes import ProvenanceMode
    from repro.experiments.trials import chaos_topology
    from repro.protocols.mincost import mincost_program
    from repro.protocols.packetforward import packetforward_program
    from repro.protocols.pathvector import pathvector_program

    topology = chaos_topology(SIZE, seed=0)
    if program == "mincost":
        resolved = mincost_program()
    elif program == "pathvector":
        resolved = pathvector_program()
    else:
        resolved = pathvector_program().extended(packetforward_program(), "pv+fwd")
    network = ExspanNetwork(
        topology, resolved, config=ExspanConfig(mode=ProvenanceMode.REFERENCE, seed=0)
    )
    return topology, resolved, network


def _packets(program):
    from repro.protocols.packetforward import packet_event

    if program != "packetforward":
        return []
    payload = "x" * 16
    return [
        packet_event("n0", "n0", f"n{SIZE // 2}", payload),
        packet_event(f"n{SIZE - 1}", f"n{SIZE - 1}", "n1", payload),
    ]


def _serial_digest(program, plan):
    from repro.faults import convergence_digest

    _, _, network = _build(program)
    if plan is not None:
        network.install_faults(plan)
    network.seed_links()
    network.run_to_fixpoint()
    for packet in _packets(program):
        network.insert_fact(packet)
        network.run_to_fixpoint()
    return convergence_digest(network)


def _sharded_digest(program, plan, supervise=False):
    from repro.core.modes import ProvenanceMode
    from repro.experiments.trials import chaos_topology
    from repro.net.sharding import ScriptOp, ShardedExspanNetwork

    topology = chaos_topology(SIZE, seed=0)
    _, resolved, _ = _build(program)
    with ShardedExspanNetwork(
        topology,
        resolved,
        mode=ProvenanceMode.REFERENCE,
        shards=2,
        seed=0,
        faults=plan,
        supervise=supervise,
    ) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        for packet in _packets(program):
            sharded.apply_ops([ScriptOp(kind="insert", fact=packet)])
        return sharded.convergence_digest(), sharded.supervisor_stats()


def check_empty_plan_identity(failures):
    """Check 1: FaultPlan.empty() is byte-identical to no plan at all."""
    from repro.faults import FaultPlan
    from repro.net.sharding import collect_digest, collect_summary

    _, _, plain = _build("mincost")
    plain.seed_links()
    plain.run_to_fixpoint()

    _, _, empty = _build("mincost")
    installed = empty.install_faults(FaultPlan.empty())
    if installed is not None:
        failures.append("empty plan: install_faults returned an injector, not None")
    empty.seed_links()
    empty.run_to_fixpoint()

    if collect_digest(plain) != collect_digest(empty):
        failures.append("empty plan: per-node state digests differ from a plain run")
    if collect_summary(plain) != collect_summary(empty):
        failures.append("empty plan: network summaries differ from a plain run")
    print("  empty-plan byte-identity: ok")


def check_serial_matrix(failures, references):
    """Check 2: every (protocol x plan) cell converges serially."""
    for program in PROTOCOLS:
        references[program] = _serial_digest(program, None)
        for name, plan in PLANS:
            digest = _serial_digest(program, plan)
            status = "ok" if digest == references[program] else "DIVERGED"
            print(f"  serial {program:<14} {name:<14} {status}")
            if digest != references[program]:
                failures.append(f"serial {program}/{name}: {digest[:16]}")


def check_sharded_matrix(failures, references):
    """Check 3: the same cells at shards=2 converge to the serial reference."""
    for program in PROTOCOLS:
        for name, plan in PLANS:
            digest, _ = _sharded_digest(program, plan)
            status = "ok" if digest == references[program] else "DIVERGED"
            print(f"  shards=2 {program:<14} {name:<14} {status}")
            if digest != references[program]:
                failures.append(f"sharded {program}/{name}: {digest[:16]}")


def check_worker_kill(failures, references):
    """Check 4: a SIGKILLed shard worker is restarted and still converges."""
    plan = "attempts=8; killworker:1@1"
    digest, stats = _sharded_digest("mincost", plan, supervise=True)
    if digest != references["mincost"]:
        failures.append(f"worker-kill: digest diverged ({digest[:16]})")
    if stats.get("workers_killed", 0) < 1:
        failures.append(f"worker-kill: no worker was killed ({stats})")
    if stats.get("restarts", 0) < 1:
        failures.append(f"worker-kill: supervisor performed no restart ({stats})")
    print(
        f"  worker-kill mincost: "
        f"{'ok' if digest == references['mincost'] else 'DIVERGED'} "
        f"(killed={stats.get('workers_killed')}, restarts={stats.get('restarts')})"
    )


def main(argv=None):
    argparse.ArgumentParser(description=__doc__).parse_args(argv)
    failures = []
    references = {}
    print("chaos gate: empty-plan identity")
    check_empty_plan_identity(failures)
    print("chaos gate: serial fault matrix")
    check_serial_matrix(failures, references)
    print("chaos gate: sharded fault matrix (shards=2)")
    check_sharded_matrix(failures, references)
    print("chaos gate: shard-worker SIGKILL + supervised restart")
    check_worker_kill(failures, references)
    if failures:
        print(f"chaos gate: FAILED ({len(failures)} check(s)):")
        for line in failures:
            print(f"  {line}")
        return 1
    print("chaos gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
