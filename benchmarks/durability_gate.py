"""CI durability gate for the pluggable storage engine.

Three checks, in order, all deterministic (no wall-clock — repo policy):

1. **Backend byte-identity** — the artifact a ``--storage sqlite`` run of
   the ``query_concurrency`` scenario produced must byte-match the
   committed memory-backend baseline (canonical bytes, advisory keys
   stripped — exactly the ``repro.experiments compare --strict``
   contract).  Storage is an execution-environment knob; any drift is a
   real behavior change.
2. **Crash recovery** — a subprocess runs a MINCOST fixpoint under the
   sqlite backend, checkpoints, and SIGKILLs itself; a fresh process
   restores from the file, continues scripted churn to fixpoint, and its
   digests must equal an uninterrupted process running the same script.
3. **SQL-vs-distributed oracle** — in the restored process, the sqlite
   backend's SQL provenance answers (``nodeset``/``derivability``/
   ``reachable_base``) must equal the distributed query engine's and the
   in-RAM provenance graph's on the same tuples.

Run from CI (after the sqlite scenario run)::

    PYTHONPATH=src python benchmarks/durability_gate.py \
        --baseline benchmarks/baselines --candidate results-sqlite

Exit status 0 only when every check passes.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ARTIFACT = "BENCH_query_concurrency.json"


# ---------------------------------------------------------------------- #
# subprocess phases (this file re-executes itself with --phase)
# ---------------------------------------------------------------------- #
def _build_network():
    from repro.core.api import ExspanNetwork
    from repro.core.config import ExspanConfig
    from repro.net.topology import ring_topology
    from repro.protocols.mincost import mincost_program

    return ExspanNetwork(
        ring_topology(8, seed=7),
        mincost_program(),
        config=ExspanConfig(seed=0, storage="sqlite"),
    )


def _restore_network(ckpt_path):
    from repro.core.api import ExspanNetwork
    from repro.net.topology import ring_topology
    from repro.protocols.mincost import mincost_program

    return ExspanNetwork.restore(
        ckpt_path, ring_topology(8, seed=7), mincost_program(), storage="sqlite"
    )


def _phase_a(network):
    network.seed_links()
    network.run_to_fixpoint()


def _phase_b(network):
    network.remove_link("n0", "n1")
    network.run_to_fixpoint()
    network.add_link("n3", "n7", cost=2)
    network.run_to_fixpoint()


def _digests(network):
    from repro.net.sharding import node_state_digest

    return {
        address: node_state_digest(node.engine)
        for address, node in network.nodes.items()
    }


def _sql_cross_check(network):
    """SQL path vs distributed engine vs in-RAM graph; returns failures."""
    from repro.core.requests import QueryRequest, SpecDescriptor
    from repro.core.vid import fact_vid
    from repro.datalog.ast import Fact

    graph = network.provenance_graph()
    failures = []
    facts = sorted((node, values) for node, values in network.tuples("bestPathCost"))
    for node, values in facts[:10]:
        fact = Fact("bestPathCost", values)
        vid = fact_vid(fact)
        distributed_nodes = sorted(
            network.execute(
                QueryRequest(fact=fact, spec=SpecDescriptor(kind="nodeset"))
            ).result
        )
        sql_nodes = network.sql_provenance("nodeset", fact)
        if sql_nodes != distributed_nodes:
            failures.append(f"nodeset mismatch for {values}: "
                            f"sql={sql_nodes} distributed={distributed_nodes}")
        if sql_nodes != sorted(graph.nodes_involved(vid)):
            failures.append(f"nodeset mismatch vs graph for {values}")
        derivable = network.execute(
            QueryRequest(fact=fact, spec=SpecDescriptor(kind="derivability"))
        ).result
        if network.sql_provenance("derivability", fact) != bool(derivable):
            failures.append(f"derivability mismatch for {values}")
        if network.sql_provenance("reachable_base", fact) != sorted(
            graph.reachable_base_tuples(vid)
        ):
            failures.append(f"reachable_base mismatch vs graph for {values}")
    return failures


def _run_phase(phase: str, ckpt_path: str) -> None:
    if phase == "crash":
        network = _build_network()
        _phase_a(network)
        network.checkpoint(ckpt_path)
        os.kill(os.getpid(), signal.SIGKILL)
    elif phase == "restore":
        network = _restore_network(ckpt_path)
        _phase_b(network)
        payload = {
            "digests": _digests(network),
            "now": network.now,
            "sql_failures": _sql_cross_check(network),
        }
        network.close_storage()
        json.dump(payload, sys.stdout, sort_keys=True)
    elif phase == "full":
        network = _build_network()
        _phase_a(network)
        _phase_b(network)
        payload = {"digests": _digests(network), "now": network.now}
        network.close_storage()
        json.dump(payload, sys.stdout, sort_keys=True)
    else:
        raise SystemExit(f"unknown phase {phase!r}")


# ---------------------------------------------------------------------- #
# the gate
# ---------------------------------------------------------------------- #
def _fail(message: str) -> None:
    print(f"FAIL: {message}")
    raise SystemExit(1)


def _check_artifact(baseline_dir: str, candidate_dir: str) -> None:
    from repro.experiments.orchestrator import canonical_artifact_bytes

    left = canonical_artifact_bytes(os.path.join(baseline_dir, ARTIFACT))
    right = canonical_artifact_bytes(os.path.join(candidate_dir, ARTIFACT))
    if left is None:
        _fail(f"missing/unreadable baseline artifact {baseline_dir}/{ARTIFACT}")
    if right is None:
        _fail(f"missing/unreadable candidate artifact {candidate_dir}/{ARTIFACT}")
    if left != right:
        _fail(
            f"{ARTIFACT}: sqlite-backend artifact differs from the committed "
            "memory-backend baseline (storage must be result-invariant)"
        )
    print(f"ok: {ARTIFACT} byte-identical under --storage sqlite "
          f"({len(left)} canonical bytes)")


def _spawn(phase: str, ckpt_path: str, hashseed: int) -> subprocess.CompletedProcess:
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.path.join(REPO, "src")
    environment["PYTHONHASHSEED"] = str(hashseed)
    return subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--phase", phase, "--ckpt", ckpt_path],
        capture_output=True,
        text=True,
        env=environment,
        timeout=300,
    )


def _check_recovery(work_dir: str) -> None:
    ckpt_path = os.path.join(work_dir, "durability_gate.ckpt")
    crashed = _spawn("crash", ckpt_path, hashseed=11)
    if crashed.returncode != -signal.SIGKILL:
        _fail(f"crash phase exited {crashed.returncode}, expected SIGKILL; "
              f"stderr:\n{crashed.stderr}")
    if not os.path.exists(ckpt_path):
        _fail("checkpoint file missing after SIGKILL")
    restored = _spawn("restore", ckpt_path, hashseed=12)
    if restored.returncode != 0:
        _fail(f"restore phase failed:\n{restored.stderr}")
    uninterrupted = _spawn("full", ckpt_path, hashseed=13)
    if uninterrupted.returncode != 0:
        _fail(f"uninterrupted phase failed:\n{uninterrupted.stderr}")

    restored_payload = json.loads(restored.stdout)
    full_payload = json.loads(uninterrupted.stdout)
    if restored_payload["digests"] != full_payload["digests"]:
        _fail("restored continuation digests differ from the uninterrupted run")
    if restored_payload["now"] != full_payload["now"]:
        _fail("restored continuation clock differs from the uninterrupted run")
    print(f"ok: checkpoint -> SIGKILL -> restore reproduced all "
          f"{len(full_payload['digests'])} node digests")

    sql_failures = restored_payload["sql_failures"]
    if sql_failures:
        for failure in sql_failures:
            print(f"  {failure}")
        _fail(f"{len(sql_failures)} SQL-vs-distributed mismatches after restore")
    print("ok: SQL provenance answers equal the distributed engine's after restore")
    os.remove(ckpt_path)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=os.path.join("benchmarks", "baselines"))
    parser.add_argument("--candidate", default="results-sqlite")
    parser.add_argument("--work-dir", default=".")
    parser.add_argument("--phase", help=argparse.SUPPRESS)
    parser.add_argument("--ckpt", help=argparse.SUPPRESS)
    arguments = parser.parse_args()
    if arguments.phase:
        _run_phase(arguments.phase, arguments.ckpt)
        return
    _check_artifact(arguments.baseline, arguments.candidate)
    _check_recovery(arguments.work_dir)
    print("durability gate: all checks passed")


if __name__ == "__main__":
    main()
