"""Benchmark regenerating Figure 14 of the paper: CDF of query latency under BFS / DFS / DFS-threshold traversal.

Thin wrapper over the scenario registry: the sweep parameters live on the
``fig14_traversal_latency`` scenario (``repro.experiments.scenarios``), the benchmark
body in ``figure_bench.make_figure_benchmark``.  Run with::

    pytest benchmarks/bench_fig14_traversal_latency.py --benchmark-only
"""

from __future__ import annotations

from figure_bench import make_figure_benchmark

test_figure_14_traversal_latency = make_figure_benchmark("fig14_traversal_latency")
