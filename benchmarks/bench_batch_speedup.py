"""Batched delta pipeline speedup: before/after on provenance-rewritten rings.

Benchmarks the batched evaluation pipeline (compiled plan executors, fused
zero-/one-step rules, interned rows, VID memoization) against the retained
legacy interpreter (``pipeline="delta"`` with VID caching disabled) on the
workload the acceptance bar names: the PATHVECTOR fixpoint with the
reference-provenance rewrite enabled, on rings of 12/24/32 nodes.

Baseline definition: the "before" configuration routes every delta through
the one-at-a-time term-tree interpreter and recomputes each SHA-1 VID
preimage on every rule firing — the code path the engine ran before the
batched pipeline landed.  Storage-layer improvements that the two
pipelines share (interned rows, precomputed index key extractors,
incremental MIN/MAX maintenance) are *not* toggled, so the ratio printed
here understates the speedup over the actual pre-batching commit.

Both configurations produce bit-identical results — same fixpoints, VIDs,
prov/ruleExec rows and counters — which the equivalence suite
(``tests/test_plan_equivalence.py``) enforces; this benchmark asserts it
again on the fixpoint sizes it measures.

Run directly for the comparison table (the README "Performance" section
reproduces it)::

    PYTHONPATH=src python benchmarks/bench_batch_speedup.py [repeats]

or through pytest-benchmark for the two 12-node cases.
"""

from __future__ import annotations

import gc
import sys
import time
from typing import Dict, List, Tuple

from repro.core import vid
from repro.core.rewrite import rewrite_program
from repro.datalog import Fact, StandaloneNetwork
from repro.datalog.ast import Program
from repro.net import ring_topology
from repro.protocols import pathvector_program

SIZES = (12, 24, 32)
DEFAULT_REPEATS = 3

#: (pipeline, vid-caching) per configuration.
CONFIGS: Dict[str, Tuple[str, bool]] = {
    "before": ("delta", False),
    "after": ("batched", True),
}


def _build(size: int, pipeline: str) -> Tuple[StandaloneNetwork, List]:
    topology = ring_topology(size, seed=0)
    program: Program = rewrite_program(pathvector_program())
    network = StandaloneNetwork(topology.nodes, program, pipeline=pipeline)
    return network, topology.link_facts()


def run_fixpoint(size: int, config: str) -> StandaloneNetwork:
    """Run the provenance-rewritten PATHVECTOR fixpoint once."""
    pipeline, caching = CONFIGS[config]
    vid.set_vid_caching(caching)
    vid.clear_vid_caches()
    network, links = _build(size, pipeline)
    for source, destination, cost in links:
        network.insert(Fact("link", (source, destination, cost)))
    network.run()
    vid.set_vid_caching(True)
    return network


def _run_once(size: int, config: str) -> Tuple[float, int]:
    """One timed fixpoint, excluding construction.

    Plan compilation happens at program-load time by design (one-time setup
    amortized over the network's lifetime), so the timing isolates delta
    processing — the quantity the batched pipeline changes.
    """
    pipeline, caching = CONFIGS[config]
    vid.set_vid_caching(caching)
    vid.clear_vid_caches()
    network, links = _build(size, pipeline)
    gc.collect()
    started = time.perf_counter()
    for source, destination, cost in links:
        network.insert(Fact("link", (source, destination, cost)))
    network.run()
    elapsed = time.perf_counter() - started
    deltas = network.planner_stats()["deltas_processed"]
    vid.set_vid_caching(True)
    return elapsed, deltas


def _measure(size: int, repeats: int) -> Tuple[float, float, int]:
    """Best-of-*repeats* wall-clock for both configurations, interleaved.

    Alternating before/after within each repetition keeps background load
    spikes from skewing one side of the ratio.
    """
    best = {"before": float("inf"), "after": float("inf")}
    deltas = 0
    for _ in range(repeats):
        for config in CONFIGS:
            elapsed, deltas = _run_once(size, config)
            best[config] = min(best[config], elapsed)
    return best["before"], best["after"], deltas


def _snapshot(network: StandaloneNetwork) -> dict:
    names = set()
    for engine in network.engines.values():
        names.update(engine.catalog.names())
    return {name: network.all_rows(name) for name in sorted(names)}


# ---------------------------------------------------------------------- #
# pytest-benchmark cases (and the equivalence guard)
# ---------------------------------------------------------------------- #
def test_rewritten_fixpoint_before(benchmark):
    network = benchmark(lambda: run_fixpoint(SIZES[0], "before"))
    assert len(network.all_rows("prov")) > 0


def test_rewritten_fixpoint_after(benchmark):
    network = benchmark(lambda: run_fixpoint(SIZES[0], "after"))
    assert len(network.all_rows("prov")) > 0


def test_pipelines_bit_identical():
    """Both pipelines must agree on every table, VIDs included."""
    before = _snapshot(run_fixpoint(SIZES[0], "before"))
    after = _snapshot(run_fixpoint(SIZES[0], "after"))
    assert before == after


# ---------------------------------------------------------------------- #
# standalone comparison table
# ---------------------------------------------------------------------- #
def main(repeats: int = DEFAULT_REPEATS) -> None:
    print(
        "Batched pipeline comparison: PATHVECTOR + provenance rewrite "
        f"(ring, StandaloneNetwork fixpoint, best of {repeats})"
    )
    header = (
        f"{'nodes':>5} {'before s':>9} {'after s':>9} {'speedup':>8} "
        f"{'deltas':>8} {'before d/s':>11} {'after d/s':>11}"
    )
    print(header)
    print("-" * len(header))
    for size in SIZES:
        before_s, after_s, deltas = _measure(size, repeats)
        print(
            f"{size:>5} {before_s:>9.3f} {after_s:>9.3f} "
            f"{before_s / max(after_s, 1e-9):>7.2f}x "
            f"{deltas:>8} {deltas / max(before_s, 1e-9):>11,.0f} "
            f"{deltas / max(after_s, 1e-9):>11,.0f}"
        )
    stats = vid.vid_cache_stats()
    print(
        "\nvid cache after last run: "
        f"sha1 entries={stats['sha1']['entries']} hits={stats['sha1']['hits']} "
        f"misses={stats['sha1']['misses']} (bounded at {stats['sha1']['limit']})"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_REPEATS)
