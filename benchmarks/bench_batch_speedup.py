"""Delta-pipeline speedup ladder: delta vs batched vs columnar on rings.

Benchmarks the three delta-evaluation pipelines against each other on the
workload the acceptance bars name: the PATHVECTOR fixpoint with the
reference-provenance rewrite enabled, on rings of 12/24/32 nodes.

* ``delta`` — the retained one-at-a-time term-tree interpreter with VID
  caching disabled: every SHA-1 VID preimage is recomputed on every rule
  firing.  This is the code path the engine ran before the batched
  pipeline landed (PR 3's "before" configuration), kept as the baseline
  so speedup numbers stay comparable across releases.  Note that storage
  and engine improvements shared by all pipelines (interned rows, row-hash
  memoization, precomputed index key extractors) have kept making this
  baseline faster since it was first measured, so the ratios printed here
  *understate* the speedup over the historical pre-batching commit.
* ``batched`` — compiled plan executors, fused zero-/one-step rules,
  VID memoization (PR 3's "after" configuration).
* ``columnar`` — windowed column-block evaluation with generated batch
  kernels (selection vectors, bulk hash-index probes, inlined VID memo,
  kernel-prefrozen storage rows).

All three produce bit-identical results — same fixpoints, VIDs,
prov/ruleExec rows and counters — which the equivalence suite
(``tests/test_plan_equivalence.py``) enforces; this benchmark asserts it
again on the fixpoint sizes it measures.

Run directly for the comparison table (the README "Performance" section
reproduces it) and the machine-readable artifact
``results/BENCH_columnar_speedup.json``::

    PYTHONPATH=src python benchmarks/bench_batch_speedup.py [repeats] \
        [--json PATH]

or through pytest-benchmark for the 12-node cases.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
from typing import Any, Dict, List, Tuple

from repro.core import vid
from repro.core.rewrite import rewrite_program
from repro.datalog import Fact, StandaloneNetwork
from repro.datalog.ast import Program
from repro.net import ring_topology
from repro.protocols import pathvector_program

SIZES = (12, 24, 32)
DEFAULT_REPEATS = 3
DEFAULT_JSON_PATH = os.path.join("results", "BENCH_columnar_speedup.json")

#: (pipeline, vid-caching) per configuration, in baseline-first order.
#: ``delta`` runs with the memo layers off by the baseline definition
#: above; the optimized pipelines run in their production configuration.
CONFIGS: Dict[str, Tuple[str, bool]] = {
    "delta": ("delta", False),
    "batched": ("batched", True),
    "columnar": ("columnar", True),
}

#: Speedup targets at ring-32, recorded in the JSON artifact next to the
#: measured ratios.  The original roadmap bar for columnar-vs-delta was
#: 5.0, calibrated against the delta pipeline as it existed when batching
#: landed; shared storage/VID-memo work since then made that baseline
#: itself ~2x faster, so the honest post-PR-8 bar against the *current*
#: delta pipeline is 3.0 (measured 3.3-4.2x).  The batched-relative bar
#: is unchanged.  See README "Performance" for the full drift note.
TARGETS = {"columnar_vs_delta": 3.0, "columnar_vs_batched": 1.5}


def _build(size: int, pipeline: str) -> Tuple[StandaloneNetwork, List]:
    topology = ring_topology(size, seed=0)
    program: Program = rewrite_program(pathvector_program())
    network = StandaloneNetwork(topology.nodes, program, pipeline=pipeline)
    return network, topology.link_facts()


def run_fixpoint(size: int, config: str) -> StandaloneNetwork:
    """Run the provenance-rewritten PATHVECTOR fixpoint once."""
    pipeline, caching = CONFIGS[config]
    vid.set_vid_caching(caching)
    vid.clear_vid_caches()
    network, links = _build(size, pipeline)
    for source, destination, cost in links:
        network.insert(Fact("link", (source, destination, cost)))
    network.run()
    vid.set_vid_caching(True)
    return network


def _columnar_counters(network: StandaloneNetwork) -> Dict[str, int]:
    """Sum the per-engine columnar window/kernel counters."""
    totals: Dict[str, int] = {}
    for engine in network.engines.values():
        for name, value in engine.columnar_counters.items():
            totals[name] = totals.get(name, 0) + value
    return totals


def _run_once(size: int, config: str) -> Tuple[float, int, Dict[str, int]]:
    """One timed fixpoint, excluding construction.

    Plan compilation happens at program-load time by design (one-time setup
    amortized over the network's lifetime), so the timing isolates delta
    processing — the quantity the optimized pipelines change.
    """
    pipeline, caching = CONFIGS[config]
    vid.set_vid_caching(caching)
    vid.clear_vid_caches()
    network, links = _build(size, pipeline)
    gc.collect()
    started = time.perf_counter()
    for source, destination, cost in links:
        network.insert(Fact("link", (source, destination, cost)))
    network.run()
    elapsed = time.perf_counter() - started
    deltas = network.planner_stats()["deltas_processed"]
    counters = _columnar_counters(network) if pipeline == "columnar" else {}
    vid.set_vid_caching(True)
    return elapsed, deltas, counters


def _measure(size: int, repeats: int) -> Dict[str, Any]:
    """Best-of-*repeats* wall-clock for every configuration, interleaved.

    Alternating the configurations within each repetition keeps background
    load spikes from skewing one side of a ratio.
    """
    best = {config: float("inf") for config in CONFIGS}
    deltas = 0
    counters: Dict[str, int] = {}
    for _ in range(repeats):
        for config in CONFIGS:
            elapsed, deltas, run_counters = _run_once(size, config)
            best[config] = min(best[config], elapsed)
            if run_counters:
                counters = run_counters
    deltas_per_s = {
        config: deltas / max(elapsed, 1e-9) for config, elapsed in best.items()
    }
    return {
        "deltas": deltas,
        "elapsed_s": {k: round(v, 4) for k, v in best.items()},
        "deltas_per_s": {k: round(v, 1) for k, v in deltas_per_s.items()},
        "speedup": {
            "batched_vs_delta": round(best["delta"] / max(best["batched"], 1e-9), 2),
            "columnar_vs_delta": round(best["delta"] / max(best["columnar"], 1e-9), 2),
            "columnar_vs_batched": round(
                best["batched"] / max(best["columnar"], 1e-9), 2
            ),
        },
        "columnar_counters": counters,
    }


def _snapshot(network: StandaloneNetwork) -> dict:
    names = set()
    for engine in network.engines.values():
        names.update(engine.catalog.names())
    return {name: network.all_rows(name) for name in sorted(names)}


# ---------------------------------------------------------------------- #
# pytest-benchmark cases (and the equivalence + kernel-coverage guards)
# ---------------------------------------------------------------------- #
def test_rewritten_fixpoint_delta(benchmark):
    network = benchmark(lambda: run_fixpoint(SIZES[0], "delta"))
    assert len(network.all_rows("prov")) > 0


def test_rewritten_fixpoint_batched(benchmark):
    network = benchmark(lambda: run_fixpoint(SIZES[0], "batched"))
    assert len(network.all_rows("prov")) > 0


def test_rewritten_fixpoint_columnar(benchmark):
    network = benchmark(lambda: run_fixpoint(SIZES[0], "columnar"))
    assert len(network.all_rows("prov")) > 0


def test_pipelines_bit_identical():
    """All pipelines must agree on every table, VIDs included."""
    reference = _snapshot(run_fixpoint(SIZES[0], "delta"))
    assert _snapshot(run_fixpoint(SIZES[0], "batched")) == reference
    assert _snapshot(run_fixpoint(SIZES[0], "columnar")) == reference


def test_columnar_full_kernel_coverage():
    """Every rewritten-PATHVECTOR batch must run a generated kernel.

    ``generic_batches == 0`` is the deterministic CI stand-in for the
    wall-clock speedup story: the moment a rule shape regresses out of the
    generated-kernel subset, the speedup silently collapses — this catches
    it without timing anything.
    """
    counters = _columnar_counters(run_fixpoint(SIZES[0], "columnar"))
    assert counters.get("kernel_batches", 0) > 0
    assert counters.get("generic_batches", 0) == 0


# ---------------------------------------------------------------------- #
# standalone comparison table + JSON artifact
# ---------------------------------------------------------------------- #
def main(repeats: int = DEFAULT_REPEATS, json_path: str = DEFAULT_JSON_PATH) -> None:
    print(
        "Delta-pipeline comparison: PATHVECTOR + provenance rewrite "
        f"(ring, StandaloneNetwork fixpoint, best of {repeats})"
    )
    header = (
        f"{'nodes':>5} {'deltas':>8} "
        f"{'delta d/s':>11} {'batched d/s':>12} {'columnar d/s':>13} "
        f"{'col/delta':>9} {'col/batch':>9}"
    )
    print(header)
    print("-" * len(header))
    sizes: Dict[str, Any] = {}
    for size in SIZES:
        measured = _measure(size, repeats)
        sizes[str(size)] = measured
        rates = measured["deltas_per_s"]
        speedup = measured["speedup"]
        print(
            f"{size:>5} {measured['deltas']:>8} "
            f"{rates['delta']:>11,.0f} {rates['batched']:>12,.0f} "
            f"{rates['columnar']:>13,.0f} "
            f"{speedup['columnar_vs_delta']:>8.2f}x "
            f"{speedup['columnar_vs_batched']:>8.2f}x"
        )
    gate = sizes[str(SIZES[-1])]["speedup"]
    artifact = {
        "benchmark": "columnar_speedup",
        "workload": "pathvector + ref-provenance rewrite, ring topology",
        "baseline": "pipeline=delta with VID/sha1 caching disabled",
        "repeats": repeats,
        "sizes": sizes,
        "targets": dict(TARGETS),
        "gates": {
            name: gate[name] >= target for name, target in TARGETS.items()
        },
    }
    os.makedirs(os.path.dirname(json_path) or ".", exist_ok=True)
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {json_path}")
    for name, target in TARGETS.items():
        achieved = gate[name]
        status = "MET" if achieved >= target else "below target"
        print(f"  ring-{SIZES[-1]} {name}: {achieved:.2f}x (target {target}x, {status})")
    stats = vid.vid_cache_stats()
    print(
        "vid cache after last run: "
        f"sha1 entries={stats['sha1']['entries']} hits={stats['sha1']['hits']} "
        f"misses={stats['sha1']['misses']} (bounded at {stats['sha1']['limit']})"
    )


if __name__ == "__main__":
    argv = [arg for arg in sys.argv[1:]]
    path = DEFAULT_JSON_PATH
    if "--json" in argv:
        index = argv.index("--json")
        path = argv[index + 1]
        del argv[index : index + 2]
    main(int(argv[0]) if argv else DEFAULT_REPEATS, path)
