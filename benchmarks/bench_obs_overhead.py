"""Disabled-tracer overhead guard on the batched-pipeline workload.

The observability layer promises **zero overhead when disabled**: an
engine whose tracer was never installed — or was detached again via
``set_tracer(None)`` — must run the exact pre-instrumentation hot path
(the traced variants live in instance ``__dict__`` overrides that
``set_tracer`` adds and removes; see
:meth:`repro.datalog.engine.NDlogEngine.set_tracer`).

This benchmark measures that claim on the same workload as
``bench_batch_speedup.py`` (PATHVECTOR + reference-provenance rewrite on
rings, batched pipeline), in three configurations:

- ``pristine``  — tracing never touched (exactly ``bench_batch_speedup``)
- ``detached``  — a tracer was installed and then removed before timing;
  guards that detaching restores the pristine hot path
- ``traced``    — a recording tracer attached (the advisory enabled cost)

All three produce bit-identical fixpoints and planner counters, which the
table run asserts outright (determinism is exact, so it always gates).

Timing, per this repo's CI policy, **never gates by default**: wall-clock
assertions are machine-dependent and flaky in shared runners, so the
comparison table is advisory.  Pass ``--assert-overhead [PCT]`` to opt in
locally: it fails the run when the ``detached`` configuration is more
than PCT percent slower than ``pristine`` (default 2.0, the acceptance
bar's ceiling).

Run directly for the comparison table::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [repeats] [--assert-overhead [PCT]]

or through pytest-benchmark for the 12-node cases.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from typing import Dict, List, Tuple

from repro.core.rewrite import rewrite_program
from repro.datalog import Fact, StandaloneNetwork
from repro.net import ring_topology
from repro.obs import Tracer
from repro.protocols import pathvector_program

SIZES = (12, 24)
DEFAULT_REPEATS = 3
DEFAULT_OVERHEAD_PCT = 2.0

CONFIGS = ("pristine", "detached", "traced")


def _build(size: int) -> Tuple[StandaloneNetwork, List]:
    topology = ring_topology(size, seed=0)
    network = StandaloneNetwork(
        topology.nodes, rewrite_program(pathvector_program()), pipeline="batched"
    )
    return network, topology.link_facts()


def _configure(network: StandaloneNetwork, config: str) -> None:
    if config == "pristine":
        return
    tracer = Tracer()
    for engine in network.engines.values():
        engine.set_tracer(tracer)
        if config == "detached":
            engine.set_tracer(None)


def run_fixpoint(size: int, config: str) -> StandaloneNetwork:
    """Run the rewritten PATHVECTOR fixpoint once under *config*."""
    network, links = _build(size)
    _configure(network, config)
    for source, destination, cost in links:
        network.insert(Fact("link", (source, destination, cost)))
    network.run()
    return network


def _run_once(size: int, config: str) -> float:
    """One timed fixpoint, excluding construction and tracer setup."""
    network, links = _build(size)
    _configure(network, config)
    gc.collect()
    started = time.perf_counter()
    for source, destination, cost in links:
        network.insert(Fact("link", (source, destination, cost)))
    network.run()
    return time.perf_counter() - started


def _measure(size: int, repeats: int) -> Dict[str, float]:
    """Best-of-*repeats* per configuration, interleaved against load spikes."""
    best = {config: float("inf") for config in CONFIGS}
    for _ in range(repeats):
        for config in CONFIGS:
            best[config] = min(best[config], _run_once(size, config))
    return best


def _snapshot(network: StandaloneNetwork) -> dict:
    names = set()
    for engine in network.engines.values():
        names.update(engine.catalog.names())
    rows = {name: network.all_rows(name) for name in sorted(names)}
    rows["__stats__"] = network.planner_stats()
    return rows


# ---------------------------------------------------------------------- #
# pytest-benchmark cases (and the equivalence guard)
# ---------------------------------------------------------------------- #
def test_fixpoint_tracer_never_installed(benchmark):
    network = benchmark(lambda: run_fixpoint(SIZES[0], "pristine"))
    assert len(network.all_rows("prov")) > 0


def test_fixpoint_tracer_detached(benchmark):
    network = benchmark(lambda: run_fixpoint(SIZES[0], "detached"))
    assert len(network.all_rows("prov")) > 0


def test_fixpoint_tracer_enabled(benchmark):
    network = benchmark(lambda: run_fixpoint(SIZES[0], "traced"))
    assert len(network.all_rows("prov")) > 0


def test_configs_bit_identical():
    """Tracing on, off or detached: every table and counter must agree."""
    pristine = _snapshot(run_fixpoint(SIZES[0], "pristine"))
    detached = _snapshot(run_fixpoint(SIZES[0], "detached"))
    traced = _snapshot(run_fixpoint(SIZES[0], "traced"))
    assert pristine == detached == traced


def test_detached_engine_restores_class_methods():
    """The structural form of the zero-overhead claim (timing-free)."""
    network, _ = _build(SIZES[0])
    _configure(network, "detached")
    for engine in network.engines.values():
        for name in ("run", "_process_batch", "_fire_rules"):
            assert name not in engine.__dict__
        assert engine.run.__func__ is type(engine).run


# ---------------------------------------------------------------------- #
# standalone comparison table
# ---------------------------------------------------------------------- #
def main(repeats: int, assert_overhead: float = None) -> int:
    print(
        "Disabled-tracer overhead: PATHVECTOR + provenance rewrite "
        f"(ring, StandaloneNetwork fixpoint, best of {repeats})"
    )
    header = (
        f"{'nodes':>5} {'pristine s':>11} {'detached s':>11} {'traced s':>10} "
        f"{'detached %':>11} {'traced %':>9}"
    )
    print(header)
    print("-" * len(header))
    status = 0
    for size in SIZES:
        snapshots = {config: _snapshot(run_fixpoint(size, config)) for config in CONFIGS}
        assert snapshots["pristine"] == snapshots["detached"] == snapshots["traced"], (
            f"tracing perturbed the {size}-node fixpoint"
        )
        best = _measure(size, repeats)
        detached_pct = (best["detached"] / best["pristine"] - 1.0) * 100.0
        traced_pct = (best["traced"] / best["pristine"] - 1.0) * 100.0
        print(
            f"{size:>5} {best['pristine']:>11.3f} {best['detached']:>11.3f} "
            f"{best['traced']:>10.3f} {detached_pct:>+10.1f}% {traced_pct:>+8.1f}%"
        )
        if assert_overhead is not None and detached_pct > assert_overhead:
            print(
                f"      FAIL: detached tracer {detached_pct:+.1f}% exceeds "
                f"the {assert_overhead:.1f}% bound"
            )
            status = 1
    if assert_overhead is None:
        print("\nadvisory only; pass --assert-overhead to gate (local runs)")
    elif status == 0:
        print(f"\nOK: detached overhead within {assert_overhead:.1f}% on every size")
    return status


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description="disabled-tracer overhead table")
    parser.add_argument("repeats", nargs="?", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--assert-overhead",
        nargs="?",
        type=float,
        const=DEFAULT_OVERHEAD_PCT,
        default=None,
        metavar="PCT",
        help="fail when the detached config exceeds PCT%% over pristine "
        f"(default {DEFAULT_OVERHEAD_PCT}%%; off unless given — timing "
        "assertions are advisory in CI by repo policy)",
    )
    return parser.parse_args(argv)


if __name__ == "__main__":
    arguments = _parse_args(sys.argv[1:])
    sys.exit(main(arguments.repeats, arguments.assert_overhead))
