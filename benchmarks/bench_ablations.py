"""Ablation benchmarks for design choices called out in DESIGN.md.

These go beyond the paper's figures and quantify the impact of individual
design decisions:

* reference-based pointers vs the centralized-collector baseline
  (how much aggregate bandwidth does the collector attract?);
* BDD vs uncompressed-polynomial annotations in value-based mode
  (how much does absorption/condensation save on the wire?);
* provenance-update propagation in value-based mode (the REFRESH cascade)
  on a small network, versus first-derivation-only annotations.
"""

from __future__ import annotations

from repro.core import ExspanConfig, ExspanNetwork, ProvenanceMode
from repro.core.modes import prepare_program
from repro.net import ring_topology
from repro.protocols import mincost_program, pathvector_program


def _maintenance_bytes(mode: ProvenanceMode, size: int = 16, **kwargs) -> int:
    network = ExspanNetwork(
        ring_topology(size, seed=3),
        mincost_program(),
        config=ExspanConfig(mode=mode, **kwargs),
    )
    network.seed_links()
    network.run_to_fixpoint()
    return network.maintenance_bytes()


def test_reference_vs_centralized_collection(benchmark):
    """Centralized collection should cost several times reference-based pointers."""

    def run():
        return {
            "reference": _maintenance_bytes(ProvenanceMode.REFERENCE),
            "centralized": _maintenance_bytes(ProvenanceMode.CENTRALIZED),
            "none": _maintenance_bytes(ProvenanceMode.NONE),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["bytes"] = result
    assert result["none"] < result["reference"] < result["centralized"]
    assert result["centralized"] > 2 * result["reference"]


def test_bdd_vs_polynomial_value_annotations(benchmark):
    """BDD condensation should not be more expensive than raw polynomials."""

    def run():
        return {
            "bdd": _maintenance_bytes(ProvenanceMode.VALUE, value_policy="bdd"),
            "polynomial": _maintenance_bytes(ProvenanceMode.VALUE, value_policy="polynomial"),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["bytes"] = result
    assert result["bdd"] <= result["polynomial"] * 1.1


def test_value_mode_update_propagation_cost(benchmark):
    """Propagating provenance updates (REFRESH cascades) costs extra bandwidth.

    This isolates the 'propagation of provenance updates' component of
    value-based provenance that the paper cites as part of its cost; it is
    disabled by default in the figure experiments because its cascades grow
    quickly with network size.
    """

    def run_with_propagation(enabled: bool) -> int:
        prepared = prepare_program(mincost_program(), ProvenanceMode.VALUE)
        network = ExspanNetwork(
            ring_topology(8, seed=5),
            mincost_program(),
            config=ExspanConfig(mode=ProvenanceMode.VALUE),
        )
        for node in network.nodes.values():
            node.engine.annotation_policy.propagate_updates = enabled
        network.seed_links()
        network.run_to_fixpoint()
        return network.maintenance_bytes()

    def run():
        return {
            "without_propagation": run_with_propagation(False),
            "with_propagation": run_with_propagation(True),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["bytes"] = result
    assert result["with_propagation"] >= result["without_propagation"]
