"""Canonical ``sys.path`` bootstrap for running from an uninstalled checkout.

The single source of truth for putting ``src/`` on the import path: the
repo-root ``conftest.py`` and ``benchmarks/conftest.py`` both import
:func:`ensure_src_on_path` from here (``pytest.ini``'s ``pythonpath = src``
covers the common case; the conftests keep invocations with a different
rootdir working).  Standalone scripts may import it too.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(REPO_ROOT, "src")


def ensure_src_on_path() -> str:
    """Prepend ``<repo>/src`` to ``sys.path`` (idempotent); returns the path."""
    if SRC not in sys.path:
        sys.path.insert(0, SRC)
    return SRC
