"""The convergence oracle: fault-free byte-identity for quiescent runs.

The headline correctness contract of the fault subsystem (and of ExSPAN's
own design): derivation counting is *confluent* — the final tuple
multiset and annotations depend only on the set of processed updates,
never on their order — and the reliable transport delivers every
application update exactly once.  Therefore any fault plan that
quiesces must leave every node in a state whose digest is byte-identical
to the fault-free run's.

The digest deliberately includes table rows *with derivation counts*
and canonical annotations, and deliberately excludes every traffic or
evaluation counter (``engine.stats``, retransmit tallies, ...): faults
legitimately change how much work was done, never what was derived.
Compare with :func:`repro.net.sharding.node_state_digest`, the stricter
digest used for serial-vs-sharded equivalence, which *does* include
counters because sharding must not change the work either.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping

from ..net.sharding import _canonical_annotation

__all__ = [
    "node_convergence_state",
    "collect_convergence",
    "digest_convergence",
    "convergence_digest",
]


def node_convergence_state(engine) -> Dict[str, Any]:
    """Canonical converged state of one node: rows+counts, annotations."""
    tables = {
        table.name: sorted(
            [repr(row), count] for row, count in table.rows_with_counts()
        )
        for table in engine.catalog.tables()
        if len(table)
    }
    annotations = {
        repr(key): _canonical_annotation(annotation)
        for key, annotation in engine._annotations.items()
    }
    return {"tables": tables, "annotations": dict(sorted(annotations.items()))}


def collect_convergence(net) -> Dict[str, Dict[str, Any]]:
    """Per-node convergence states of a (serial or shard-local) network.

    Keys are ``repr(address)`` so the mapping is JSON-canonicalizable and
    merges deterministically across shard workers.
    """
    return {
        repr(address): node_convergence_state(node.engine)
        for address, node in net.nodes.items()
    }


def digest_convergence(states: Mapping[str, Dict[str, Any]]) -> str:
    """SHA-256 over the canonical-JSON rendering of per-node states."""
    canonical = json.dumps(
        {key: states[key] for key in sorted(states)},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def convergence_digest(net) -> str:
    """The convergence digest of a serial :class:`ExspanNetwork`."""
    return digest_convergence(collect_convergence(net))
