"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a frozen description of every fault a run should
experience: probabilistic or counted message drops / duplicates / extra
delays on specific links, node crashes with optional restart, link
flaps, straggler nodes, and shard-worker kills.  The plan itself carries
no mutable state — it is executed by :class:`repro.faults.injector.
FaultInjector`, which derives every random decision from
``(plan.seed, edge, per-edge sequence)`` so the schedule is
bit-reproducible under any ``PYTHONHASHSEED`` and any shard count.

Plans can be built programmatically, parsed from the compact
``parse_fault_spec`` grammar used by the CLI / shell / experiments
``--faults`` knob, or round-tripped through ``to_dict``/``from_dict``
(the form shipped to forked shard workers).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "LinkFault",
    "CrashFault",
    "FlapFault",
    "StragglerFault",
    "WorkerKill",
    "FaultPlan",
    "parse_fault_spec",
]

_LINK_KINDS = ("drop", "duplicate", "delay", "reorder")


@dataclass(frozen=True)
class LinkFault:
    """A message-level fault on matching (source, destination) pairs.

    ``kind`` is one of ``drop`` (message vanishes), ``duplicate`` (a
    second copy is transmitted), ``delay`` (extra latency is added) or
    ``reorder`` (alias for ``delay`` — the reliable transport restores
    per-edge FIFO order, so reordering manifests as delayed delivery).
    ``src``/``dst`` of ``None`` match any node.  ``prob`` is the
    per-message firing probability; ``max_events`` caps how many times
    the rule may fire; ``start``/``end`` bound the send-time window.
    """

    kind: str
    src: Optional[str] = None
    dst: Optional[str] = None
    prob: float = 1.0
    delay: float = 0.0
    start: float = 0.0
    end: Optional[float] = None
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in _LINK_KINDS:
            raise ValueError(f"unknown link-fault kind {self.kind!r}")
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob!r}")
        if self.delay < 0.0:
            raise ValueError("delay must be non-negative")

    def matches(self, src: str, dst: str, when: float) -> bool:
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        if when < self.start:
            return False
        if self.end is not None and when >= self.end:
            return False
        return True


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop crash of ``node`` at time ``at``.

    The node loses all volatile state (engine tables, provenance store,
    query-service caches) and every queued delivery addressed to it is
    cancelled.  With ``restart_after`` set, the node restarts that many
    seconds later and re-derives its state by replaying the injector's
    durable journal; with ``restart_after=None`` the node stays dead for
    the rest of the run (queries touching it degrade to ``partial``).
    """

    node: str
    at: float
    restart_after: Optional[float] = None


@dataclass(frozen=True)
class FlapFault:
    """Link ``a``—``b`` goes down at ``down_at`` and back up ``up_after``
    seconds later (with the original or an overridden ``cost``)."""

    a: str
    b: str
    down_at: float
    up_after: float
    cost: Optional[int] = None


@dataclass(frozen=True)
class StragglerFault:
    """Node whose *outbound* messages suffer ``delay`` extra seconds of
    latency inside the ``start``/``end`` window.  Applying the penalty on
    the send side keeps the schedule a pure function of sender-local
    history, which is what makes it shard-invariant."""

    node: str
    delay: float
    start: float = 0.0
    end: Optional[float] = None

    def matches(self, src: str, when: float) -> bool:
        if self.node != src:
            return False
        if when < self.start:
            return False
        if self.end is not None and when >= self.end:
            return False
        return True


@dataclass(frozen=True)
class WorkerKill:
    """SIGKILL shard ``shard`` after it has completed ``after_windows``
    conservative windows.  Consumed by ``ShardedExspanNetwork`` (the
    supervisor restarts the worker and replays its command log); ignored
    by serial runs, where there is no worker to kill."""

    shard: int
    after_windows: int = 1


@dataclass(frozen=True)
class FaultPlan:
    """The complete, seeded fault schedule for one run."""

    seed: int = 0
    link_faults: Tuple[LinkFault, ...] = ()
    crashes: Tuple[CrashFault, ...] = ()
    flaps: Tuple[FlapFault, ...] = ()
    stragglers: Tuple[StragglerFault, ...] = ()
    worker_kills: Tuple[WorkerKill, ...] = ()
    rto: float = 0.05
    max_attempts: Optional[int] = None
    metadata: Dict[str, Any] = field(default_factory=dict, compare=False)

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    def is_empty(self) -> bool:
        return not (
            self.link_faults
            or self.crashes
            or self.flaps
            or self.stragglers
            or self.worker_kills
        )

    def has_flaps(self) -> bool:
        return bool(self.flaps)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.rto != 0.05:
            parts.append(f"rto={self.rto}")
        if self.max_attempts is not None:
            parts.append(f"attempts={self.max_attempts}")
        for rule in self.link_faults:
            bits = [rule.kind, f"{rule.src or '*'}->{rule.dst or '*'}"]
            if rule.prob != 1.0:
                bits.append(f"p={rule.prob}")
            if rule.delay:
                bits.append(f"d={rule.delay}")
            if rule.max_events is not None:
                bits.append(f"n={rule.max_events}")
            parts.append(":".join(bits))
        for crash in self.crashes:
            tail = "" if crash.restart_after is None else f":restart={crash.restart_after}"
            parts.append(f"crash:{crash.node}@{crash.at}{tail}")
        for flap in self.flaps:
            parts.append(f"flap:{flap.a}-{flap.b}@{flap.down_at}:up={flap.up_after}")
        for lag in self.stragglers:
            parts.append(f"straggler:{lag.node}:d={lag.delay}")
        for kill in self.worker_kills:
            parts.append(f"killworker:{kill.shard}@{kill.after_windows}")
        return ";".join(parts)

    # -- serialization (picklable dict form for shard-worker configs) --

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"seed": self.seed, "rto": self.rto}
        if self.max_attempts is not None:
            payload["max_attempts"] = self.max_attempts
        if self.link_faults:
            payload["link_faults"] = [
                {
                    "kind": f.kind,
                    "src": f.src,
                    "dst": f.dst,
                    "prob": f.prob,
                    "delay": f.delay,
                    "start": f.start,
                    "end": f.end,
                    "max_events": f.max_events,
                }
                for f in self.link_faults
            ]
        if self.crashes:
            payload["crashes"] = [
                {"node": c.node, "at": c.at, "restart_after": c.restart_after}
                for c in self.crashes
            ]
        if self.flaps:
            payload["flaps"] = [
                {
                    "a": f.a,
                    "b": f.b,
                    "down_at": f.down_at,
                    "up_after": f.up_after,
                    "cost": f.cost,
                }
                for f in self.flaps
            ]
        if self.stragglers:
            payload["stragglers"] = [
                {"node": s.node, "delay": s.delay, "start": s.start, "end": s.end}
                for s in self.stragglers
            ]
        if self.worker_kills:
            payload["worker_kills"] = [
                {"shard": k.shard, "after_windows": k.after_windows}
                for k in self.worker_kills
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            rto=float(payload.get("rto", 0.05)),
            max_attempts=payload.get("max_attempts"),
            link_faults=tuple(
                LinkFault(**entry) for entry in payload.get("link_faults", ())
            ),
            crashes=tuple(
                CrashFault(**entry) for entry in payload.get("crashes", ())
            ),
            flaps=tuple(FlapFault(**entry) for entry in payload.get("flaps", ())),
            stragglers=tuple(
                StragglerFault(**entry) for entry in payload.get("stragglers", ())
            ),
            worker_kills=tuple(
                WorkerKill(**entry) for entry in payload.get("worker_kills", ())
            ),
        )


def _parse_options(tokens: list) -> Dict[str, str]:
    options: Dict[str, str] = {}
    for token in tokens:
        for piece in token.split(","):
            piece = piece.strip()
            if not piece:
                continue
            if "=" not in piece:
                raise ValueError(f"malformed fault option {piece!r}")
            key, value = piece.split("=", 1)
            options[key.strip()] = value.strip()
    return options


def _node(token: str) -> Optional[str]:
    return None if token in ("*", "") else token


def parse_fault_spec(text: str) -> FaultPlan:
    """Parse the compact fault-plan grammar.

    Clauses are semicolon-separated::

        seed=42; rto=0.05; attempts=8
        drop:a->b:p=0.3,n=5,from=0.0,until=2.0
        dup:*->n2:p=0.2
        delay:n1->*:d=0.01,p=0.5
        reorder:a->b:p=0.4,d=0.02
        crash:n3@1.0:restart=0.5
        flap:a-b@2.0:up=1.0,cost=3
        straggler:n2:d=0.01,from=0.0,until=5.0
        killworker:1@2

    ``*`` matches any node.  Unknown clauses raise ``ValueError``.
    """
    seed = 0
    rto = 0.05
    max_attempts: Optional[int] = None
    link_faults = []
    crashes = []
    flaps = []
    stragglers = []
    kills = []
    alias = {"dup": "duplicate"}
    for raw in text.split(";"):
        clause = raw.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            seed = int(clause[5:])
            continue
        if clause.startswith("rto="):
            rto = float(clause[4:])
            continue
        if clause.startswith("attempts="):
            max_attempts = int(clause[9:])
            continue
        head, *rest = clause.split(":")
        head = head.strip()
        kind = alias.get(head, head)
        if kind in _LINK_KINDS:
            if not rest:
                raise ValueError(f"{head} clause needs a SRC->DST part")
            edge = rest[0].strip()
            if "->" not in edge:
                raise ValueError(f"malformed edge {edge!r} (expected SRC->DST)")
            src_token, dst_token = (part.strip() for part in edge.split("->", 1))
            options = _parse_options(rest[1:])
            delay = float(options.pop("d", 0.0))
            if kind == "reorder" and delay == 0.0:
                delay = 0.005
            link_faults.append(
                LinkFault(
                    kind="delay" if kind == "reorder" else kind,
                    src=_node(src_token),
                    dst=_node(dst_token),
                    prob=float(options.pop("p", 1.0)),
                    delay=delay,
                    start=float(options.pop("from", 0.0)),
                    end=float(options["until"]) if options.get("until") else None,
                    max_events=int(options["n"]) if options.get("n") else None,
                )
            )
            options.pop("until", None)
            options.pop("n", None)
            if options:
                raise ValueError(f"unknown options {sorted(options)} in {clause!r}")
        elif kind == "crash":
            if not rest or "@" not in rest[0]:
                raise ValueError(f"malformed crash clause {clause!r} (crash:NODE@T)")
            node, at = rest[0].rsplit("@", 1)
            if not node:
                raise ValueError(f"malformed crash clause {clause!r} (empty node)")
            options = _parse_options(rest[1:])
            restart = options.pop("restart", None)
            if options:
                raise ValueError(f"unknown options {sorted(options)} in {clause!r}")
            crashes.append(
                CrashFault(
                    node=node.strip(),
                    at=float(at),
                    restart_after=float(restart) if restart is not None else None,
                )
            )
        elif kind == "flap":
            if not rest or "@" not in rest[0] or "-" not in rest[0].split("@", 1)[0]:
                raise ValueError(f"malformed flap clause {clause!r} (flap:A-B@T:up=D)")
            edge, at = rest[0].rsplit("@", 1)
            a, b = (part.strip() for part in edge.split("-", 1))
            options = _parse_options(rest[1:])
            if "up" not in options:
                raise ValueError(f"flap clause {clause!r} needs up=DURATION")
            cost = options.pop("cost", None)
            flaps.append(
                FlapFault(
                    a=a,
                    b=b,
                    down_at=float(at),
                    up_after=float(options.pop("up")),
                    cost=int(cost) if cost is not None else None,
                )
            )
            if options:
                raise ValueError(f"unknown options {sorted(options)} in {clause!r}")
        elif kind == "straggler":
            if not rest:
                raise ValueError(f"straggler clause {clause!r} needs NODE:d=DELAY")
            options = _parse_options(rest[1:])
            if "d" not in options:
                raise ValueError(f"straggler clause {clause!r} needs d=DELAY")
            stragglers.append(
                StragglerFault(
                    node=rest[0].strip(),
                    delay=float(options.pop("d")),
                    start=float(options.pop("from", 0.0)),
                    end=float(options["until"]) if options.get("until") else None,
                )
            )
            options.pop("until", None)
            if options:
                raise ValueError(f"unknown options {sorted(options)} in {clause!r}")
        elif kind == "killworker":
            if not rest or "@" not in rest[0]:
                raise ValueError(
                    f"malformed killworker clause {clause!r} (killworker:SHARD@WINDOWS)"
                )
            shard, windows = rest[0].rsplit("@", 1)
            kills.append(WorkerKill(shard=int(shard), after_windows=int(windows)))
        else:
            raise ValueError(f"unknown fault clause {clause!r}")
    return FaultPlan(
        seed=seed,
        rto=rto,
        max_attempts=max_attempts,
        link_faults=tuple(link_faults),
        crashes=tuple(crashes),
        flaps=tuple(flaps),
        stragglers=tuple(stragglers),
        worker_kills=tuple(kills),
    )
