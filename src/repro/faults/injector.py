"""Deterministic fault execution and the reliable transport that survives it.

The :class:`FaultInjector` sits between :meth:`Network._dispatch` and
:meth:`Host.deliver` and plays both roles of the robustness story:

* **adversary** — it executes a :class:`~repro.faults.plan.FaultPlan`:
  drops, duplicates and delays messages on matching links, slows
  straggler senders, flaps links, and fail-stop crashes (and restarts)
  nodes.  Every random decision is drawn from
  ``random.Random(f"{seed}:{src}->{dst}:{n}")`` where ``n`` is a counter
  the *sender* alone advances for that edge — a pure function of
  sender-local history, so the schedule is bit-identical under any
  ``PYTHONHASHSEED`` and any shard count (the same foundation the
  delivery-order keys build on).

* **transport** — an ARQ layer that makes the system survive the
  adversary: application kinds (``delta``/``prov``) are stamped with a
  per-``(src, dst)`` transport sequence number (``Message.tseq``),
  acknowledged end-to-end (``ftack``), retransmitted with deterministic
  exponential backoff until acked, de-duplicated at the receiver, and
  released to the application in FIFO order per edge (restoring order
  under reordering/delay faults — delete-before-insert would corrupt
  derivation counts).

Transport state — sequence counters, dedup/reassembly windows,
retransmit records and the per-node delivery journal — is *durable*:
it survives node crashes, the way a write-ahead transport journal
would in a real deployment.  A crashed node loses all volatile
application state (engine tables, provenance store, query caches);
on restart it is rebuilt from scratch and re-derives its soft state
by replaying the journal in original delivery order, with every
outbound send suppressed (the originals were either delivered or are
still covered by live retransmit records), which is what makes
recovery convergent rather than duplicative.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..net.message import Message
from .plan import CrashFault, FaultPlan, FlapFault

__all__ = ["FaultInjector", "APP_KINDS", "ACK_KIND"]

#: Message kinds carrying application state; these get ARQ reliability.
APP_KINDS = frozenset({"delta", "prov"})

#: Transport acknowledgement kind (fault-prone but idempotent, never ARQ'd).
ACK_KIND = "ftack"

#: Tracked-delivery lists are pruned of executed/cancelled events past this.
_TRACK_PRUNE = 2048


class _RetransmitRecord:
    """One unacknowledged application message awaiting its ``ftack``."""

    __slots__ = (
        "source", "destination", "kind", "payload", "size", "batch",
        "tseq", "attempts", "timer", "done",
    )

    def __init__(self, message: Message) -> None:
        self.source = message.source
        self.destination = message.destination
        self.kind = message.kind
        self.payload = message.payload
        self.size = message.size
        self.batch = message.batch
        self.tseq = message.tseq
        self.attempts = 0
        self.timer = None
        self.done = False


class _RecvState:
    """Per-(receiver, sender) dedup + FIFO-restore window."""

    __slots__ = ("next_expected", "buffer")

    def __init__(self) -> None:
        self.next_expected = 0
        self.buffer: Dict[int, Message] = {}


class FaultInjector:
    """Executes a :class:`FaultPlan` against one ``ExspanNetwork``."""

    def __init__(self, net: Any, plan: FaultPlan) -> None:
        self.net = net
        self.network = net.network
        self.simulator = net.network.simulator
        self.plan = plan
        self.tracer = getattr(net, "tracer", None)
        self.counters: Dict[str, int] = {}
        # -- adversary state (sender-local, deterministic) --
        self._edge_seq: Dict[Tuple[Any, Any], int] = {}
        self._rule_fired: Dict[Tuple[int, Any, Any], int] = {}
        # -- durable transport state --
        self._send_seq: Dict[Tuple[Any, Any], int] = {}
        self._pending: Dict[Tuple[Any, Any, int], _RetransmitRecord] = {}
        self._recv: Dict[Tuple[Any, Any], _RecvState] = {}
        self._journal: Dict[Any, List[Tuple[Any, ...]]] = {}
        # -- crash bookkeeping --
        self._crash_nodes = {fault.node for fault in plan.crashes}
        self._perma_dead: Dict[Any, float] = {
            fault.node: fault.at
            for fault in plan.crashes
            if fault.restart_after is None
        }
        self._tracked: Dict[Any, List[Any]] = {}
        self._replaying: set = set()
        # Link cost captured at flap-down so flap-up restores it exactly
        # (re-adding at the network default would change the converged
        # routing state and break the convergence oracle).
        self._flap_cost: Dict[Tuple[Any, Any], Any] = {}

    # ------------------------------------------------------------------ #
    # installation
    # ------------------------------------------------------------------ #
    def install(self) -> "FaultInjector":
        """Hook into the network and schedule the plan's timed faults."""
        if self.network.fault_injector is not None:
            raise RuntimeError("a fault injector is already installed")
        self.network.fault_injector = self
        for address, node in self.net.nodes.items():
            self._hook_service(address, node.query_service)
        for fault in self.plan.crashes:
            # Crash/restart events run on the shard that owns the node;
            # other shards see the outage only through lost traffic.
            if fault.node in self.net.nodes:
                self.simulator.schedule_at(
                    fault.at, lambda f=fault: self._crash(f)
                )
        for flap in self.plan.flaps:
            # Every instance (serial, or each shard worker) schedules the
            # same flap so all topology replicas change identically.
            self.simulator.schedule_at(
                flap.down_at, lambda f=flap: self._flap_down(f)
            )
            self.simulator.schedule_at(
                flap.down_at + flap.up_after, lambda f=flap: self._flap_up(f)
            )
        return self

    # ------------------------------------------------------------------ #
    # send path (called from Network._dispatch)
    # ------------------------------------------------------------------ #
    def outbound(self, message: Message) -> Message:
        """Fault-injecting replacement for the network's dispatch path."""
        if message.source in self._replaying:
            # Recovery replay regenerates the node's pre-crash outputs;
            # the originals were delivered (or live in retransmit
            # records), so re-sending would double-count downstream.
            self.counters["replay_suppressed_sends"] = (
                self.counters.get("replay_suppressed_sends", 0) + 1
            )
            return message
        if message.kind in APP_KINDS and message.tseq is None:
            edge = (message.source, message.destination)
            seq = self._send_seq.get(edge, 0)
            self._send_seq[edge] = seq + 1
            message.tseq = seq
            record = _RetransmitRecord(message)
            self._transmit_with_faults(message)
            # compute_size() ran inside _transmit; remember the billed size
            # so retransmissions charge identical bytes.
            record.size = message.size
            self._pending[(message.source, message.destination, seq)] = record
            self._schedule_retry(record)
            return message
        self._transmit_with_faults(message)
        return message

    def _transmit_with_faults(self, message: Message) -> None:
        """One physical transmission attempt, subject to the plan's faults."""
        drop, duplicate, extra = self._fate(message)
        if drop:
            self.counters["drops"] = self.counters.get("drops", 0) + 1
            # The sender did put bytes on the wire: bill, never deliver.
            self.network._transmit(message, drop=True)
        else:
            self.network._transmit(message, extra_latency=extra)
        if duplicate:
            self.counters["duplicates"] = self.counters.get("duplicates", 0) + 1
            clone = Message(
                source=message.source,
                destination=message.destination,
                kind=message.kind,
                payload=message.payload,
                size=message.size,
                batch=message.batch,
                tseq=message.tseq,
            )
            # The duplicate copy is exempt from further fault decisions
            # (no RNG draw), so one rule cannot amplify itself unboundedly.
            self.network._transmit(clone, extra_latency=extra)

    def _fate(self, message: Message) -> Tuple[bool, bool, float]:
        """Decide (drop, duplicate, extra_delay) for one transmission.

        Consumes exactly one per-edge RNG stream position per call; every
        matching rule draws exactly one uniform in declaration order, so
        the schedule is reproducible from ``(plan.seed, edge, n)`` alone.
        """
        src, dst = message.source, message.destination
        now = self.simulator.now
        extra = 0.0
        for lag in self.plan.stragglers:
            if lag.matches(src, now):
                extra += lag.delay
        if not self.plan.link_faults:
            return False, False, extra
        n = self._edge_seq.get((src, dst), 0)
        self._edge_seq[(src, dst)] = n + 1
        rng = random.Random(f"{self.plan.seed}:{src!r}->{dst!r}:{n}")
        drop = duplicate = False
        for index, rule in enumerate(self.plan.link_faults):
            if not rule.matches(src, dst, now):
                continue
            if rule.max_events is not None:
                fired = self._rule_fired.get((index, src, dst), 0)
                if fired >= rule.max_events:
                    continue
            if rng.random() >= rule.prob:
                continue
            if rule.max_events is not None:
                self._rule_fired[(index, src, dst)] = (
                    self._rule_fired.get((index, src, dst), 0) + 1
                )
            if rule.kind == "drop":
                drop = True
            elif rule.kind == "duplicate":
                duplicate = True
            else:  # "delay" (and its "reorder" alias)
                extra += rule.delay
                self.counters["delays"] = self.counters.get("delays", 0) + 1
        return drop, duplicate, extra

    # ------------------------------------------------------------------ #
    # retransmission (deterministic exponential backoff)
    # ------------------------------------------------------------------ #
    def _schedule_retry(self, record: _RetransmitRecord) -> None:
        delay = self.plan.rto * (2 ** record.attempts)
        record.timer = self.simulator.schedule(
            delay, lambda: self._retry(record)
        )

    def _retry(self, record: _RetransmitRecord) -> None:
        if record.done:
            return
        record.attempts += 1
        if (
            self.plan.max_attempts is not None
            and record.attempts > self.plan.max_attempts
        ) or self._destination_forever_dead(record.destination):
            # Give up: bounded-retry plans (or a peer that crashed with no
            # scheduled restart) must still quiesce; the query layer turns
            # the resulting silence into an explicit partial result.
            record.done = True
            self._pending.pop(
                (record.source, record.destination, record.tseq), None
            )
            self.counters["gave_up"] = self.counters.get("gave_up", 0) + 1
            return
        self.counters["retransmits"] = self.counters.get("retransmits", 0) + 1
        resend = Message(
            source=record.source,
            destination=record.destination,
            kind=record.kind,
            payload=record.payload,
            size=record.size,
            batch=record.batch,
            tseq=record.tseq,
        )
        self._transmit_with_faults(resend)
        self._schedule_retry(record)

    def _destination_forever_dead(self, destination: Any) -> bool:
        at = self._perma_dead.get(destination)
        return at is not None and self.simulator.now >= at

    # ------------------------------------------------------------------ #
    # receive path (called from Host.deliver)
    # ------------------------------------------------------------------ #
    def deliver(self, host: Any, message: Message) -> None:
        if message.kind == ACK_KIND:
            # Transport state is durable: acks complete retransmit records
            # even while the destination application is down.
            self._on_ack(host, message)
            return
        if not host.up:
            self.counters["dropped_at_down_host"] = (
                self.counters.get("dropped_at_down_host", 0) + 1
            )
            return
        tseq = message.tseq
        if tseq is None:
            self._journal_and_dispatch(host, message)
            return
        state = self._recv.setdefault((host.address, message.source), _RecvState())
        # Ack every arrival, including duplicates — the original ack may
        # itself have been dropped, and re-acking is what stops retries.
        self._send_ack(host, message.source, tseq)
        if tseq < state.next_expected or tseq in state.buffer:
            self.counters["dup_suppressed"] = (
                self.counters.get("dup_suppressed", 0) + 1
            )
            return
        state.buffer[tseq] = message
        while state.next_expected in state.buffer:
            ready = state.buffer.pop(state.next_expected)
            state.next_expected += 1
            self._journal_and_dispatch(host, ready)

    def _send_ack(self, host: Any, source: Any, tseq: int) -> None:
        self.counters["acks_sent"] = self.counters.get("acks_sent", 0) + 1
        self.network.send(host.address, source, ACK_KIND, tseq)

    def _on_ack(self, host: Any, message: Message) -> None:
        record = self._pending.pop(
            (host.address, message.source, message.payload), None
        )
        if record is None or record.done:
            return
        record.done = True
        if record.timer is not None:
            record.timer.cancel()
            record.timer = None

    def _journal_and_dispatch(self, host: Any, message: Message) -> None:
        self._journal.setdefault(host.address, []).append(("msg", message))
        host.dispatch_delivery(message)

    # ------------------------------------------------------------------ #
    # journal hooks (called from the ExspanNetwork facade)
    # ------------------------------------------------------------------ #
    def note_local_op(self, node: Any, action: str, fact: Any) -> None:
        """Journal a local base-fact insert/delete for crash replay."""
        if node in self._replaying:
            return
        self._journal.setdefault(node, []).append(("op", action, fact))

    def note_root_issued(self, node: Any, sequence: int) -> None:
        """Journal the query-service sequence after an external root query.

        External root queries advance the service's query-id counter in
        ways message replay cannot reproduce (their callbacks are not in
        the journal); recording the post-query counter value realigns the
        replayed id stream so message-driven sub-query ids match the ones
        already on the wire — the distributed equivalent of an epoch /
        incarnation number.
        """
        if node in self._replaying:
            return
        self._journal.setdefault(node, []).append(("seq", sequence))

    def _hook_service(self, address: Any, service: Any) -> None:
        service.on_root_issued = (
            lambda sequence, node=address: self.note_root_issued(node, sequence)
        )

    # ------------------------------------------------------------------ #
    # crash / restart
    # ------------------------------------------------------------------ #
    def track_delivery(self, destination: Any, event: Any) -> None:
        """Remember a scheduled delivery so a crash can cancel it."""
        if destination not in self._crash_nodes:
            return
        tracked = self._tracked.setdefault(destination, [])
        tracked.append(event)
        if len(tracked) > _TRACK_PRUNE:
            self._tracked[destination] = [
                pending for pending in tracked if pending._owner is not None
            ]

    def _crash(self, fault: CrashFault) -> None:
        if self.tracer is not None:
            with self.tracer.span(
                "fault.crash", cat="fault", node=str(fault.node)
            ) as span:
                span.add(cancelled=self._do_crash(fault))
        else:
            self._do_crash(fault)

    def _do_crash(self, fault: CrashFault) -> int:
        node = fault.node
        host = self.network.host(node)
        host.up = False
        self.counters["crashes"] = self.counters.get("crashes", 0) + 1
        cancelled = 0
        for event in self._tracked.pop(node, ()):
            if event._owner is not None:
                event.cancel()
                cancelled += 1
        self.counters["cancelled_deliveries"] = (
            self.counters.get("cancelled_deliveries", 0) + cancelled
        )
        if fault.restart_after is not None:
            self.simulator.schedule(
                fault.restart_after, lambda: self._restart(node)
            )
        return cancelled

    def _restart(self, node: Any) -> None:
        """Rebuild *node* from scratch and re-derive its soft state.

        Volatile state (engine tables, provenance rows, query caches) is
        gone; the durable transport journal replays every input — local
        base-fact ops and delivered messages, in original order — against
        a freshly built node with all outbound sends suppressed.
        Derivation counting is confluent, so the replayed node converges
        to exactly the state it held, and unacked pre-crash outputs stay
        covered by the surviving retransmit records.
        """
        if self.tracer is not None:
            with self.tracer.span(
                "fault.restart", cat="fault", node=str(node)
            ) as span:
                span.add(replayed=self._do_restart(node))
        else:
            self._do_restart(node)

    def _do_restart(self, node: Any) -> int:
        self.counters["restarts"] = self.counters.get("restarts", 0) + 1
        net = self.net
        host = self.network.host(node)
        old = net.nodes[node]
        old_specs = list(old.query_service._specs.values())
        self._replaying.add(node)
        try:
            rebuilt = net._build_node(node)
            net.nodes[node] = rebuilt
            for spec in old_specs:
                rebuilt.query_service.register_spec(spec)
            self._hook_service(node, rebuilt.query_service)
            host.up = True
            entries = self._journal.get(node, ())
            for entry in entries:
                if entry[0] == "op":
                    engine = rebuilt.engine
                    if entry[1] == "insert":
                        engine.insert(entry[2])
                    else:
                        engine.delete(entry[2])
                    engine.run()
                elif entry[0] == "msg":
                    host.dispatch_delivery(entry[1])
                else:  # ("seq", value)
                    service = rebuilt.query_service
                    service._sequence = max(service._sequence, entry[1])
            self.counters["replayed_entries"] = (
                self.counters.get("replayed_entries", 0) + len(entries)
            )
            return len(entries)
        finally:
            self._replaying.discard(node)

    # ------------------------------------------------------------------ #
    # link flaps
    # ------------------------------------------------------------------ #
    def _flap_down(self, flap: FlapFault) -> None:
        self.counters["flaps_down"] = self.counters.get("flaps_down", 0) + 1
        topology = self.net.topology
        if flap.cost is None and topology.has_link(flap.a, flap.b):
            self._flap_cost[(flap.a, flap.b)] = topology.link(flap.a, flap.b).cost
        if self.tracer is not None:
            with self.tracer.span(
                "fault.flap_down", cat="fault", a=str(flap.a), b=str(flap.b)
            ):
                self.net.remove_link(flap.a, flap.b)
        else:
            self.net.remove_link(flap.a, flap.b)

    def _flap_up(self, flap: FlapFault) -> None:
        self.counters["flaps_up"] = self.counters.get("flaps_up", 0) + 1
        cost = flap.cost
        if cost is None:
            cost = self._flap_cost.pop((flap.a, flap.b), None)
        if self.tracer is not None:
            with self.tracer.span(
                "fault.flap_up", cat="fault", a=str(flap.a), b=str(flap.b)
            ):
                self.net.add_link(flap.a, flap.b, cost)
        else:
            self.net.add_link(flap.a, flap.b, cost)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """Deterministic snapshot of every fault / transport counter."""
        base = {
            "pending_retransmits": len(self._pending),
            "journal_entries": sum(
                len(entries) for entries in self._journal.values()
            ),
        }
        base.update(self.counters)
        return dict(sorted(base.items()))
