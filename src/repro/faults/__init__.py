"""Deterministic fault injection, reliable transport, and the
convergence oracle (see ``docs/FAULTS.md``).

Entry points:

* build or parse a :class:`FaultPlan` (:func:`parse_fault_spec`);
* install it with :meth:`repro.core.api.ExspanNetwork.install_faults`
  (or the ``faults=`` argument of ``ShardedExspanNetwork``);
* after quiescence, compare :func:`convergence_digest` against the
  fault-free run — byte equality is the contract.
"""

from .injector import ACK_KIND, APP_KINDS, FaultInjector
from .oracle import (
    collect_convergence,
    convergence_digest,
    digest_convergence,
    node_convergence_state,
)
from .plan import (
    CrashFault,
    FaultPlan,
    FlapFault,
    LinkFault,
    StragglerFault,
    WorkerKill,
    parse_fault_spec,
)

__all__ = [
    "ACK_KIND",
    "APP_KINDS",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "CrashFault",
    "FlapFault",
    "StragglerFault",
    "WorkerKill",
    "parse_fault_spec",
    "node_convergence_state",
    "collect_convergence",
    "digest_convergence",
    "convergence_digest",
]
