"""Interactive operator console for the provenance query service.

``python -m repro.shell`` connects a small REPL to a running service
(``--connect host:port``) or spins up an embedded one (``--topology``/
``--program``/``--mode``), then lets an operator register specs, issue
provenance queries, mutate facts, advance simulated time, and inspect
EXPLAIN output and derivation trees — all over the same wire protocol a
programmatic client uses, so everything the shell prints is exactly what
the service serves.

Interactive niceties (readline history, tab completion over predicates
and spec names) degrade gracefully when ``readline`` is unavailable, and
the ``--command``/stdin mode emits a deterministic transcript (prompt
lines echoed, no wall-clock anywhere) for the golden-transcript CI gate.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, List, Optional, Sequence, TextIO

from ..core.errors import ProvenanceError
from ..service.client import ServiceClient, ServiceError
from ..service.protocol import FrameError

__all__ = ["ExspanShell", "parse_fact", "main"]

PROMPT = "exspan> "

_HELP = """\
Statements
  query NAME(V1,...) [with SPEC]   resolve provenance for a tuple
  insert NAME(V1,...)              insert a base fact and process it
  delete NAME(V1,...)              delete a base fact and propagate
  run DURATION                     advance simulated time
  fixpoint                         run the protocol to fixpoint
  tuples TABLE                     list a table's rows across all nodes
Specials
  \\spec KIND                       register a query spec (polynomial, bdd,
                                   nodeset, derivations, derivability)
  \\specs  \\tables  \\nodes          list registered specs / tables / nodes
  \\explain RULE                    EXPLAIN output for one rule
  \\prov NAME(V1,...) [DEPTH]       pretty-print the derivation tree
  \\stats                           network traffic statistics
  \\metrics                         metrics registry snapshot
  \\faults [PLAN] [digest]          install a fault plan / show injector
                                   state (PLAN is a fault-spec string,
                                   e.g. "drop:a->b:p=0.3"; "digest"
                                   prints the convergence digest)
  \\trace on|off                    per-query sim-time timing lines
  \\snapshot PATH                   checkpoint the network state to a file
  \\shutdown                        drain and stop the connected service
  \\help                            this text
  \\q                               quit"""


def parse_fact(text: str) -> Dict[str, Any]:
    """Parse ``name(v1,v2,...)`` into a wire fact (ints parsed, rest strings)."""
    text = text.strip()
    open_paren = text.find("(")
    if open_paren <= 0 or not text.endswith(")"):
        raise ProvenanceError(f"expected NAME(V1,V2,...), got {text!r}")
    name = text[:open_paren].strip()
    body = text[open_paren + 1 : -1].strip()
    values: List[Any] = []
    if body:
        for part in body.split(","):
            part = part.strip()
            if not part:
                raise ProvenanceError(f"empty value in fact {text!r}")
            try:
                values.append(int(part))
            except ValueError:
                values.append(part)
    return {"name": name, "values": values, "location_index": 0}


def _format_annotation(annotation: Dict[str, Any]) -> str:
    kind = annotation.get("kind")
    if kind == "polynomial":
        return f"polynomial {annotation.get('text')}"
    if kind == "bdd":
        products = annotation.get("products", [])
        rendered = " + ".join("*".join(product) for product in products) or "0"
        return f"bdd[{annotation.get('node_count')} nodes] {rendered}"
    if kind == "set":
        return "{" + ", ".join(str(value) for value in annotation.get("values", [])) + "}"
    if kind in ("bool", "int", "float", "str"):
        return f"{kind} {annotation.get('value')}"
    if kind == "none":
        return "(none)"
    return str(annotation)


class ExspanShell:
    """The REPL: parses one command at a time against a :class:`ServiceClient`."""

    def __init__(
        self,
        client: ServiceClient,
        out: TextIO = sys.stdout,
        echo: bool = False,
        default_spec: str = "polynomial",
        interactive: bool = False,
        pager: Optional[Callable[[str], None]] = None,
        page_threshold: int = 24,
    ) -> None:
        self.client = client
        self.out = out
        self.echo = echo
        self.default_spec = default_spec
        #: Long output (derivation trees, table dumps, EXPLAIN text) goes
        #: through a pager only in interactive mode; scripted transcripts
        #: stay plain so the golden-transcript CI gate never sees one.
        self.interactive = interactive
        self.pager = pager
        self.page_threshold = page_threshold
        self.trace = False
        self.running = True
        self._ensure_spec(default_spec)

    # ------------------------------------------------------------------ #
    # output
    # ------------------------------------------------------------------ #
    def _print(self, text: str = "") -> None:
        self.out.write(text + "\n")

    def _page(self, text: str) -> None:
        """Print *text*, routing through a pager when it would scroll away.

        Only interactive sessions page; anything at or under
        ``page_threshold`` lines prints directly either way.  An injected
        ``pager`` callable wins, then ``$PAGER``, then the built-in
        screenful-at-a-time fallback.
        """
        if not self.interactive or text.count("\n") + 1 <= self.page_threshold:
            self._print(text)
            return
        if self.pager is not None:
            self.pager(text)
            return
        if self._external_pager(text):
            return
        self._builtin_pager(text)

    def _external_pager(self, text: str) -> bool:
        import os
        import subprocess

        command = os.environ.get("PAGER", "").strip()
        if not command:
            return False
        try:
            subprocess.run(command, input=text + "\n", shell=True, check=False, text=True)
            return True
        except OSError:  # pragma: no cover - PAGER misconfigured
            return False

    def _builtin_pager(self, text: str) -> None:
        lines = text.split("\n")
        step = max(self.page_threshold, 1)
        for start in range(0, len(lines), step):
            self._print("\n".join(lines[start : start + step]))
            if start + step < len(lines):
                try:
                    reply = input("--More-- (Enter continues, q stops) ")
                except (EOFError, KeyboardInterrupt):
                    self._print("")
                    return
                if reply.strip().lower().startswith("q"):
                    return

    def _ensure_spec(self, kind: str) -> str:
        return self.client.call("register_spec", spec={"kind": kind})["name"]

    # ------------------------------------------------------------------ #
    # completion (interactive mode only)
    # ------------------------------------------------------------------ #
    def completion_candidates(self) -> List[str]:
        """Everything worth completing: statements, specials, tables, specs."""
        words = [
            "query",
            "insert",
            "delete",
            "run",
            "fixpoint",
            "tuples",
            "with",
            "\\spec",
            "\\specs",
            "\\tables",
            "\\nodes",
            "\\explain",
            "\\prov",
            "\\stats",
            "\\metrics",
            "\\faults",
            "\\trace",
            "\\snapshot",
            "\\shutdown",
            "\\help",
            "\\q",
        ]
        try:
            words.extend(self.client.call("tables")["tables"])
            words.extend(self.client.call("specs")["specs"])
        except (ServiceError, FrameError):
            pass
        return sorted(set(words))

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    def handle(self, line: str) -> None:
        """Execute one command line; errors print, they never raise."""
        line = line.strip()
        if not line or line.startswith("#"):
            return
        if self.echo:
            self._print(PROMPT + line)
        try:
            self._dispatch(line)
        except ProvenanceError as exc:
            self._print(f"error: {exc}")
        except ServiceError as exc:
            self._print(f"error [{exc.code}]: {exc.message}")

    def _dispatch(self, line: str) -> None:
        if line.startswith("\\"):
            self._special(line)
            return
        head, _, rest = line.partition(" ")
        head = head.lower()
        rest = rest.strip()
        if head == "query":
            self._query(rest)
        elif head == "insert":
            result = self.client.call("insert", fact=parse_fact(rest))
            self._print(f"inserted; now={result['now']:.6f}")
        elif head == "delete":
            result = self.client.call("delete", fact=parse_fact(rest))
            self._print(f"deleted; now={result['now']:.6f}")
        elif head == "run":
            try:
                duration = float(rest)
            except ValueError:
                raise ProvenanceError(f"run needs a numeric duration, got {rest!r}") from None
            result = self.client.call("run", duration=duration)
            self._print(f"now={result['now']:.6f}")
        elif head == "fixpoint":
            result = self.client.call("fixpoint")
            self._print(f"fixpoint at {result['fixpoint_time']:.6f}; now={result['now']:.6f}")
        elif head == "tuples":
            if not rest:
                raise ProvenanceError("tuples needs a table name")
            self._tuples(rest)
        elif head in ("quit", "exit"):
            self.running = False
        else:
            raise ProvenanceError(f"unknown command {head!r} (try \\help)")

    def _special(self, line: str) -> None:
        parts = line.split()
        command, args = parts[0], parts[1:]
        if command in ("\\q", "\\quit"):
            self.running = False
        elif command == "\\help":
            self._print(_HELP)
        elif command == "\\tables":
            self._print(" ".join(self.client.call("tables")["tables"]))
        elif command == "\\nodes":
            self._print(" ".join(self.client.call("nodes")["nodes"]))
        elif command == "\\specs":
            self._print(" ".join(self.client.call("specs")["specs"]))
        elif command == "\\spec":
            if not args:
                raise ProvenanceError("\\spec needs a spec kind")
            name = self._ensure_spec(args[0])
            self._print(f"registered {name}")
        elif command == "\\explain":
            if not args:
                raise ProvenanceError("\\explain needs a rule label")
            result = self.client.call("explain", rule=args[0])
            self._page(result["text"])
        elif command == "\\prov":
            if not args:
                raise ProvenanceError("\\prov needs a fact")
            params: Dict[str, Any] = {"fact": parse_fact(args[0])}
            if len(args) > 1:
                params["depth"] = int(args[1])
            result = self.client.call("prov", **params)
            self._page(result["tree"])
        elif command == "\\snapshot":
            if not args:
                raise ProvenanceError("\\snapshot needs a file path")
            result = self.client.call("snapshot", path=args[0])
            self._print(
                f"snapshot: {result['path']} ({result['nodes']} nodes, "
                f"{result['bytes']} bytes); now={result['now']:.6f}"
            )
        elif command == "\\stats":
            self._stats()
        elif command == "\\metrics":
            self._metrics()
        elif command == "\\faults":
            self._faults(args)
        elif command == "\\trace":
            if args and args[0] in ("on", "off"):
                self.trace = args[0] == "on"
            self._print(f"trace {'on' if self.trace else 'off'}")
        elif command == "\\shutdown":
            result = self.client.shutdown_server()
            self._print("server shutting down" if result.get("stopping") else str(result))
            self.running = False
        else:
            raise ProvenanceError(f"unknown special {command!r} (try \\help)")

    # ------------------------------------------------------------------ #
    # renderers
    # ------------------------------------------------------------------ #
    def _query(self, rest: str) -> None:
        if not rest:
            raise ProvenanceError("query needs a fact")
        fact_text, _, spec_text = rest.partition(" with ")
        spec = spec_text.strip() or self.default_spec
        self._ensure_spec(spec)
        result = self.client.call("query", fact=parse_fact(fact_text), spec=spec)
        self._print(f"vid: {result['vid']}")
        self._print(f"annotation: {_format_annotation(result['annotation'])}")
        if self.trace:
            issued = result["meta"]["issued_at"]
            completed = result["meta"]["completed_at"]
            self._print(
                f"trace: issued={issued:.6f} completed={completed:.6f} "
                f"latency={completed - issued:.6f}"
            )

    def _tuples(self, table: str) -> None:
        rows = self.client.call("tuples", table=table)["rows"]
        lines = [
            f"{node}: {table}({','.join(str(value) for value in values)})"
            for node, values in rows
        ]
        lines.append(f"({len(rows)} rows)")
        self._page("\n".join(lines))

    def _stats(self) -> None:
        stats = self.client.call("stats")
        self._print(f"messages_sent: {stats['messages_sent']}")
        self._print(f"total_bytes: {stats['total_bytes']}")
        for kind in sorted(stats.get("kind_totals", {})):
            totals = stats["kind_totals"][kind]
            self._print(f"  {kind}: messages={totals['messages']} bytes={totals['bytes']}")

    def _metrics(self) -> None:
        metrics = self.client.call("metrics")
        for section in ("counters", "gauges"):
            values = metrics.get(section, {})
            for name in sorted(values):
                self._print(f"{section[:-1]} {name} = {values[name]}")

    def _faults(self, args: Sequence[str]) -> None:
        params: Dict[str, Any] = {}
        # "digest" may trail a plan string; everything else is the plan.
        tokens = list(args)
        if tokens and tokens[-1] == "digest":
            params["digest"] = True
            tokens = tokens[:-1]
        if tokens:
            params["plan"] = " ".join(tokens)
        result = self.client.call("faults", **params)
        if result["installed"]:
            self._print(f"plan: {result['plan']}")
            for name in sorted(result["stats"]):
                self._print(f"  {name} = {result['stats'][name]}")
        else:
            self._print("no fault plan installed")
        if "convergence" in result:
            self._print(f"convergence: {result['convergence']}")

    # ------------------------------------------------------------------ #
    # loops
    # ------------------------------------------------------------------ #
    def run_script(self, lines: Sequence[str]) -> None:
        for line in lines:
            if not self.running:
                break
            self.handle(line)

    def run_interactive(self) -> None:
        self._setup_readline()
        self._print("exspan shell — \\help for commands, \\q to quit")
        while self.running:
            try:
                line = input(PROMPT)
            except EOFError:
                self._print("")
                break
            except KeyboardInterrupt:
                self._print("")
                continue
            self.handle(line)

    def _setup_readline(self) -> None:
        try:
            import readline
        except ImportError:  # pragma: no cover - platform-dependent
            return

        candidates = self.completion_candidates()

        def complete(text: str, state: int) -> Optional[str]:
            matches = [word for word in candidates if word.startswith(text)]
            return matches[state] if state < len(matches) else None

        readline.set_completer(complete)
        readline.set_completer_delims(" \t\n")
        readline.parse_and_bind("tab: complete")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point shared with ``python -m repro.shell``."""
    from .__main__ import main as _main

    return _main(argv)
