"""Shell entry point: ``python -m repro.shell``.

Two ways to get a service:

* ``--connect HOST:PORT`` — attach to an already-running
  ``python -m repro.service``;
* otherwise an embedded server is started in-process from
  ``--topology``/``--program``/``--mode`` (same grammar as the service
  CLI) and torn down on exit.

Three ways to feed it commands: interactively (TTY), ``--command`` (one
or more scripted lines), or piped stdin.  Scripted modes echo each
command after the prompt so the output reads as a full transcript — the
CI golden-transcript gate depends on that.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core.errors import ProvenanceError
from ..service.bootstrap import build_network
from ..service.client import ServiceClient
from ..service.protocol import FrameError
from ..service.server import ServiceThread
from . import ExspanShell


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shell",
        description="Interactive console for the provenance query service.",
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT", help="attach to a running service"
    )
    parser.add_argument("--topology", default="ring:6", help="embedded-mode topology spec")
    parser.add_argument("--program", default="mincost", help="embedded-mode program spec")
    parser.add_argument("--mode", default="ref", help="embedded-mode provenance mode")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--command",
        "-c",
        action="append",
        default=None,
        metavar="LINE",
        help="run this command and exit (repeatable; semicolons split lines)",
    )
    return parser


def _split_commands(commands: List[str]) -> List[str]:
    lines: List[str] = []
    for command in commands:
        lines.extend(part.strip() for part in command.split(";") if part.strip())
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    embedded: Optional[ServiceThread] = None
    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        try:
            address = (host or "127.0.0.1", int(port_text))
        except ValueError:
            print(f"bad --connect address {args.connect!r}", file=sys.stderr)
            return 2
    else:
        try:
            network = build_network(
                topology_spec=args.topology,
                program_spec=args.program,
                mode=args.mode,
                seed=args.seed,
            )
        except ProvenanceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        embedded = ServiceThread(network)
        address = embedded.start()

    scripted = args.command is not None or not sys.stdin.isatty()
    try:
        with ServiceClient(*address) as client:
            shell = ExspanShell(
                client, out=sys.stdout, echo=scripted, interactive=not scripted
            )
            if args.command is not None:
                shell.run_script(_split_commands(args.command))
            elif scripted:
                shell.run_script([line.rstrip("\n") for line in sys.stdin])
            else:
                shell.run_interactive()
    except (ConnectionError, FrameError) as exc:
        print(f"connection failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if embedded is not None:
            embedded.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
