"""Sharded multi-process simulation engine (conservative windowed PDES).

One paper-scale simulation — hundreds to a thousand-plus nodes — is
partitioned across N worker processes, each driving its own
:class:`~repro.net.simulator.Simulator` over a slice of the hosts.  The
engine is a classic *conservative* parallel discrete-event simulation:

* **Partition.**  :func:`~repro.net.topology.partition_topology` splits the
  hosts into balanced shards, cutting as few and as slow links as possible.
* **Lookahead.**  Any message between shards crosses the cut at least once,
  so its end-to-end latency is at least the minimum cut-edge latency — the
  *lookahead window* ``W`` (:func:`~repro.net.topology.partition_lookahead`).
  A message sent at time *t* can never affect another shard before
  ``t + W``.
* **Windows and barriers.**  All shards run the window ``[T, T + W)``
  concurrently (events strictly before the horizon), then exchange the
  messages that crossed the cut.  Cross-shard messages always land in a
  *later* window, so no shard ever receives an event in its past; the
  simulator's ``safe_time`` assertion enforces exactly that.
* **Determinism.**  Every delivery carries the shard-invariant ordering key
  ``(send time, source rank, per-source sequence)`` assigned by the sender
  (:mod:`repro.net.network`).  Envelopes are exchanged and injected in
  sorted ``(time, key)`` order, and each shard's simulator executes by the
  same ``(time, key)`` relation the serial engine uses — so fixpoints,
  VIDs, provenance annotations and every traffic counter are **identical
  to the single-process engine**, independent of worker count and
  ``PYTHONHASHSEED``.

Workers are forked (so they inherit the parsed program and topology
without pickling) and spoken to over pipes.  Value-mode BDD annotations
cross shard boundaries as manager-independent structures
(:func:`~repro.core.bdd.export_bdd`); thanks to the canonical
(name-ordered) BDD variable order they re-intern bit-identically into the
receiving shard's manager.

External inputs — link churn, base-fact changes, provenance queries — are
*scripted*: they apply at simulated times that become window barriers, so
the same script drives a serial :class:`~repro.core.api.ExspanNetwork`
(via :func:`apply_script_serial`) and a sharded run to identical states.
The equivalence tests in ``tests/test_sharding.py`` assert exactly that,
via :func:`collect_digest` / :func:`collect_summary`.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.bdd import Bdd, export_bdd, import_bdd
from ..datalog.ast import Fact, Program
from ..datalog.engine import Delta
from .errors import NetworkError, SimulationError
from .message import Message
from .network import OutboundMessage
from .stats import aggregate_engine_stats, aggregate_query_stats, merge_counter_dicts
from .topology import Topology, partition_lookahead, partition_topology

__all__ = [
    "ShardedExspanNetwork",
    "ScriptOp",
    "apply_script_serial",
    "collect_summary",
    "collect_digest",
]

#: Matches ``Network``'s default latency: the fallback charged when no route
#: exists.  When churn disconnects the topology, the lookahead window must
#: shrink to it, because a cross-shard message may then travel that fast.
_DEFAULT_LATENCY = 0.001


# ---------------------------------------------------------------------- #
# scripted external inputs
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScriptOp:
    """One external input applied at a simulated instant.

    ``kind`` is one of ``"insert"`` / ``"delete"`` (base facts; applied at
    the owning shard), ``"add_link"`` / ``"remove_link"`` (applied at every
    shard — all topology replicas must agree for routing), or ``"query"``
    (a provenance query issued at ``issuer`` for the fact's VID at
    ``target``; the spec must be registered at construction time).
    """

    kind: str
    fact: Optional[Fact] = None
    a: Any = None
    b: Any = None
    cost: Optional[int] = None
    spec: Optional[str] = None
    issuer: Any = None
    target: Any = None
    query_id: Optional[str] = None


# ---------------------------------------------------------------------- #
# payload transport across shard boundaries
# ---------------------------------------------------------------------- #
class _WireBdd:
    """A BDD annotation in transit: its manager-independent structure."""

    __slots__ = ("data",)

    def __init__(self, data: Tuple[Any, ...]):
        self.data = data


def _encode_value(value: Any) -> Any:
    if isinstance(value, Bdd):
        return _WireBdd(export_bdd(value))
    if isinstance(value, Delta):
        if isinstance(value.annotation, Bdd):
            return Delta(value.action, value.fact, _WireBdd(export_bdd(value.annotation)))
        return value
    if isinstance(value, tuple):
        encoded = [_encode_value(item) for item in value]
        if all(new is old for new, old in zip(encoded, value)):
            return value
        return tuple(encoded)
    return value


def _decode_value(value: Any, manager_for: Callable[[], Any]) -> Any:
    if isinstance(value, _WireBdd):
        manager = manager_for()
        if manager is None:
            raise NetworkError(
                "a BDD crossed a shard boundary outside a value-mode delta; "
                "sharded runs support query specs with plain or polynomial "
                "results (register a polynomial/count/node-set spec instead)"
            )
        return import_bdd(manager, value.data)
    if isinstance(value, Delta):
        if isinstance(value.annotation, _WireBdd):
            return Delta(
                value.action, value.fact, _decode_value(value.annotation, manager_for)
            )
        return value
    if isinstance(value, tuple):
        decoded = [_decode_value(item, manager_for) for item in value]
        if all(new is old for new, old in zip(decoded, value)):
            return value
        return tuple(decoded)
    return value


def _encode_outbound(
    outbound: Sequence[OutboundMessage],
) -> List[Tuple[float, Tuple, Dict[str, Any]]]:
    """Flatten parked cross-shard messages into picklable wire tuples."""
    wire = []
    for item in outbound:
        message = item.message
        wire.append(
            (
                item.time,
                item.key,
                {
                    "source": message.source,
                    "destination": message.destination,
                    "kind": message.kind,
                    "payload": _encode_value(message.payload),
                    "size": message.size,
                    "sent_at": message.sent_at,
                    "delivered_at": message.delivered_at,
                    "batch": message.batch,
                    "tseq": message.tseq,
                },
            )
        )
    return wire


# ---------------------------------------------------------------------- #
# state digests (shared by serial and sharded paths)
# ---------------------------------------------------------------------- #
def _canonical_annotation(annotation: Any) -> Any:
    if isinstance(annotation, Bdd):
        return ("bdd", export_bdd(annotation))
    return repr(annotation)


def node_state_digest(engine) -> Dict[str, Any]:
    """Canonical per-node state: table rows, annotations, counters.

    Everything is rendered order-independently (sorted by repr), so the
    digest of a node is identical whether it was computed in a serial run
    or inside a shard worker — the equivalence the sharding tests assert.
    """
    tables = {
        table.name: sorted(repr(row) for row in table.rows())
        for table in engine.catalog.tables()
        if len(table)
    }
    annotations = {
        repr(key): _canonical_annotation(annotation)
        for key, annotation in engine._annotations.items()
    }
    return {
        "tables": tables,
        "annotations": dict(sorted(annotations.items())),
        "stats": dict(sorted(engine.stats.items())),
    }


def collect_digest(net) -> Dict[Any, Dict[str, Any]]:
    """Per-node state digests of a (serial) :class:`ExspanNetwork`."""
    return {address: node_state_digest(node.engine) for address, node in net.nodes.items()}


def collect_summary(net) -> Dict[str, Any]:
    """Network-wide counters of a (serial) :class:`ExspanNetwork`.

    The sharded engine's :meth:`ShardedExspanNetwork.summary` produces the
    same dict by merging per-shard summaries; equality of the two is the
    headline acceptance criterion.
    """
    hosts = {
        host.address: {
            "messages_received": host.messages_received,
            "bytes_received": host.bytes_received,
            "batches_sent": host.batches_sent,
            "messages_batched": host.messages_batched,
        }
        for host in net.network.hosts()
    }
    return {
        "fixpoint_time": net.simulator.now,
        "traffic": {
            "total_bytes": net.stats.total_bytes(),
            "total_messages": net.stats.total_messages(),
            "maintenance_bytes": net.maintenance_bytes(),
            "query_bytes": net.query_bytes(),
        },
        "planner": net.planner_stats(),
        "prov_rows": net.provenance_row_counts(),
        "query_stats": aggregate_query_stats(
            node.query_service.query_stats() for node in net.nodes.values()
        ),
        "hosts": dict(sorted(hosts.items(), key=lambda item: repr(item[0]))),
    }


def _outcome_digest(outcome) -> Dict[str, Any]:
    """Picklable, representation-canonical view of a QueryOutcome."""
    return {
        "query_id": outcome.query_id,
        "vid": outcome.vid,
        "result": repr(outcome.result),
        "issued_at": outcome.issued_at,
        "completed_at": outcome.completed_at,
        "issuer": outcome.issuer,
        "target": outcome.target,
    }


def apply_script_serial(
    net, script: Sequence[Tuple[float, Sequence[ScriptOp]]]
) -> Dict[str, Dict[str, Any]]:
    """Drive a serial :class:`ExspanNetwork` with a sharded-engine script.

    Ops are scheduled at their instants with the default (empty) ordering
    key, exactly where the sharded engine applies them — before the message
    deliveries of the same instant.  Returns query outcomes (digested) by
    query id after running to quiescence.
    """
    outcomes: Dict[str, Dict[str, Any]] = {}
    issued: Dict[Any, int] = {}

    def apply(ops: Sequence[ScriptOp]) -> None:
        for op in ops:
            _apply_serial_op(net, op, outcomes, issued)

    for time, ops in script:
        net.simulator.schedule_at(time, lambda ops=ops: apply(ops))
    net.simulator.run_until_idle()
    return outcomes


def _apply_serial_op(
    net,
    op: ScriptOp,
    outcomes: Dict[str, Dict[str, Any]],
    issued: Dict[Any, int],
) -> None:
    if op.kind == "insert":
        net.insert_fact(op.fact)
    elif op.kind == "delete":
        net.delete_fact(op.fact)
    elif op.kind == "add_link":
        net.add_link(op.a, op.b, op.cost)
    elif op.kind == "remove_link":
        net.remove_link(op.a, op.b)
    elif op.kind == "query":
        from ..core.vid import fact_vid

        target = op.target if op.target is not None else op.fact.location
        issuer = op.issuer if op.issuer is not None else target
        if op.query_id is not None:
            query_id = op.query_id
        else:
            # Auto ids number each issuer's queries independently at issue
            # time (never by completed count, which would collide for
            # concurrent queries) — and since one issuer's queries always
            # run at its own shard in issue order, the numbering is
            # identical in serial and sharded execution.
            index = issued.get(issuer, 0)
            issued[issuer] = index + 1
            query_id = f"q@{issuer!r}#{index}"
        service = net.node(issuer).query_service
        service.query(
            fact_vid(op.fact),
            target,
            op.spec,
            lambda outcome, qid=query_id: outcomes.__setitem__(
                qid, _outcome_digest(outcome)
            ),
        )
    else:
        raise ValueError(f"unknown script op kind {op.kind!r}")


# ---------------------------------------------------------------------- #
# worker process
# ---------------------------------------------------------------------- #
@dataclass
class _WorkerConfig:
    shard_id: int
    assignment: Dict[Any, int]
    topology: Topology
    program: Program
    mode: Any
    seed: int
    link_cost: int
    value_policy: str
    planner: Optional[str]
    pipeline: Optional[str]
    compact_min_cancelled: Optional[int]
    compact_ratio: Optional[float]
    query_specs: Sequence[Any] = field(default_factory=tuple)
    #: When set, the worker builds its own shard-tagged tracer; spans are
    #: pulled over the pipe by the driver's ``"spans"`` verb and merged in
    #: deterministic (sim time, shard, seq) order.
    trace: bool = False
    traffic_record_cap: Optional[int] = None
    #: Storage backend spec (``None`` = worker-process default, i.e.
    #: memory).  Explicit sqlite paths are suffixed per shard by the
    #: worker's ExspanNetwork so forked processes never share one WAL.
    storage: Optional[str] = None
    #: Serialized non-empty :class:`~repro.faults.plan.FaultPlan`
    #: (``FaultPlan.to_dict()``), or ``None`` for the fault-free fast
    #: path.  Every worker installs the same plan: link/flap schedules
    #: are replicated (they are pure functions of the plan seed and
    #: sender-local counters), crash events fire only on the shard that
    #: owns the node.
    faults: Optional[Dict[str, Any]] = None


def _worker_main(conn, config: _WorkerConfig) -> None:
    """Run one shard: build the local slice, then serve barrier commands."""
    try:
        from ..core.api import ExspanNetwork
        from ..obs import runtime as obs_runtime

        # Forked workers inherit the parent's process-wide trace session;
        # drop it — worker spans are collected explicitly over the pipe
        # (the "spans" verb), with their own shard-tagged tracer.
        obs_runtime.disable_tracing()
        tracer = None
        if config.trace:
            from ..obs.tracer import Tracer

            tracer = Tracer(shard=config.shard_id)
        local = [
            node
            for node in config.topology.nodes
            if config.assignment[node] == config.shard_id
        ]
        from ..core.config import ExspanConfig

        net = ExspanNetwork(
            config.topology,
            config.program,
            config=ExspanConfig(
                mode=config.mode,
                seed=config.seed,
                link_cost=config.link_cost,
                value_policy=config.value_policy,
                planner=config.planner,
                pipeline=config.pipeline,
                local_addresses=tuple(local),
                shard_map=config.assignment,
                compact_min_cancelled=config.compact_min_cancelled,
                compact_ratio=config.compact_ratio,
                traffic_record_cap=config.traffic_record_cap,
                storage=config.storage,
            ),
            tracer=tracer,
        )
        for spec in config.query_specs:
            net.register_spec(spec)
        if config.faults is not None:
            from ..faults.plan import FaultPlan

            net.install_faults(FaultPlan.from_dict(config.faults))
        outcomes: Dict[str, Dict[str, Any]] = {}
        issued: Dict[Any, int] = {}

        def manager_for_destination(address: Any):
            policy = net.node(address).engine.annotation_policy
            return getattr(policy, "manager", None)

        while True:
            command = conn.recv()
            verb = command[0]
            if verb == "stop":
                # Flush the write-behind storage journal (and release the
                # per-shard WAL) before the worker process exits, so an
                # explicit-path sqlite mirror is complete on disk.
                net.close_storage()
                conn.send(("ok", None))
                return
            if verb == "seed":
                inserted = net.seed_links(command[1])
                conn.send(("ok", _worker_window_reply(net, inserted)))
            elif verb == "window":
                _, horizon, envelopes = command
                _inject_envelopes(net, envelopes, manager_for_destination)
                if horizon is None:
                    executed = net.simulator.run_until_idle()
                else:
                    executed = net.simulator.run_window(horizon)
                conn.send(("ok", _worker_window_reply(net, executed)))
            elif verb == "apply":
                _, time, ops = command
                if time > net.simulator.now:
                    net.simulator.advance_to(time)
                # The parent only applies ops at global barriers (full
                # quiescence, or a script-limit every window was capped
                # at), so re-opening the window back to the op instant is
                # sound — see Simulator.reopen_window.
                net.simulator.reopen_window(time)
                for op in ops:
                    _apply_worker_op(net, op, outcomes, issued)
                conn.send(("ok", _worker_window_reply(net, len(ops))))
            elif verb == "summary":
                conn.send(("ok", _worker_summary(net)))
            elif verb == "digest":
                conn.send(("ok", collect_digest(net)))
            elif verb == "cdigest":
                from ..faults.oracle import collect_convergence

                conn.send(("ok", collect_convergence(net)))
            elif verb == "fstats":
                injector = net.network.fault_injector
                conn.send(
                    ("ok", injector.stats() if injector is not None else {})
                )
            elif verb == "outcomes":
                conn.send(("ok", dict(outcomes)))
            elif verb == "records":
                conn.send(("ok", net.stats))
            elif verb == "spans":
                state = (
                    net.tracer.export_state()
                    if net.tracer is not None
                    else ((), {}, 0)
                )
                conn.send(("ok", state))
            else:
                conn.send(("error", f"unknown command {verb!r}"))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):
            pass


def _worker_window_reply(net, executed: int):
    return (
        _encode_outbound(net.network.drain_outbound()),
        net.simulator.next_event_time(),
        net.simulator.now,
        executed,
    )


def _inject_envelopes(net, envelopes, manager_for_destination) -> None:
    # Deterministic injection order: (delivery time, ordering key).  The
    # simulator orders by (time, key) anyway; sorting here additionally
    # fixes the FIFO sequence numbers, removing any dependence on the order
    # shards were drained in.
    for time, key, fields in sorted(envelopes, key=lambda item: (item[0], item[1])):
        destination = fields["destination"]
        message = Message(
            source=fields["source"],
            destination=destination,
            kind=fields["kind"],
            payload=_decode_value(
                fields["payload"], lambda d=destination: manager_for_destination(d)
            ),
            size=fields["size"],
            sent_at=fields["sent_at"],
            delivered_at=fields["delivered_at"],
            batch=fields["batch"],
            tseq=fields.get("tseq"),
        )
        net.network.inject(message, time, key)


def _apply_worker_op(
    net, op: ScriptOp, outcomes: Dict[str, Dict[str, Any]], issued: Dict[Any, int]
) -> None:
    # Fact ops were already routed to the owning shard by the parent; link
    # ops go to every shard; query ops to the issuer's shard.  All reuse
    # the serial op application (per-issuer query numbering included, so
    # auto query ids match the serial engine's).
    _apply_serial_op(net, op, outcomes, issued)


def _worker_summary(net) -> Dict[str, Any]:
    return collect_summary(net)


# ---------------------------------------------------------------------- #
# the parent-side driver
# ---------------------------------------------------------------------- #
class ShardedExspanNetwork:
    """Drive one simulation across N shard worker processes.

    The public surface mirrors the pieces of
    :class:`~repro.core.api.ExspanNetwork` the experiment harness uses:
    :meth:`seed_links`, :meth:`run_to_fixpoint`, scripted churn / fact ops
    / provenance queries, and merged statistics.  ``shards=1`` is valid
    (one worker) and useful for isolating the barrier protocol from
    parallelism when debugging.

    Use as a context manager, or call :meth:`close` — worker processes
    hold OS resources.
    """

    def __init__(
        self,
        topology: Topology,
        program: Program,
        mode=None,
        shards: int = 2,
        seed: int = 0,
        link_cost: int = 1,
        value_policy: str = "bdd",
        planner: Optional[str] = None,
        pipeline: Optional[str] = None,
        compact_min_cancelled: Optional[int] = None,
        compact_ratio: Optional[float] = None,
        partition: Optional[Mapping[Any, int]] = None,
        query_specs: Sequence[Any] = (),
        tracer: Any = None,
        traffic_record_cap: Optional[int] = None,
        storage: Optional[str] = None,
        faults: Any = None,
        supervise: bool = False,
    ):
        from ..core.modes import ProvenanceMode
        from ..obs import runtime as obs_runtime

        if mode is None:
            mode = ProvenanceMode.REFERENCE
        # ``faults`` accepts a FaultPlan, a fault-spec string, or None; an
        # empty plan is normalized to None so the run stays on the exact
        # fault-free code path (the empty-plan byte-identity contract).
        plan = self._normalize_fault_plan(faults)
        self.fault_plan = plan
        self._fault_flaps = plan is not None and plan.has_flaps()
        self._pending_kills = list(plan.worker_kills) if plan is not None else []
        if self._pending_kills:
            # A SIGKILLed worker can only rejoin the barrier protocol if the
            # supervisor is on to restart and replay it.
            supervise = True
        self._supervise = bool(supervise)
        self.supervisor_restarts = 0
        self.workers_killed = 0
        self._windows_run = 0
        self.topology = topology
        self.assignment: Dict[Any, int] = (
            dict(partition)
            if partition is not None
            else partition_topology(topology, shards)
        )
        self.shards = max(self.assignment.values()) + 1
        missing = [node for node in topology.nodes if node not in self.assignment]
        if missing:
            raise NetworkError(f"partition misses nodes: {missing[:5]}")
        self._recompute_lookahead()
        for kill in self._pending_kills:
            if not (0 <= kill.shard < self.shards):
                raise NetworkError(
                    f"worker-kill fault names shard {kill.shard}, but the "
                    f"run has {self.shards} shards"
                )
        self._context = mp.get_context("fork")
        self._connections = []
        self._processes = []
        self._worker_configs: List[_WorkerConfig] = []
        # Per-shard log of state-mutating commands (seed/window/apply); the
        # supervisor rebuilds a dead worker by replaying its log against a
        # fresh fork — deterministic execution makes the replayed worker
        # bit-identical to the one that died.
        self._command_log: List[List[Tuple]] = []
        self._parked: List[List[Tuple[float, Tuple, Dict[str, Any]]]] = [
            [] for _ in range(self.shards)
        ]
        self._next_times: List[Optional[float]] = [None] * self.shards
        self._now = 0.0
        self._closed = False
        # Driver-side tracer (shard -1): holds barrier/window phase spans
        # and, after collect_spans(), every worker's spans merged in.
        if tracer is None:
            session = obs_runtime.active_session()
            if session is not None:
                tracer = session.new_tracer(clock=lambda: self._now, shard=-1)
        else:
            tracer.set_clock(lambda: self._now)
        self.tracer = tracer
        self._spans_collected = False
        #: Per-window executed-event counts (one list per window round),
        #: the raw material of :meth:`parallelism_report`.
        self.window_loads: List[List[int]] = []
        for shard in range(self.shards):
            parent_conn, child_conn = self._context.Pipe()
            config = _WorkerConfig(
                shard_id=shard,
                assignment=self.assignment,
                topology=topology,
                program=program,
                mode=mode,
                seed=seed,
                link_cost=link_cost,
                value_policy=value_policy,
                planner=planner,
                pipeline=pipeline,
                compact_min_cancelled=compact_min_cancelled,
                compact_ratio=compact_ratio,
                query_specs=tuple(query_specs),
                trace=self.tracer is not None,
                traffic_record_cap=traffic_record_cap,
                storage=storage,
                faults=plan.to_dict() if plan is not None else None,
            )
            process = self._context.Process(
                target=_worker_main, args=(child_conn, config), daemon=True
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
            self._worker_configs.append(config)
            self._command_log.append([])

    @staticmethod
    def _normalize_fault_plan(faults: Any):
        if faults is None:
            return None
        from ..faults.plan import FaultPlan, parse_fault_spec

        if isinstance(faults, str):
            faults = parse_fault_spec(faults)
        if not isinstance(faults, FaultPlan):
            raise NetworkError(
                "faults must be a FaultPlan, a fault-spec string, or None"
            )
        return None if faults.is_empty() else faults

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ShardedExspanNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def collect_spans(self) -> None:
        """Merge every worker tracer's spans into the driver tracer.

        Idempotent; runs automatically on :meth:`close`.  Worker states are
        absorbed in shard order and every consumer re-sorts records by
        ``(sim time, shard, seq)``, so the merged trace is independent of
        pipe drain order.
        """
        if self.tracer is None or self._spans_collected or self._closed:
            return
        self._spans_collected = True
        for state in self._command_all([("spans",)] * self.shards):
            self.tracer.absorb(state)

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.collect_spans()
        except RuntimeError:
            pass  # a shard died; keep whatever spans the driver already has
        if self._closed:
            return  # a failed collect_spans already closed the pipes
        self._closed = True
        for conn in self._connections:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for conn in self._connections:
            try:
                if conn.poll(2.0):
                    conn.recv()
            except (OSError, EOFError):
                pass
            conn.close()
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # worker communication
    # ------------------------------------------------------------------ #
    #: Verbs that mutate worker state; these are logged for supervisor
    #: replay.  Read-only verbs (summary/digest/...) are not — replaying
    #: them would be wasted work and their replies were already consumed.
    _LOGGED_VERBS = frozenset({"seed", "window", "apply"})

    def _command_all(self, commands: List[Tuple]) -> List[Any]:
        """Send one command per shard, then gather replies (concurrent).

        With ``supervise=True``, a dead worker (broken pipe / EOF — e.g.
        SIGKILLed by a :class:`~repro.faults.plan.WorkerKill` fault) is
        restarted from its config, caught up by replaying its command log,
        and handed the in-flight command again; the barrier then proceeds
        as if nothing happened.  A worker that *reports* an error (its
        simulation raised) is never restarted — replay would just raise
        again.
        """
        for shard, (conn, command) in enumerate(zip(self._connections, commands)):
            try:
                conn.send(command)
            except (BrokenPipeError, OSError):
                if not self._supervise:
                    self.close()
                    raise RuntimeError(f"shard {shard} died (pipe closed)")
                self._revive_shard(shard)
                self._connections[shard].send(command)
        replies = []
        for shard, command in enumerate(commands):
            try:
                status, payload = self._connections[shard].recv()
            except (EOFError, OSError):
                if not self._supervise:
                    self.close()
                    raise RuntimeError(f"shard {shard} died (no reply)")
                self._revive_shard(shard)
                self._connections[shard].send(command)
                status, payload = self._connections[shard].recv()
            if status != "ok":
                self.close()
                raise RuntimeError(f"shard {shard} failed:\n{payload}")
            replies.append(payload)
        if self._supervise and commands and commands[0][0] in self._LOGGED_VERBS:
            for shard, command in enumerate(commands):
                self._command_log[shard].append(command)
        return replies

    def _revive_shard(self, shard: int) -> None:
        """Fork a fresh worker for *shard* and replay its command log."""
        process = self._processes[shard]
        if process.is_alive():
            process.terminate()
        process.join(timeout=5.0)
        try:
            self._connections[shard].close()
        except OSError:
            pass
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                "fault.worker_restart",
                cat="fault",
                shard=shard,
                replay=len(self._command_log[shard]),
            )
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self._worker_configs[shard]),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._connections[shard] = parent_conn
        self._processes[shard] = process
        self.supervisor_restarts += 1
        for command in self._command_log[shard]:
            parent_conn.send(command)
            status, payload = parent_conn.recv()
            if status != "ok":
                self.close()
                raise RuntimeError(f"shard {shard} replay failed:\n{payload}")
        if span is not None:
            span.end()

    def supervisor_stats(self) -> Dict[str, int]:
        """Supervision counters: restarts performed, kills delivered."""
        return {
            "supervised": int(self._supervise),
            "restarts": self.supervisor_restarts,
            "workers_killed": self.workers_killed,
            "logged_commands": sum(len(log) for log in self._command_log),
        }

    def _absorb_window_replies(self, replies: List[Any]) -> None:
        for reply in replies:
            envelopes, next_time, now, _executed = reply
            self._now = max(self._now, now)
            for envelope in envelopes:
                destination = envelope[2]["destination"]
                self._parked[self.assignment[destination]].append(envelope)
        for shard, reply in enumerate(replies):
            self._next_times[shard] = reply[1]

    def _take_parked(self) -> List[List[Tuple[float, Tuple, Dict[str, Any]]]]:
        parked, self._parked = self._parked, [[] for _ in range(self.shards)]
        return parked

    def _recompute_lookahead(self) -> None:
        lookahead = partition_lookahead(self.topology, self.assignment)
        if lookahead is not None and lookahead <= 0:
            raise NetworkError(
                "a zero-latency link crosses the shard cut; the "
                "conservative engine needs strictly positive cross-shard "
                "latency (repartition or merge those nodes into one shard)"
            )
        if self.shards > 1 and not self.topology.is_connected():
            # A message between disconnected nodes is charged the network's
            # default (no-route) latency, which may undercut every cut edge
            # — and cross-shard traffic remains possible even with *no* cut
            # edges at all (disconnected islands in different shards can
            # still message each other).  Shrink the window accordingly;
            # without this, a free-running shard could receive an envelope
            # in its past and trip the safe-time assertion.
            lookahead = (
                min(lookahead, _DEFAULT_LATENCY)
                if lookahead is not None
                else _DEFAULT_LATENCY
            )
        if self.shards > 1 and getattr(self, "_fault_flaps", False):
            # Link flaps execute *inside* the workers, so the driver's
            # topology replica never sees the down period: while a flapped
            # link is out the network may be disconnected and charge the
            # no-route default latency, undercutting every cut edge.  Keep
            # the window conservative for the whole run.
            lookahead = (
                min(lookahead, _DEFAULT_LATENCY)
                if lookahead is not None
                else _DEFAULT_LATENCY
            )
        self.lookahead = lookahead

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def seed_links(self, cost: Optional[int] = None) -> int:
        tracer = self.tracer
        span = tracer.begin("shard.seed", cat="shard") if tracer is not None else None
        replies = self._command_all([("seed", cost)] * self.shards)
        inserted = sum(reply[3] for reply in replies)
        self._absorb_window_replies(
            [(reply[0], reply[1], reply[2], 0) for reply in replies]
        )
        if span is not None:
            span.end(links=inserted)
        return inserted

    def _quiesce(self, limit: Optional[float] = None) -> None:
        """Run windows until global quiescence (or until *limit*, exclusive)."""
        while True:
            candidates = [time for time in self._next_times if time is not None]
            candidates.extend(
                envelope[0] for parked in self._parked for envelope in parked
            )
            if not candidates:
                break
            start = min(candidates)
            if limit is not None and start >= limit:
                break
            if self.lookahead is None:
                horizon = limit  # None = run each shard to local idle
            elif limit is not None:
                horizon = min(start + self.lookahead, limit)
            else:
                horizon = start + self.lookahead
            parked = self._take_parked()
            tracer = self.tracer
            span = None
            if tracer is not None:
                span = tracer.begin(
                    "shard.window",
                    cat="shard",
                    horizon=horizon,
                    envelopes=sum(len(shard_parked) for shard_parked in parked),
                )
            replies = self._command_all(
                [("window", horizon, parked[shard]) for shard in range(self.shards)]
            )
            self.window_loads.append([reply[3] for reply in replies])
            self._absorb_window_replies(replies)
            if span is not None:
                span.end(events=sum(reply[3] for reply in replies))
            self._windows_run += 1
            self._deliver_worker_kills()
        if limit is not None and any(self._parked):
            # Envelopes at or past the limit: hand them over with the limit
            # itself as the horizon.  Everything left lives at or past the
            # limit, so nothing executes — the envelopes are scheduled, the
            # workers' safe time lands exactly on the barrier, and the
            # script ops applied *at* the limit may still send messages
            # timed at or after it.
            parked = self._take_parked()
            replies = self._command_all(
                [("window", limit, parked[shard]) for shard in range(self.shards)]
            )
            self._absorb_window_replies(replies)

    def _deliver_worker_kills(self) -> None:
        """SIGKILL workers whose :class:`WorkerKill` fault has come due.

        The kill lands *between* windows — the worker is at a barrier with
        its reply already consumed — modelling a worker host failing while
        parked.  The supervisor revives it on the next command.
        """
        if not self._pending_kills:
            return
        import os
        import signal

        due = [k for k in self._pending_kills if self._windows_run >= k.after_windows]
        if not due:
            return
        self._pending_kills = [k for k in self._pending_kills if k not in due]
        for kill in due:
            process = self._processes[kill.shard]
            if process.is_alive():
                os.kill(process.pid, signal.SIGKILL)
                process.join(timeout=5.0)
                self.workers_killed += 1

    def run_to_fixpoint(self) -> float:
        """Run windows until no shard has pending events or envelopes."""
        self._quiesce()
        return self._now

    @property
    def now(self) -> float:
        return self._now

    # ------------------------------------------------------------------ #
    # scripted inputs
    # ------------------------------------------------------------------ #
    def run_script(self, script: Sequence[Tuple[float, Sequence[ScriptOp]]]) -> None:
        """Apply timed op batches, interleaved with windowed execution.

        Each script instant becomes a barrier: all events strictly before
        it execute first, every shard's clock aligns to it, the ops apply
        (facts at their owning shard, link changes everywhere), and
        execution resumes.  Identical semantics to
        :func:`apply_script_serial` scheduling the same ops on a serial
        network.
        """
        for time, ops in sorted(script, key=lambda item: item[0]):
            self._quiesce(limit=time)
            self._now = max(self._now, time)
            self._apply_ops(time, list(ops))
        self._quiesce()

    def apply_ops(self, ops: Sequence[ScriptOp]) -> None:
        """Apply ops at the current global time (after quiescence)."""
        self._quiesce()
        self._apply_ops(self._now, list(ops))
        self._quiesce()

    def _apply_ops(self, time: float, ops: List[ScriptOp]) -> None:
        per_shard: List[List[ScriptOp]] = [[] for _ in range(self.shards)]
        topology_changed = False
        for op in ops:
            if op.kind in ("insert", "delete"):
                per_shard[self.assignment[op.fact.location]].append(op)
            elif op.kind in ("add_link", "remove_link"):
                # Keep the parent's topology replica in sync for lookahead
                # recomputation, then apply at every shard.
                if op.kind == "add_link":
                    if not self.topology.has_link(op.a, op.b):
                        from .topology import LinkSpec

                        cost = op.cost if op.cost is not None else 1
                        self.topology.add_link(op.a, op.b, LinkSpec(cost=cost))
                else:
                    self.topology.remove_link(op.a, op.b)
                topology_changed = True
                for shard_ops in per_shard:
                    shard_ops.append(op)
            elif op.kind == "query":
                issuer = op.issuer if op.issuer is not None else (
                    op.target if op.target is not None else op.fact.location
                )
                per_shard[self.assignment[issuer]].append(op)
            else:
                raise ValueError(f"unknown script op kind {op.kind!r}")
        tracer = self.tracer
        span = None
        if tracer is not None:
            span = tracer.begin("shard.apply", cat="shard", ops=len(ops))
        replies = self._command_all(
            [("apply", time, per_shard[shard]) for shard in range(self.shards)]
        )
        self._absorb_window_replies(replies)
        if span is not None:
            span.end()
        if topology_changed:
            self._recompute_lookahead()

    # ------------------------------------------------------------------ #
    # provenance queries
    # ------------------------------------------------------------------ #
    def query_provenance(
        self, fact: Fact, spec: str, issuer: Any = None, target: Any = None
    ) -> Dict[str, Any]:
        """Issue one provenance query, run to quiescence, return its digest.

        ``spec`` names a query spec passed at construction
        (``query_specs=[...]``); results are returned in digested form
        (see the sharding module docstring for why raw result objects
        cannot cross process boundaries in general).
        """
        self._query_counter = getattr(self, "_query_counter", 0) + 1
        query_id = f"shq-{self._query_counter}"
        self.apply_ops(
            [
                ScriptOp(
                    kind="query",
                    fact=fact,
                    spec=spec,
                    issuer=issuer,
                    target=target,
                    query_id=query_id,
                )
            ]
        )
        outcome = self.outcomes().get(query_id)
        if outcome is None:
            raise SimulationError(f"provenance query for {fact} did not complete")
        return outcome

    def outcomes(self) -> Dict[str, Dict[str, Any]]:
        """All completed query outcomes (digested), merged across shards."""
        merged: Dict[str, Dict[str, Any]] = {}
        for reply in self._command_all([("outcomes",)] * self.shards):
            merged.update(reply)
        return merged

    # ------------------------------------------------------------------ #
    # merged statistics and digests
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, Any]:
        """Network-wide counters, byte-comparable to :func:`collect_summary`."""
        replies = self._command_all([("summary",)] * self.shards)
        hosts: Dict[Any, Dict[str, int]] = {}
        for reply in replies:
            hosts.update(reply["hosts"])
        return {
            "fixpoint_time": max(reply["fixpoint_time"] for reply in replies),
            "traffic": merge_counter_dicts(reply["traffic"] for reply in replies),
            "planner": aggregate_engine_stats(reply["planner"] for reply in replies),
            "prov_rows": merge_counter_dicts(reply["prov_rows"] for reply in replies),
            "query_stats": aggregate_query_stats(
                reply["query_stats"] for reply in replies
            ),
            "hosts": dict(sorted(hosts.items(), key=lambda item: repr(item[0]))),
        }

    def digest(self) -> Dict[Any, Dict[str, Any]]:
        """Per-node state digests, byte-comparable to :func:`collect_digest`."""
        merged: Dict[Any, Dict[str, Any]] = {}
        for reply in self._command_all([("digest",)] * self.shards):
            merged.update(reply)
        # Deterministic address order (topology order), matching the serial
        # collector's iteration over net.nodes.
        return {node: merged[node] for node in self.topology.nodes if node in merged}

    def convergence_digest(self) -> str:
        """The counter-free convergence digest, merged across shards.

        Byte-comparable to :func:`repro.faults.oracle.convergence_digest`
        of a serial run: the per-node states are keyed by ``repr(address)``
        and the digest sorts them, so shard count cannot affect it.
        """
        from ..faults.oracle import digest_convergence

        merged: Dict[str, Dict[str, Any]] = {}
        for reply in self._command_all([("cdigest",)] * self.shards):
            merged.update(reply)
        return digest_convergence(merged)

    def fault_stats(self) -> Dict[str, int]:
        """Fault/transport counters summed across every shard's injector."""
        merged = merge_counter_dicts(
            self._command_all([("fstats",)] * self.shards)
        )
        return dict(sorted(merged.items()))

    def parallelism_report(self) -> Dict[str, Any]:
        """Machine-independent parallelism accounting of the run so far.

        A conservative window is a barrier: its wall-clock is governed by
        its most-loaded shard.  The *critical path* is therefore the sum of
        per-window maximum event counts, and ``attainable_speedup`` —
        total events over critical-path events — is the wall-clock speedup
        this run's schedule admits on enough cores.  Unlike wall-clock it
        is fully deterministic, so benchmarks can gate on it (CI timing
        assertions are banned; this is the honest substitute).
        """
        total = sum(sum(loads) for loads in self.window_loads)
        critical = sum(max(loads) for loads in self.window_loads if loads)
        return {
            "windows": len(self.window_loads),
            "events_total": total,
            "events_critical_path": critical,
            "attainable_speedup": (total / critical) if critical else 1.0,
        }

    def records(self) -> List[Any]:
        """All traffic records merged in deterministic (time, source) order."""
        return self.traffic_stats().records()

    def traffic_stats(self):
        """A merged :class:`~repro.net.stats.TrafficStats` over every shard.

        Senders are always local to their shard, so folding the workers'
        own collectors yields exactly the serial engine's records; every
        aggregate view (totals, bandwidth timeseries, per-sender byte
        counts) matches the serial network's ``stats``.
        """
        from .stats import merge_traffic_stats

        rank = {node: index for index, node in enumerate(self.topology.nodes)}
        per_shard = self._command_all([("records",)] * self.shards)
        return merge_traffic_stats(per_shard, rank)
