"""Traffic statistics collection.

The experiment harness derives all of the paper's figures from the raw
per-message records collected here: total and per-node communication cost
(Figures 6, 7, 16), bandwidth over time (Figures 8-11, 13, 15, 16), query
completion latency distributions (Figures 12, 14), and fixpoint latency
(Figure 17).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MessageRecord",
    "TrafficStats",
    "LatencyStats",
    "cdf_points",
    "ENGINE_COUNTER_KEYS",
    "QUERY_COUNTER_KEYS",
    "aggregate_engine_stats",
    "aggregate_query_stats",
    "merge_counter_dicts",
    "merge_traffic_records",
    "merge_traffic_stats",
    "render_engine_stats",
]


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """One sent message: when, who, how many bytes, and what kind.

    Slotted: paper-scale sweeps record hundreds of thousands of these per
    trial, so the per-instance dict would dominate the collector's memory.
    """

    time: float
    source: Any
    destination: Any
    size: int
    kind: str


class TrafficStats:
    """Accumulates :class:`MessageRecord` entries and answers questions."""

    def __init__(self) -> None:
        self._records: List[MessageRecord] = []
        self.messages_sent = 0

    def record(self, time: float, source: Any, destination: Any, size: int, kind: str) -> None:
        self._records.append(MessageRecord(time, source, destination, size, kind))
        self.messages_sent += 1

    def reset(self) -> None:
        """Drop all records (used between experiment phases)."""
        self._records.clear()
        self.messages_sent = 0

    # ------------------------------------------------------------------ #
    # aggregate views
    # ------------------------------------------------------------------ #
    def records(self, kinds: Optional[Iterable[str]] = None) -> List[MessageRecord]:
        if kinds is None:
            return list(self._records)
        wanted = set(kinds)
        return [record for record in self._records if record.kind in wanted]

    def total_bytes(self, kinds: Optional[Iterable[str]] = None) -> int:
        return sum(record.size for record in self.records(kinds))

    def total_messages(self, kinds: Optional[Iterable[str]] = None) -> int:
        return len(self.records(kinds))

    def bytes_by_sender(self, kinds: Optional[Iterable[str]] = None) -> Dict[Any, int]:
        """Bytes transmitted per sending node."""
        per_node: Dict[Any, int] = defaultdict(int)
        for record in self.records(kinds):
            per_node[record.source] += record.size
        return dict(per_node)

    def average_bytes_per_node(
        self, node_count: int, kinds: Optional[Iterable[str]] = None
    ) -> float:
        """Average communication cost per node in bytes (Figures 6, 7, 16)."""
        if node_count <= 0:
            return 0.0
        return self.total_bytes(kinds) / node_count

    def bandwidth_timeseries(
        self,
        bucket: float,
        node_count: int,
        start: float = 0.0,
        end: Optional[float] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> List[Tuple[float, float]]:
        """Average per-node bandwidth (bytes/second) in time buckets.

        Returns ``[(bucket_start_time, bytes_per_second_per_node), ...]``.
        """
        records = self.records(kinds)
        if end is None:
            end = max((record.time for record in records), default=start) + bucket
        buckets: Dict[int, float] = defaultdict(float)
        for record in records:
            if record.time < start or record.time >= end:
                continue
            buckets[int((record.time - start) // bucket)] += record.size
        series: List[Tuple[float, float]] = []
        total_buckets = max(int((end - start) / bucket + 0.999), 1)
        denominator = bucket * max(node_count, 1)
        for index in range(total_buckets):
            series.append((start + index * bucket, buckets.get(index, 0.0) / denominator))
        return series

    def last_activity_time(self, kinds: Optional[Iterable[str]] = None) -> float:
        """Time of the last recorded message (used as fixpoint latency)."""
        records = self.records(kinds)
        return max((record.time for record in records), default=0.0)

    def __len__(self) -> int:
        return len(self._records)


class LatencyStats:
    """Collects completion latencies (e.g. of provenance queries)."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        self._samples.append(latency)

    def extend(self, latencies: Iterable[float]) -> None:
        self._samples.extend(latencies)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def percentile(self, fraction: float) -> float:
        """Return the latency at the given CDF *fraction* (0..1)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(int(fraction * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def cdf(self, points: int = 50) -> List[Tuple[float, float]]:
        """Return ``(latency, cumulative_fraction)`` pairs for plotting."""
        return cdf_points(self._samples, points)


#: Engine counters surfaced in benchmark reports, in display order.  The
#: planner/index counters let reports show *scan-count* reductions (how much
#: work the cost-based planner saved) rather than just wall-clock times.
ENGINE_COUNTER_KEYS = (
    "deltas_processed",
    "deltas_sent",
    "deltas_received",
    "rule_firings",
    "plans_compiled",
    "plans_recompiled",
    "indexes_registered",
    "index_lookups",
    "full_scans",
    "tuples_scanned",
)


def aggregate_engine_stats(
    stats_maps: Iterable[Dict[str, int]]
) -> Dict[str, int]:
    """Sum per-engine counter dicts into one network-wide view.

    Every key appearing in any engine's ``stats`` is summed; the well-known
    planner/evaluation counters of :data:`ENGINE_COUNTER_KEYS` are always
    present (zero when untouched) so reports have a stable schema.
    """
    totals: Dict[str, int] = {key: 0 for key in ENGINE_COUNTER_KEYS}
    for stats in stats_maps:
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    return totals


#: Query-engine counters surfaced in benchmark reports, in display order.
#: The coalescing / batching / cache counters are what the multi-querier
#: scenarios report to show *message-count* reductions (how much traversal
#: work the concurrent query engine deduplicated) alongside raw bytes.
QUERY_COUNTER_KEYS = (
    "queries_started",
    "queries_completed",
    "coalesced_inflight",
    "coalesced_roots",
    "stale_drops",
    "cache_entries",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_invalidations",
    "batches_sent",
    "messages_batched",
)


def aggregate_query_stats(stats_maps: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-node query-service counter dicts into one network-wide view.

    Mirrors :func:`aggregate_engine_stats`: every key appearing in any
    node's counters is summed, and the well-known keys of
    :data:`QUERY_COUNTER_KEYS` are always present (zero when untouched) so
    reports have a stable schema.
    """
    totals: Dict[str, int] = {key: 0 for key in QUERY_COUNTER_KEYS}
    for stats in stats_maps:
        for key, value in stats.items():
            totals[key] = totals.get(key, 0) + value
    return totals


def merge_counter_dicts(dicts: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum same-keyed numeric counter dicts (cross-shard counter merge).

    Keys are emitted in sorted order so the merged dict is independent of
    shard iteration order (and of ``PYTHONHASHSEED``).
    """
    totals: Dict[str, Any] = {}
    for counters in dicts:
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + value
    return dict(sorted(totals.items()))


def merge_traffic_records(
    record_lists: Iterable[Sequence[MessageRecord]],
    source_rank: Dict[Any, int],
) -> List[MessageRecord]:
    """Merge per-shard traffic records into one deterministic list.

    Each shard records exactly the messages its own hosts *sent* (senders
    are always local), so the union is exact.  Records are ordered by
    ``(time, source rank, per-source position)`` — per-source order is
    preserved from each shard's list, and the result is independent of
    shard count and drain order.  Every aggregate view
    (:class:`TrafficStats` totals, bandwidth timeseries, CDFs) is
    order-insensitive, so any consumer of the merged list sees exactly the
    serial engine's numbers.
    """
    indexed: List[Tuple[float, int, int, MessageRecord]] = []
    positions: Dict[Any, int] = {}
    for records in record_lists:
        for record in records:
            position = positions.get(record.source, 0)
            positions[record.source] = position + 1
            indexed.append(
                (record.time, source_rank.get(record.source, -1), position, record)
            )
    indexed.sort(key=lambda item: item[:3])
    return [item[3] for item in indexed]


def merge_traffic_stats(
    stats_list: Iterable["TrafficStats"],
    source_rank: Dict[Any, int],
) -> "TrafficStats":
    """Fold per-shard :class:`TrafficStats` into one merged collector."""
    merged = TrafficStats()
    for record in merge_traffic_records(
        [stats.records() for stats in stats_list], source_rank
    ):
        merged.record(record.time, record.source, record.destination, record.size, record.kind)
    return merged


def render_engine_stats(totals: Dict[str, int]) -> str:
    """One-line human-readable summary of aggregated engine counters."""
    parts = [f"{key}={totals[key]}" for key in ENGINE_COUNTER_KEYS if key in totals]
    extra = sorted(set(totals) - set(ENGINE_COUNTER_KEYS))
    parts.extend(f"{key}={totals[key]}" for key in extra)
    return " ".join(parts)


def cdf_points(samples: Sequence[float], points: int = 50) -> List[Tuple[float, float]]:
    """Compute a CDF over *samples* as ``(value, fraction <= value)`` pairs."""
    if not samples:
        return []
    ordered = sorted(samples)
    total = len(ordered)
    maximum = ordered[-1]
    minimum = ordered[0]
    if points <= 1 or maximum == minimum:
        return [(maximum, 1.0)]
    step = (maximum - minimum) / (points - 1)
    result: List[Tuple[float, float]] = []
    for index in range(points):
        value = minimum + index * step
        fraction = bisect_right(ordered, value) / total
        result.append((value, fraction))
    return result
