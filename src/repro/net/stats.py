"""Traffic statistics collection.

The experiment harness derives all of the paper's figures from the raw
per-message records collected here: total and per-node communication cost
(Figures 6, 7, 16), bandwidth over time (Figures 8-11, 13, 15, 16), query
completion latency distributions (Figures 12, 14), and fixpoint latency
(Figure 17).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.metrics import merged_counters

__all__ = [
    "MessageRecord",
    "TrafficStats",
    "LatencyStats",
    "cdf_points",
    "ENGINE_COUNTER_KEYS",
    "QUERY_COUNTER_KEYS",
    "aggregate_engine_stats",
    "aggregate_query_stats",
    "merge_counter_dicts",
    "merge_traffic_records",
    "merge_traffic_stats",
    "render_engine_stats",
]


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """One sent message: when, who, how many bytes, and what kind.

    Slotted: paper-scale sweeps record hundreds of thousands of these per
    trial, so the per-instance dict would dominate the collector's memory.
    """

    time: float
    source: Any
    destination: Any
    size: int
    kind: str


class TrafficStats:
    """Accumulates :class:`MessageRecord` entries and answers questions.

    Bounded / streaming mode
    ------------------------
    By default every record is retained (the views below need the raw
    list).  With ``max_records=N`` the collector keeps only the first N
    raw records — million-message runs stop growing an unbounded list —
    while maintaining exact streaming aggregates for every *scalar* view:
    :meth:`total_bytes`, :meth:`total_messages`, :meth:`bytes_by_sender`,
    :meth:`average_bytes_per_node` and :meth:`last_activity_time` count
    dropped records too.  Only the record-shaped views
    (:meth:`records`, :meth:`bandwidth_timeseries`, ``len()``) are limited
    to the retained prefix; ``dropped_records`` says how much was shed.
    """

    def __init__(self, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records < 0:
            raise ValueError(f"max_records must be >= 0, got {max_records}")
        self._records: List[MessageRecord] = []
        self._max_records = max_records
        self.messages_sent = 0
        self.dropped_records = 0
        # Streaming aggregates, maintained only in bounded mode (the
        # unbounded default computes every view from the raw records, so
        # the hot recording path stays a single append).
        self._kind_totals: Optional[Dict[str, List[float]]] = (
            None if max_records is None else {}
        )
        self._sender_kind_bytes: Dict[Tuple[Any, str], int] = {}

    @property
    def max_records(self) -> Optional[int]:
        return self._max_records

    def record(self, time: float, source: Any, destination: Any, size: int, kind: str) -> None:
        self.messages_sent += 1
        if self._max_records is None:
            self._records.append(MessageRecord(time, source, destination, size, kind))
            return
        if len(self._records) < self._max_records:
            self._records.append(MessageRecord(time, source, destination, size, kind))
        else:
            self.dropped_records += 1
        totals = self._kind_totals.get(kind)
        if totals is None:
            self._kind_totals[kind] = [1, size, time]
        else:
            totals[0] += 1
            totals[1] += size
            if time > totals[2]:
                totals[2] = time
        sender_key = (source, kind)
        self._sender_kind_bytes[sender_key] = (
            self._sender_kind_bytes.get(sender_key, 0) + size
        )

    def reset(self) -> None:
        """Drop all records (used between experiment phases)."""
        self._records.clear()
        self.messages_sent = 0
        self.dropped_records = 0
        if self._kind_totals is not None:
            self._kind_totals = {}
        self._sender_kind_bytes = {}

    # ------------------------------------------------------------------ #
    # aggregate views
    # ------------------------------------------------------------------ #
    def records(self, kinds: Optional[Iterable[str]] = None) -> List[MessageRecord]:
        if kinds is None:
            return list(self._records)
        wanted = set(kinds)
        return [record for record in self._records if record.kind in wanted]

    def _selected_kind_totals(
        self, kinds: Optional[Iterable[str]]
    ) -> List[List[float]]:
        assert self._kind_totals is not None
        if kinds is None:
            return list(self._kind_totals.values())
        wanted = set(kinds)
        return [
            totals for kind, totals in self._kind_totals.items() if kind in wanted
        ]

    def total_bytes(self, kinds: Optional[Iterable[str]] = None) -> int:
        if self._kind_totals is not None:
            return int(sum(totals[1] for totals in self._selected_kind_totals(kinds)))
        return sum(record.size for record in self.records(kinds))

    def total_messages(self, kinds: Optional[Iterable[str]] = None) -> int:
        if self._kind_totals is not None:
            return int(sum(totals[0] for totals in self._selected_kind_totals(kinds)))
        return len(self.records(kinds))

    def kind_totals(self) -> Dict[str, Tuple[int, int]]:
        """Per-kind ``(messages, bytes)`` totals (exact in both modes)."""
        if self._kind_totals is not None:
            return {
                kind: (int(totals[0]), int(totals[1]))
                for kind, totals in sorted(self._kind_totals.items())
            }
        per_kind: Dict[str, List[int]] = {}
        for record in self._records:
            totals = per_kind.setdefault(record.kind, [0, 0])
            totals[0] += 1
            totals[1] += record.size
        return {kind: (totals[0], totals[1]) for kind, totals in sorted(per_kind.items())}

    def bytes_by_sender(self, kinds: Optional[Iterable[str]] = None) -> Dict[Any, int]:
        """Bytes transmitted per sending node."""
        if self._kind_totals is not None:
            wanted = None if kinds is None else set(kinds)
            per_node: Dict[Any, int] = defaultdict(int)
            for (source, kind), size in self._sender_kind_bytes.items():
                if wanted is None or kind in wanted:
                    per_node[source] += size
            return dict(per_node)
        per_node = defaultdict(int)
        for record in self.records(kinds):
            per_node[record.source] += record.size
        return dict(per_node)

    def average_bytes_per_node(
        self, node_count: int, kinds: Optional[Iterable[str]] = None
    ) -> float:
        """Average communication cost per node in bytes (Figures 6, 7, 16)."""
        if node_count <= 0:
            return 0.0
        return self.total_bytes(kinds) / node_count

    def bandwidth_timeseries(
        self,
        bucket: float,
        node_count: int,
        start: float = 0.0,
        end: Optional[float] = None,
        kinds: Optional[Iterable[str]] = None,
    ) -> List[Tuple[float, float]]:
        """Average per-node bandwidth (bytes/second) in time buckets.

        Returns ``[(bucket_start_time, bytes_per_second_per_node), ...]``.
        """
        records = self.records(kinds)
        if end is None:
            end = max((record.time for record in records), default=start) + bucket
        buckets: Dict[int, float] = defaultdict(float)
        for record in records:
            if record.time < start or record.time >= end:
                continue
            buckets[int((record.time - start) // bucket)] += record.size
        series: List[Tuple[float, float]] = []
        total_buckets = max(int((end - start) / bucket + 0.999), 1)
        denominator = bucket * max(node_count, 1)
        for index in range(total_buckets):
            series.append((start + index * bucket, buckets.get(index, 0.0) / denominator))
        return series

    def snapshot(self) -> Dict[str, Any]:
        """A deep-copied, JSON-able summary of the collector.

        Everything in the returned dict is freshly built — callers (in
        particular service clients polling ``stats`` over the wire) can
        mutate it freely without corrupting the live counters.  Exact in
        both bounded and unbounded modes.
        """
        return {
            "messages_sent": self.messages_sent,
            "dropped_records": self.dropped_records,
            "total_bytes": self.total_bytes(),
            "total_messages": self.total_messages(),
            "kind_totals": {
                kind: {"messages": messages, "bytes": size}
                for kind, (messages, size) in self.kind_totals().items()
            },
            "bytes_by_sender": {
                str(node): size
                for node, size in sorted(
                    self.bytes_by_sender().items(), key=lambda item: str(item[0])
                )
            },
            "last_activity_time": self.last_activity_time(),
        }

    def last_activity_time(self, kinds: Optional[Iterable[str]] = None) -> float:
        """Time of the last recorded message (used as fixpoint latency)."""
        if self._kind_totals is not None:
            return max(
                (totals[2] for totals in self._selected_kind_totals(kinds)),
                default=0.0,
            )
        records = self.records(kinds)
        return max((record.time for record in records), default=0.0)

    def __len__(self) -> int:
        return len(self._records)


class LatencyStats:
    """Collects completion latencies (e.g. of provenance queries).

    Empty-sample behaviour is defined: :meth:`mean` and
    :meth:`percentile` raise :class:`ValueError` (an empty collector has
    no mean — the old silent ``0.0`` let an accidentally empty workload
    masquerade as an instant one), while :meth:`cdf` returns the empty
    list (an empty distribution plots as nothing).
    """

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, latency: float) -> None:
        self._samples.append(latency)

    def extend(self, latencies: Iterable[float]) -> None:
        self._samples.extend(latencies)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def count(self) -> int:
        return len(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("LatencyStats.mean() on an empty sample set")
        return sum(self._samples) / len(self._samples)

    def percentile(self, fraction: float) -> float:
        """Return the latency at the given CDF *fraction* (0..1)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"percentile fraction must be in [0, 1], got {fraction}")
        if not self._samples:
            raise ValueError("LatencyStats.percentile() on an empty sample set")
        ordered = sorted(self._samples)
        index = min(int(fraction * len(ordered)), len(ordered) - 1)
        return ordered[index]

    def cdf(self, points: int = 50) -> List[Tuple[float, float]]:
        """``(latency, cumulative_fraction)`` pairs; ``[]`` when empty."""
        return cdf_points(self._samples, points)


#: Engine counters surfaced in benchmark reports, in display order.  The
#: planner/index counters let reports show *scan-count* reductions (how much
#: work the cost-based planner saved) rather than just wall-clock times.
ENGINE_COUNTER_KEYS = (
    "deltas_processed",
    "deltas_sent",
    "deltas_received",
    "rule_firings",
    "plans_compiled",
    "plans_recompiled",
    "indexes_registered",
    "index_lookups",
    "full_scans",
    "tuples_scanned",
)


def aggregate_engine_stats(
    stats_maps: Iterable[Dict[str, int]]
) -> Dict[str, int]:
    """Sum per-engine counter dicts into one network-wide view.

    Every key appearing in any engine's ``stats`` is summed; the well-known
    planner/evaluation counters of :data:`ENGINE_COUNTER_KEYS` are always
    present (zero when untouched) so reports have a stable schema.
    """
    return merged_counters(stats_maps, schema=ENGINE_COUNTER_KEYS)


#: Query-engine counters surfaced in benchmark reports, in display order.
#: The coalescing / batching / cache counters are what the multi-querier
#: scenarios report to show *message-count* reductions (how much traversal
#: work the concurrent query engine deduplicated) alongside raw bytes.
QUERY_COUNTER_KEYS = (
    "queries_started",
    "queries_completed",
    "coalesced_inflight",
    "coalesced_roots",
    "stale_drops",
    "deadline_expirations",
    "late_drops",
    "cache_entries",
    "cache_hits",
    "cache_misses",
    "cache_evictions",
    "cache_invalidations",
    "batches_sent",
    "messages_batched",
)


def aggregate_query_stats(stats_maps: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-node query-service counter dicts into one network-wide view.

    Mirrors :func:`aggregate_engine_stats`: every key appearing in any
    node's counters is summed, and the well-known keys of
    :data:`QUERY_COUNTER_KEYS` are always present (zero when untouched) so
    reports have a stable schema.
    """
    return merged_counters(stats_maps, schema=QUERY_COUNTER_KEYS)


def merge_counter_dicts(dicts: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Sum same-keyed numeric counter dicts (cross-shard counter merge).

    Keys are emitted in sorted order so the merged dict is independent of
    shard iteration order (and of ``PYTHONHASHSEED``).
    """
    return merged_counters(dicts, sort=True)


def merge_traffic_records(
    record_lists: Iterable[Sequence[MessageRecord]],
    source_rank: Dict[Any, int],
) -> List[MessageRecord]:
    """Merge per-shard traffic records into one deterministic list.

    Each shard records exactly the messages its own hosts *sent* (senders
    are always local), so the union is exact.  Records are ordered by
    ``(time, source rank, per-source position)`` — per-source order is
    preserved from each shard's list, and the result is independent of
    shard count and drain order.  Every aggregate view
    (:class:`TrafficStats` totals, bandwidth timeseries, CDFs) is
    order-insensitive, so any consumer of the merged list sees exactly the
    serial engine's numbers.
    """
    indexed: List[Tuple[float, int, int, MessageRecord]] = []
    positions: Dict[Any, int] = {}
    for records in record_lists:
        for record in records:
            position = positions.get(record.source, 0)
            positions[record.source] = position + 1
            indexed.append(
                (record.time, source_rank.get(record.source, -1), position, record)
            )
    indexed.sort(key=lambda item: item[:3])
    return [item[3] for item in indexed]


def merge_traffic_stats(
    stats_list: Iterable["TrafficStats"],
    source_rank: Dict[Any, int],
) -> "TrafficStats":
    """Fold per-shard :class:`TrafficStats` into one merged collector."""
    merged = TrafficStats()
    for record in merge_traffic_records(
        [stats.records() for stats in stats_list], source_rank
    ):
        merged.record(record.time, record.source, record.destination, record.size, record.kind)
    return merged


def render_engine_stats(totals: Dict[str, int]) -> str:
    """One-line human-readable summary of aggregated engine counters."""
    parts = [f"{key}={totals[key]}" for key in ENGINE_COUNTER_KEYS if key in totals]
    extra = sorted(set(totals) - set(ENGINE_COUNTER_KEYS))
    parts.extend(f"{key}={totals[key]}" for key in extra)
    return " ".join(parts)


def cdf_points(samples: Sequence[float], points: int = 50) -> List[Tuple[float, float]]:
    """Compute a CDF over *samples* as ``(value, fraction <= value)`` pairs."""
    if not samples:
        return []
    ordered = sorted(samples)
    total = len(ordered)
    maximum = ordered[-1]
    minimum = ordered[0]
    if points <= 1 or maximum == minimum:
        return [(maximum, 1.0)]
    step = (maximum - minimum) / (points - 1)
    result: List[Tuple[float, float]] = []
    for index in range(points):
        value = minimum + index * step
        fraction = bisect_right(ordered, value) / total
        result.append((value, fraction))
    return result
