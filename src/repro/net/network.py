"""The simulated network: hosts + topology + event-driven message delivery.

:class:`Network` glues together a :class:`~repro.net.simulator.Simulator`,
a :class:`~repro.net.topology.Topology` and a set of
:class:`~repro.net.host.Host` objects.  Sending a message records its size
with :class:`~repro.net.stats.TrafficStats` and schedules its delivery after
the shortest-path latency between sender and receiver (the underlying IP
network routes messages between non-adjacent nodes, as in the ns-3
prototype).

An optional per-byte transmission delay models bandwidth constraints; it is
disabled by default because the paper's workloads are far from saturating
the configured capacities.

Besides single-payload :meth:`Network.send`, the network ships batched
messages (:meth:`Network.send_batch`): several payloads for one destination
share one envelope and one header charge — see :mod:`repro.net.host` for
the turn-scoped outbox that produces them.

Deterministic delivery order
----------------------------
Every delivery event is keyed ``(send time, source rank, per-source send
sequence)`` in the simulator's ``(time, key, sequence)`` order.  Deliveries
colliding at one instant execute in causal send-time order first (what a
single global FIFO queue produces naturally); ties are broken by the
source's index in the topology's node order and by a counter the source
alone advances.  Every component is a pure function of the sender's local
history — independent of global scheduling interleavings.  This is the
invariant the sharded engine (:mod:`repro.net.sharding`) relies on: a
shard that receives the same messages reconstructs the very same delivery
order from ``(time, key)`` alone, making an N-shard run bit-identical to
the serial one.

Shard-aware routing
-------------------
A network can be configured as one *shard* of a larger simulation: it then
owns hosts only for its ``local_nodes`` and, instead of scheduling delivery
for a message addressed to a remote node, parks the message (with its
ordering key and delivery time) in :attr:`Network.outbound` for the barrier
protocol to ship.  Senders are always local, so traffic statistics stay
exact per shard and merge by concatenation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .errors import NetworkError, NoRouteError, UnknownNodeError
from .host import Host
from .message import HEADER_OVERHEAD, Message, payload_size
from .simulator import Simulator
from .stats import TrafficStats
from .topology import Topology

__all__ = ["Network", "OutboundMessage"]


@dataclass(frozen=True)
class OutboundMessage:
    """A message bound for another shard, with its deterministic order key.

    ``time`` is the absolute delivery time (already including the
    shortest-path latency computed by the sender's shard from the shared
    topology replica) and ``key`` the ``(source rank, send sequence)``
    pair; sorting envelopes by ``(time, key)`` reproduces exactly the
    delivery order the serial engine would execute.
    """

    time: float
    key: Tuple[float, int, int]
    message: Message


class Network:
    """A set of hosts connected by a topology, driven by a simulator."""

    def __init__(
        self,
        topology: Topology,
        simulator: Optional[Simulator] = None,
        default_latency: float = 0.001,
        model_transmission_delay: bool = False,
        local_nodes: Optional[Iterable[Any]] = None,
        shard_map: Optional[Mapping[Any, int]] = None,
        compact_min_cancelled: Optional[int] = None,
        compact_ratio: Optional[float] = None,
        traffic_record_cap: Optional[int] = None,
    ):
        """``traffic_record_cap`` bounds the per-message records retained by
        :class:`~repro.net.stats.TrafficStats` (aggregate counters stay
        exact); ``None`` keeps the default unbounded history."""
        self.topology = topology
        if simulator is not None:
            self.simulator = simulator
        else:
            kwargs: Dict[str, Any] = {}
            if compact_min_cancelled is not None:
                kwargs["compact_min_cancelled"] = compact_min_cancelled
            if compact_ratio is not None:
                kwargs["compact_ratio"] = compact_ratio
            self.simulator = Simulator(**kwargs)
        self.stats = TrafficStats(max_records=traffic_record_cap)
        self.default_latency = default_latency
        self.model_transmission_delay = model_transmission_delay
        self._hosts: Dict[Any, Host] = {}
        self._drop_disconnected = False
        # Deterministic source ranks: topology node order.  Nodes that show
        # up later (dynamically added hosts in unit tests) are ranked in
        # first-send order past the initial block.
        self._rank: Dict[Any, int] = {
            node: index for index, node in enumerate(topology.nodes)
        }
        self._source_seq: Dict[Any, int] = {}
        # Shard configuration: with a shard_map, messages for nodes whose
        # shard differs from the local nodes' shard are parked in
        # ``outbound`` instead of being scheduled (see module docstring).
        self._shard_map: Optional[Mapping[Any, int]] = shard_map
        self._shard_id: Optional[int] = None
        self.outbound: List[OutboundMessage] = []
        #: Installed by :class:`repro.faults.injector.FaultInjector`;
        #: ``None`` keeps the fault-free fast path byte-identical.
        self.fault_injector: Optional[Any] = None
        members = topology.nodes if local_nodes is None else list(local_nodes)
        if shard_map is not None and members:
            shards = {shard_map[node] for node in members}
            if len(shards) != 1:
                raise NetworkError(
                    f"local nodes span multiple shards: {sorted(shards)}"
                )
            self._shard_id = shards.pop()
        for node in members:
            self.add_host(node)

    # ------------------------------------------------------------------ #
    # hosts
    # ------------------------------------------------------------------ #
    def add_host(self, address: Any) -> Host:
        host = self._hosts.get(address)
        if host is None:
            host = Host(address, self)
            self._hosts[address] = host
            self._rank.setdefault(address, len(self._rank))
        return host

    def host(self, address: Any) -> Host:
        try:
            return self._hosts[address]
        except KeyError:
            raise UnknownNodeError(address) from None

    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    def addresses(self) -> List[Any]:
        return list(self._hosts)

    @property
    def node_count(self) -> int:
        return len(self._hosts)

    @property
    def shard_id(self) -> Optional[int]:
        return self._shard_id

    def is_local(self, address: Any) -> bool:
        """Whether *address* is simulated by this network (shard)."""
        if self._shard_map is None:
            return True
        return self._shard_map.get(address) == self._shard_id

    def rank(self, address: Any) -> int:
        """Deterministic rank of *address* (its delivery-key component)."""
        rank = self._rank.get(address)
        if rank is None:
            rank = len(self._rank)
            self._rank[address] = rank
        return rank

    # ------------------------------------------------------------------ #
    # messaging
    # ------------------------------------------------------------------ #
    def send(
        self,
        source: Any,
        destination: Any,
        kind: str,
        payload: Any,
        size: Optional[int] = None,
    ) -> Message:
        """Send a message; returns the in-flight :class:`Message`."""
        message = Message(source=source, destination=destination, kind=kind, payload=payload)
        if size is not None:
            message.size = size
        return self._dispatch(message)

    def send_batch(
        self,
        source: Any,
        destination: Any,
        kind: str,
        payloads: Sequence[Any],
        size: Optional[int] = None,
    ) -> Message:
        """Send several payloads to one destination as a single message.

        The batch pays one header (see :func:`~repro.net.message.batch_size`)
        and is recorded as one message in the traffic statistics; the
        receiving host dispatches its handler once per payload, in order.
        """
        message = Message(
            source=source,
            destination=destination,
            kind=kind,
            payload=tuple(payloads),
            batch=True,
        )
        if size is not None:
            message.size = size
        return self._dispatch(message)

    def _dispatch(self, message: Message) -> Message:
        """Common path: bill the message, record it, schedule its delivery.

        With a fault injector installed the message detours through its
        outbound hook (which may drop, duplicate, delay or suppress it);
        the injector calls back into :meth:`_transmit` for each physical
        transmission it decides to perform.
        """
        if self.fault_injector is not None:
            return self.fault_injector.outbound(message)
        return self._transmit(message)

    def _transmit(
        self,
        message: Message,
        extra_latency: float = 0.0,
        drop: bool = False,
    ) -> Message:
        """Bill one physical transmission and schedule (or park) delivery.

        ``extra_latency`` adds fault-injected delay on top of the routed
        latency; ``drop`` bills the send (the sender did put bytes on the
        wire) but never schedules delivery.  Both are no-ops in fault-free
        runs, keeping this the exact pre-fault code path.
        """
        # Validate the destination BEFORE billing anything, so a failed
        # send cannot corrupt the traffic counters (and a sharded network
        # rejects unknown nodes at send time instead of parking them).
        local = self.is_local(message.destination)
        if local:
            destination_host = self.host(message.destination)
        elif message.destination not in self._shard_map:
            raise UnknownNodeError(message.destination)
        message.compute_size()
        message.sent_at = self.simulator.now
        self.stats.record(
            self.simulator.now, message.source, message.destination, message.size,
            message.kind,
        )
        latency = self._latency(message.source, message.destination, message.size)
        latency += extra_latency
        message.delivered_at = self.simulator.now + latency
        seq = self._source_seq.get(message.source, 0)
        self._source_seq[message.source] = seq + 1
        # Deliveries colliding at one instant execute in send-time order
        # first (matching the causal FIFO a single global queue produces),
        # then by (source rank, per-source sequence) — every component is a
        # pure function of the sender's local history, never of global
        # scheduling order, so shards reconstruct the same total order.
        key = (message.sent_at, self.rank(message.source), seq)
        if drop:
            return message
        if local:
            event = self.simulator.schedule_at(
                message.delivered_at,
                lambda: destination_host.deliver(message),
                key=key,
            )
            if self.fault_injector is not None:
                self.fault_injector.track_delivery(message.destination, event)
        else:
            self.outbound.append(
                OutboundMessage(time=message.delivered_at, key=key, message=message)
            )
        return message

    def inject(self, message: Message, time: float, key: Tuple[float, int, int]) -> None:
        """Schedule delivery of a message shipped in from another shard.

        ``time``/``key`` come from the sender's :class:`OutboundMessage`,
        so the local simulator slots the delivery exactly where the serial
        engine would have.  The simulator itself asserts ``time`` does not
        precede the safe time (the conservative-lookahead guarantee).
        """
        destination_host = self.host(message.destination)
        event = self.simulator.schedule_at(
            time, lambda: destination_host.deliver(message), key=key
        )
        if self.fault_injector is not None:
            self.fault_injector.track_delivery(message.destination, event)

    def drain_outbound(self) -> List[OutboundMessage]:
        """Return and clear the cross-shard messages parked since last drain."""
        drained, self.outbound = self.outbound, []
        return drained

    def _latency(self, source: Any, destination: Any, size: int) -> float:
        if source == destination:
            return 0.0
        try:
            latency = self.topology.latency_between(source, destination)
        except NoRouteError:
            if self._drop_disconnected:
                # Deliver never: model a partitioned network by a very large
                # latency rather than raising inside protocol code.
                return float("inf")
            latency = self.default_latency
        if self.model_transmission_delay:
            a_to_b = self.topology
            # approximate transmission delay using the slowest first-hop link
            neighbors = a_to_b.neighbors(source)
            if neighbors:
                slowest = min(
                    (a_to_b.link(source, neighbor).bandwidth for neighbor in neighbors),
                    default=0.0,
                )
                if slowest:
                    latency += size / slowest
        return latency

    # ------------------------------------------------------------------ #
    # execution helpers
    # ------------------------------------------------------------------ #
    def run_to_fixpoint(self, max_events: Optional[int] = None) -> float:
        """Run until no events remain; return the fixpoint time."""
        self.simulator.run_until_idle(max_events=max_events)
        return self.simulator.now

    def run_for(self, duration: float) -> None:
        """Run the simulation for *duration* simulated seconds."""
        self.simulator.run(until=self.simulator.now + duration)

    def broadcast_handler(self, kind: str, factory: Callable[[Host], Callable]) -> None:
        """Register a handler built by *factory* on every host."""
        for host in self.hosts():
            host.register_handler(kind, factory(host))
