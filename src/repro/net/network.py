"""The simulated network: hosts + topology + event-driven message delivery.

:class:`Network` glues together a :class:`~repro.net.simulator.Simulator`,
a :class:`~repro.net.topology.Topology` and a set of
:class:`~repro.net.host.Host` objects.  Sending a message records its size
with :class:`~repro.net.stats.TrafficStats` and schedules its delivery after
the shortest-path latency between sender and receiver (the underlying IP
network routes messages between non-adjacent nodes, as in the ns-3
prototype).

An optional per-byte transmission delay models bandwidth constraints; it is
disabled by default because the paper's workloads are far from saturating
the configured capacities.

Besides single-payload :meth:`Network.send`, the network ships batched
messages (:meth:`Network.send_batch`): several payloads for one destination
share one envelope and one header charge — see :mod:`repro.net.host` for
the turn-scoped outbox that produces them.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from .errors import NoRouteError, UnknownNodeError
from .host import Host
from .message import HEADER_OVERHEAD, Message, payload_size
from .simulator import Simulator
from .stats import TrafficStats
from .topology import Topology

__all__ = ["Network"]


class Network:
    """A set of hosts connected by a topology, driven by a simulator."""

    def __init__(
        self,
        topology: Topology,
        simulator: Optional[Simulator] = None,
        default_latency: float = 0.001,
        model_transmission_delay: bool = False,
    ):
        self.topology = topology
        self.simulator = simulator if simulator is not None else Simulator()
        self.stats = TrafficStats()
        self.default_latency = default_latency
        self.model_transmission_delay = model_transmission_delay
        self._hosts: Dict[Any, Host] = {}
        self._drop_disconnected = False
        for node in topology.nodes:
            self.add_host(node)

    # ------------------------------------------------------------------ #
    # hosts
    # ------------------------------------------------------------------ #
    def add_host(self, address: Any) -> Host:
        host = self._hosts.get(address)
        if host is None:
            host = Host(address, self)
            self._hosts[address] = host
        return host

    def host(self, address: Any) -> Host:
        try:
            return self._hosts[address]
        except KeyError:
            raise UnknownNodeError(address) from None

    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    def addresses(self) -> List[Any]:
        return list(self._hosts)

    @property
    def node_count(self) -> int:
        return len(self._hosts)

    # ------------------------------------------------------------------ #
    # messaging
    # ------------------------------------------------------------------ #
    def send(
        self,
        source: Any,
        destination: Any,
        kind: str,
        payload: Any,
        size: Optional[int] = None,
    ) -> Message:
        """Send a message; returns the in-flight :class:`Message`."""
        message = Message(source=source, destination=destination, kind=kind, payload=payload)
        if size is not None:
            message.size = size
        return self._dispatch(message)

    def send_batch(
        self,
        source: Any,
        destination: Any,
        kind: str,
        payloads: Sequence[Any],
        size: Optional[int] = None,
    ) -> Message:
        """Send several payloads to one destination as a single message.

        The batch pays one header (see :func:`~repro.net.message.batch_size`)
        and is recorded as one message in the traffic statistics; the
        receiving host dispatches its handler once per payload, in order.
        """
        message = Message(
            source=source,
            destination=destination,
            kind=kind,
            payload=tuple(payloads),
            batch=True,
        )
        if size is not None:
            message.size = size
        return self._dispatch(message)

    def _dispatch(self, message: Message) -> Message:
        """Common path: bill the message, record it, schedule its delivery."""
        destination_host = self.host(message.destination)
        message.compute_size()
        message.sent_at = self.simulator.now
        self.stats.record(
            self.simulator.now, message.source, message.destination, message.size,
            message.kind,
        )
        latency = self._latency(message.source, message.destination, message.size)
        message.delivered_at = self.simulator.now + latency
        self.simulator.schedule(latency, lambda: destination_host.deliver(message))
        return message

    def _latency(self, source: Any, destination: Any, size: int) -> float:
        if source == destination:
            return 0.0
        try:
            latency = self.topology.latency_between(source, destination)
        except NoRouteError:
            if self._drop_disconnected:
                # Deliver never: model a partitioned network by a very large
                # latency rather than raising inside protocol code.
                return float("inf")
            latency = self.default_latency
        if self.model_transmission_delay:
            a_to_b = self.topology
            # approximate transmission delay using the slowest first-hop link
            neighbors = a_to_b.neighbors(source)
            if neighbors:
                slowest = min(
                    (a_to_b.link(source, neighbor).bandwidth for neighbor in neighbors),
                    default=0.0,
                )
                if slowest:
                    latency += size / slowest
        return latency

    # ------------------------------------------------------------------ #
    # execution helpers
    # ------------------------------------------------------------------ #
    def run_to_fixpoint(self, max_events: Optional[int] = None) -> float:
        """Run until no events remain; return the fixpoint time."""
        self.simulator.run_until_idle(max_events=max_events)
        return self.simulator.now

    def run_for(self, duration: float) -> None:
        """Run the simulation for *duration* simulated seconds."""
        self.simulator.run(until=self.simulator.now + duration)

    def broadcast_handler(self, kind: str, factory: Callable[[Host], Callable]) -> None:
        """Register a handler built by *factory* on every host."""
        for host in self.hosts():
            host.register_handler(kind, factory(host))
