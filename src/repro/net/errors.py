"""Exception types for the network simulation substrate."""

from __future__ import annotations


class NetworkError(Exception):
    """Base class for all network-substrate errors."""


class UnknownNodeError(NetworkError):
    """Raised when a message is addressed to a node that does not exist."""

    def __init__(self, address):
        super().__init__(f"unknown node address: {address!r}")
        self.address = address


class NoRouteError(NetworkError):
    """Raised when two nodes are not connected by any path in the topology."""

    def __init__(self, source, destination):
        super().__init__(f"no route from {source!r} to {destination!r}")
        self.source = source
        self.destination = destination


class SimulationError(NetworkError):
    """Raised for scheduling errors (e.g. events in the past)."""
