"""Exception types for the network simulation substrate.

Every error carries structured fields (the node, edge or time it is
about) plus a stable ``code``/``details()`` pair so the service layer
(:mod:`repro.service.server`) can map it to a distinct wire error code
with machine-readable context instead of a catch-all ``internal``.
"""

from __future__ import annotations

from typing import Any, Dict


class NetworkError(Exception):
    """Base class for all network-substrate errors."""

    #: Stable service-protocol error code; subclasses override.
    code = "network-error"

    def details(self) -> Dict[str, Any]:
        """Structured, JSON-safe context for the service error frame."""
        return {}


class UnknownNodeError(NetworkError):
    """Raised when a message is addressed to a node that does not exist."""

    code = "unknown-node"

    def __init__(self, address):
        super().__init__(f"unknown node address: {address!r}")
        self.address = address

    def details(self) -> Dict[str, Any]:
        return {"node": str(self.address)}


class NoRouteError(NetworkError):
    """Raised when two nodes are not connected by any path in the topology."""

    code = "no-route"

    def __init__(self, source, destination):
        super().__init__(f"no route from {source!r} to {destination!r}")
        self.source = source
        self.destination = destination

    def details(self) -> Dict[str, Any]:
        return {"source": str(self.source), "destination": str(self.destination)}


class SimulationError(NetworkError):
    """Raised for scheduling errors (e.g. events in the past)."""

    code = "simulation-error"

    def __init__(self, message, *, time=None, safe_time=None):
        super().__init__(message)
        self.time = time
        self.safe_time = safe_time

    def details(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {}
        if self.time is not None:
            payload["time"] = self.time
        if self.safe_time is not None:
            payload["safe_time"] = self.safe_time
        return payload
