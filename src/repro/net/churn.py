"""Churn injection.

Section 7.2 of the paper evaluates provenance maintenance under "a high
level of node churn and link failure", modeled by adding or deleting ten
randomly selected stub-to-stub links every 0.5 seconds in a 200-node
network, with addition and deletion equally likely.

:class:`ChurnGenerator` reproduces that workload against any object exposing
``add_link(a, b, cost)`` and ``remove_link(a, b)`` callbacks — in practice
the :class:`~repro.core.api.ExspanNetwork` facade, which converts the
topology change into ``link`` tuple insertions / deletions on both endpoint
nodes (links are symmetric).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Set, Tuple

from .simulator import Simulator
from .topology import TIER_STUB, Topology

__all__ = ["ChurnEvent", "ChurnGenerator"]


@dataclass(frozen=True)
class ChurnEvent:
    """A single applied churn action."""

    time: float
    action: str  # "add" | "delete"
    endpoint_a: Any
    endpoint_b: Any


class ChurnGenerator:
    """Schedules periodic random link additions and deletions."""

    def __init__(
        self,
        topology: Topology,
        simulator: Simulator,
        add_link: Callable[[Any, Any, int], None],
        remove_link: Callable[[Any, Any], None],
        links_per_round: int = 10,
        interval: float = 0.5,
        seed: int = 0,
        link_cost: int = 1,
        tier: str = TIER_STUB,
    ):
        self.topology = topology
        self.simulator = simulator
        self._add_link = add_link
        self._remove_link = remove_link
        self.links_per_round = links_per_round
        self.interval = interval
        self.link_cost = link_cost
        self.tier = tier
        self._rng = random.Random(seed)
        self.events: List[ChurnEvent] = []
        self._stopped = False
        # Candidate endpoints for new links: stub nodes only (as in the paper
        # churn applies to stub-to-stub links).
        self._stub_nodes = [
            node for node in topology.nodes if topology.node_kind(node) == "stub"
        ]

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def start(self, rounds: int, first_delay: Optional[float] = None) -> None:
        """Schedule *rounds* churn rounds starting after *first_delay*."""
        delay = self.interval if first_delay is None else first_delay
        for round_index in range(rounds):
            self.simulator.schedule(delay + round_index * self.interval, self._apply_round)

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------ #
    # churn application
    # ------------------------------------------------------------------ #
    def _apply_round(self) -> None:
        if self._stopped:
            return
        for _ in range(self.links_per_round):
            self._apply_one()

    def _apply_one(self) -> None:
        add = self._rng.random() < 0.5
        if add:
            pair = self._pick_absent_pair()
            if pair is None:
                return
            a, b = pair
            self._add_link(a, b, self.link_cost)
            self.events.append(ChurnEvent(self.simulator.now, "add", a, b))
        else:
            pair = self._pick_existing_stub_link()
            if pair is None:
                return
            a, b = pair
            self._remove_link(a, b)
            self.events.append(ChurnEvent(self.simulator.now, "delete", a, b))

    def _pick_absent_pair(self) -> Optional[Tuple[Any, Any]]:
        if len(self._stub_nodes) < 2:
            return None
        for _ in range(32):
            a, b = self._rng.sample(self._stub_nodes, 2)
            if not self.topology.has_link(a, b):
                return a, b
        return None

    def _pick_existing_stub_link(self) -> Optional[Tuple[Any, Any]]:
        candidates = self.topology.links_by_tier(self.tier)
        if not candidates:
            return None
        a, b, _ = self._rng.choice(candidates)
        return a, b

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def additions(self) -> List[ChurnEvent]:
        return [event for event in self.events if event.action == "add"]

    def deletions(self) -> List[ChurnEvent]:
        return [event for event in self.events if event.action == "delete"]
