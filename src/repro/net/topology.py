"""Network topologies: generic graph model plus the paper's generators.

Two generators reproduce the evaluation setups of the paper:

* :func:`transit_stub_topology` mimics the GT-ITM transit-stub topologies of
  Section 7 ("eight nodes per stub, three stubs per transit node, and four
  nodes per transit domain"), with the paper's per-tier latencies and
  bandwidth capacities.  The number of nodes grows by adding domains: one
  domain is 4 transit nodes x (1 + 3 stubs x 8 nodes) = 100 nodes.
* :func:`ring_topology` mimics the 40-node testbed deployment of Section 7.4
  (a ring for reachability plus one random peer per node, maximum degree 3).

A :class:`Topology` holds named nodes and *symmetric* links annotated with
latency (seconds), bandwidth capacity (bytes/second) and a routing cost used
by the NDlog protocols (fixed at 1 in the paper, i.e. hop count).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .errors import NoRouteError

__all__ = [
    "LinkSpec",
    "Topology",
    "transit_stub_topology",
    "ring_topology",
    "line_topology",
    "grid_topology",
    "TIER_TRANSIT",
    "TIER_TRANSIT_STUB",
    "TIER_STUB",
]

# Link tiers, matching the GT-ITM terminology used by the paper.
TIER_TRANSIT = "transit-transit"
TIER_TRANSIT_STUB = "transit-stub"
TIER_STUB = "stub-stub"

# Paper's link parameters: latency in seconds, bandwidth in bytes/second.
_TIER_LATENCY = {
    TIER_TRANSIT: 0.050,
    TIER_TRANSIT_STUB: 0.010,
    TIER_STUB: 0.002,
}
_TIER_BANDWIDTH = {
    TIER_TRANSIT: 1_000_000_000 / 8,
    TIER_TRANSIT_STUB: 100_000_000 / 8,
    TIER_STUB: 50_000_000 / 8,
}


@dataclass(frozen=True)
class LinkSpec:
    """Attributes of one (symmetric) link."""

    latency: float = 0.010
    bandwidth: float = 12_500_000.0
    cost: int = 1
    tier: str = TIER_STUB


class Topology:
    """An undirected graph of nodes with per-link attributes."""

    def __init__(self, name: str = "topology"):
        self.name = name
        self._nodes: List[Any] = []
        self._node_set: Set[Any] = set()
        self._node_kind: Dict[Any, str] = {}
        self._links: Dict[Tuple[Any, Any], LinkSpec] = {}
        self._adjacency: Dict[Any, Set[Any]] = {}
        self._route_cache: Dict[Any, Dict[Any, float]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: Any, kind: str = "stub") -> None:
        if node in self._node_set:
            return
        self._nodes.append(node)
        self._node_set.add(node)
        self._node_kind[node] = kind
        self._adjacency[node] = set()

    def add_link(self, a: Any, b: Any, spec: Optional[LinkSpec] = None) -> None:
        """Add a symmetric link between *a* and *b* (idempotent)."""
        if a == b:
            raise ValueError("self-links are not allowed")
        self.add_node(a)
        self.add_node(b)
        spec = spec or LinkSpec()
        self._links[self._key(a, b)] = spec
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._route_cache.clear()

    def remove_link(self, a: Any, b: Any) -> bool:
        """Remove the link between *a* and *b*; returns False if absent."""
        key = self._key(a, b)
        if key not in self._links:
            return False
        del self._links[key]
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)
        self._route_cache.clear()
        return True

    @staticmethod
    def _key(a: Any, b: Any) -> Tuple[Any, Any]:
        return (a, b) if repr(a) <= repr(b) else (b, a)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[Any]:
        return list(self._nodes)

    def node_kind(self, node: Any) -> str:
        return self._node_kind.get(node, "stub")

    def node_count(self) -> int:
        return len(self._nodes)

    def has_node(self, node: Any) -> bool:
        return node in self._node_set

    def has_link(self, a: Any, b: Any) -> bool:
        return self._key(a, b) in self._links

    def link(self, a: Any, b: Any) -> LinkSpec:
        return self._links[self._key(a, b)]

    def links(self) -> Iterator[Tuple[Any, Any, LinkSpec]]:
        for (a, b), spec in self._links.items():
            yield a, b, spec

    def link_count(self) -> int:
        return len(self._links)

    def neighbors(self, node: Any) -> List[Any]:
        return sorted(self._adjacency.get(node, ()), key=repr)

    def degree(self, node: Any) -> int:
        return len(self._adjacency.get(node, ()))

    def links_by_tier(self, tier: str) -> List[Tuple[Any, Any, LinkSpec]]:
        return [(a, b, spec) for a, b, spec in self.links() if spec.tier == tier]

    # ------------------------------------------------------------------ #
    # link facts for the NDlog protocols
    # ------------------------------------------------------------------ #
    def link_facts(self) -> List[Tuple[Any, Any, int]]:
        """Return directed ``(src, dst, cost)`` triples for every link.

        Links are symmetric, so both directions are emitted — each node is
        "initialized with a link tuple for each of its neighbors".
        """
        facts: List[Tuple[Any, Any, int]] = []
        for a, b, spec in self.links():
            facts.append((a, b, spec.cost))
            facts.append((b, a, spec.cost))
        return facts

    # ------------------------------------------------------------------ #
    # routing (latency between arbitrary node pairs)
    # ------------------------------------------------------------------ #
    def latency_between(self, source: Any, destination: Any) -> float:
        """Shortest-path latency between two nodes (Dijkstra, cached)."""
        if source == destination:
            return 0.0
        table = self._route_cache.get(source)
        if table is None:
            table = self._dijkstra(source)
            self._route_cache[source] = table
        try:
            return table[destination]
        except KeyError:
            raise NoRouteError(source, destination) from None

    def _dijkstra(self, source: Any) -> Dict[Any, float]:
        distances: Dict[Any, float] = {source: 0.0}
        heap: List[Tuple[float, int, Any]] = [(0.0, 0, source)]
        sequence = 0
        visited: Set[Any] = set()
        while heap:
            distance, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor in self._adjacency.get(node, ()):
                spec = self._links[self._key(node, neighbor)]
                candidate = distance + spec.latency
                if candidate < distances.get(neighbor, float("inf")):
                    distances[neighbor] = candidate
                    sequence += 1
                    heapq.heappush(heap, (candidate, sequence, neighbor))
        return distances

    def is_connected(self) -> bool:
        if not self._nodes:
            return True
        reachable = self._dijkstra(self._nodes[0])
        return len(reachable) == len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, nodes={self.node_count()}, "
            f"links={self.link_count()})"
        )


# ---------------------------------------------------------------------- #
# generators
# ---------------------------------------------------------------------- #
def transit_stub_topology(
    domains: int = 1,
    transit_per_domain: int = 4,
    stubs_per_transit: int = 3,
    nodes_per_stub: int = 8,
    seed: int = 0,
    link_cost: int = 1,
) -> Topology:
    """Generate a GT-ITM style transit-stub topology.

    With the paper's defaults one domain contains
    ``4 * (1 + 3 * 8) = 100`` nodes; the evaluation sweeps network size by
    increasing ``domains``.
    """
    rng = random.Random(seed)
    topology = Topology(name=f"transit-stub-{domains}d")
    transit_nodes: List[List[str]] = []

    for domain in range(domains):
        domain_transits: List[str] = []
        for index in range(transit_per_domain):
            node = f"t{domain}_{index}"
            topology.add_node(node, kind="transit")
            domain_transits.append(node)
        # Connect transit nodes within a domain as a ring plus one chord,
        # giving the dense transit core GT-ITM produces.
        count = len(domain_transits)
        for index in range(count):
            a = domain_transits[index]
            b = domain_transits[(index + 1) % count]
            if a != b and not topology.has_link(a, b):
                topology.add_link(a, b, _spec(TIER_TRANSIT, link_cost))
        if count > 3:
            topology.add_link(
                domain_transits[0], domain_transits[count // 2], _spec(TIER_TRANSIT, link_cost)
            )
        transit_nodes.append(domain_transits)

    # Interconnect domains through their first transit nodes (ring of domains).
    for domain in range(1, domains):
        topology.add_link(
            transit_nodes[domain - 1][0],
            transit_nodes[domain][0],
            _spec(TIER_TRANSIT, link_cost),
        )
    if domains > 2:
        topology.add_link(
            transit_nodes[-1][1 % transit_per_domain],
            transit_nodes[0][1 % transit_per_domain],
            _spec(TIER_TRANSIT, link_cost),
        )

    # Attach stubs.
    for domain, domain_transits in enumerate(transit_nodes):
        for transit_index, transit in enumerate(domain_transits):
            for stub_index in range(stubs_per_transit):
                stub_nodes: List[str] = []
                for node_index in range(nodes_per_stub):
                    node = f"s{domain}_{transit_index}_{stub_index}_{node_index}"
                    topology.add_node(node, kind="stub")
                    stub_nodes.append(node)
                # Stub internal structure: a ring plus a couple of random
                # chords, giving average degree ~2.6 like GT-ITM stubs.
                for index in range(len(stub_nodes)):
                    a = stub_nodes[index]
                    b = stub_nodes[(index + 1) % len(stub_nodes)]
                    if a != b and not topology.has_link(a, b):
                        topology.add_link(a, b, _spec(TIER_STUB, link_cost))
                if len(stub_nodes) >= 3:
                    extra_chords = max(1, nodes_per_stub // 4)
                    for _ in range(extra_chords):
                        a, b = rng.sample(stub_nodes, 2)
                        if not topology.has_link(a, b):
                            topology.add_link(a, b, _spec(TIER_STUB, link_cost))
                # Gateway stub node connects to the transit node.
                gateway = stub_nodes[0]
                topology.add_link(transit, gateway, _spec(TIER_TRANSIT_STUB, link_cost))
    return topology


def ring_topology(
    node_count: int,
    random_peers: bool = True,
    max_degree: int = 3,
    seed: int = 0,
    link_cost: int = 1,
    latency: float = 0.001,
    bandwidth: float = 125_000_000.0,
) -> Topology:
    """Generate the testbed topology of Section 7.4.

    Nodes are arranged in a ring; when *random_peers* is set each node also
    links to one random peer subject to the *max_degree* cap, giving the
    "maximum degree of all nodes is three" structure of the paper.
    """
    rng = random.Random(seed)
    topology = Topology(name=f"ring-{node_count}")
    nodes = [f"n{index}" for index in range(node_count)]
    for node in nodes:
        topology.add_node(node, kind="stub")
    spec = LinkSpec(latency=latency, bandwidth=bandwidth, cost=link_cost, tier=TIER_STUB)
    for index in range(node_count):
        topology.add_link(nodes[index], nodes[(index + 1) % node_count], spec)
    if random_peers and node_count > 3:
        order = list(range(node_count))
        rng.shuffle(order)
        for index in order:
            node = nodes[index]
            if topology.degree(node) >= max_degree:
                continue
            candidates = [
                other
                for other in nodes
                if other != node
                and not topology.has_link(node, other)
                and topology.degree(other) < max_degree
            ]
            if not candidates:
                continue
            peer = rng.choice(candidates)
            topology.add_link(node, peer, spec)
    return topology


def line_topology(node_count: int, link_cost: int = 1, latency: float = 0.010) -> Topology:
    """A simple chain topology, useful for unit tests."""
    topology = Topology(name=f"line-{node_count}")
    nodes = [f"n{index}" for index in range(node_count)]
    for node in nodes:
        topology.add_node(node)
    for index in range(node_count - 1):
        topology.add_link(
            nodes[index],
            nodes[index + 1],
            LinkSpec(latency=latency, cost=link_cost, tier=TIER_STUB),
        )
    return topology


def grid_topology(rows: int, columns: int, link_cost: int = 1, latency: float = 0.005) -> Topology:
    """A rows x columns grid topology, useful for tests and examples."""
    topology = Topology(name=f"grid-{rows}x{columns}")
    spec = LinkSpec(latency=latency, cost=link_cost, tier=TIER_STUB)
    for row in range(rows):
        for column in range(columns):
            topology.add_node(f"g{row}_{column}")
    for row in range(rows):
        for column in range(columns):
            node = f"g{row}_{column}"
            if column + 1 < columns:
                topology.add_link(node, f"g{row}_{column + 1}", spec)
            if row + 1 < rows:
                topology.add_link(node, f"g{row + 1}_{column}", spec)
    return topology


def _spec(tier: str, cost: int) -> LinkSpec:
    return LinkSpec(
        latency=_TIER_LATENCY[tier],
        bandwidth=_TIER_BANDWIDTH[tier],
        cost=cost,
        tier=tier,
    )
