"""Network topologies: generic graph model plus the paper's generators.

Two generators reproduce the evaluation setups of the paper:

* :func:`transit_stub_topology` mimics the GT-ITM transit-stub topologies of
  Section 7 ("eight nodes per stub, three stubs per transit node, and four
  nodes per transit domain"), with the paper's per-tier latencies and
  bandwidth capacities.  The number of nodes grows by adding domains: one
  domain is 4 transit nodes x (1 + 3 stubs x 8 nodes) = 100 nodes.
* :func:`ring_topology` mimics the 40-node testbed deployment of Section 7.4
  (a ring for reachability plus one random peer per node, maximum degree 3).

A :class:`Topology` holds named nodes and *symmetric* links annotated with
latency (seconds), bandwidth capacity (bytes/second) and a routing cost used
by the NDlog protocols (fixed at 1 in the paper, i.e. hop count).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .errors import NoRouteError

__all__ = [
    "LinkSpec",
    "Topology",
    "transit_stub_topology",
    "ring_topology",
    "line_topology",
    "grid_topology",
    "cluster_topology",
    "partition_topology",
    "partition_cut_edges",
    "partition_lookahead",
    "TIER_TRANSIT",
    "TIER_TRANSIT_STUB",
    "TIER_STUB",
]

# Link tiers, matching the GT-ITM terminology used by the paper.
TIER_TRANSIT = "transit-transit"
TIER_TRANSIT_STUB = "transit-stub"
TIER_STUB = "stub-stub"

# Paper's link parameters: latency in seconds, bandwidth in bytes/second.
_TIER_LATENCY = {
    TIER_TRANSIT: 0.050,
    TIER_TRANSIT_STUB: 0.010,
    TIER_STUB: 0.002,
}
_TIER_BANDWIDTH = {
    TIER_TRANSIT: 1_000_000_000 / 8,
    TIER_TRANSIT_STUB: 100_000_000 / 8,
    TIER_STUB: 50_000_000 / 8,
}


@dataclass(frozen=True)
class LinkSpec:
    """Attributes of one (symmetric) link."""

    latency: float = 0.010
    bandwidth: float = 12_500_000.0
    cost: int = 1
    tier: str = TIER_STUB


class Topology:
    """An undirected graph of nodes with per-link attributes."""

    def __init__(self, name: str = "topology"):
        self.name = name
        self._nodes: List[Any] = []
        self._node_set: Set[Any] = set()
        self._node_kind: Dict[Any, str] = {}
        self._links: Dict[Tuple[Any, Any], LinkSpec] = {}
        self._adjacency: Dict[Any, Set[Any]] = {}
        self._route_cache: Dict[Any, Dict[Any, float]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, node: Any, kind: str = "stub") -> None:
        if node in self._node_set:
            return
        self._nodes.append(node)
        self._node_set.add(node)
        self._node_kind[node] = kind
        self._adjacency[node] = set()

    def add_link(self, a: Any, b: Any, spec: Optional[LinkSpec] = None) -> None:
        """Add a symmetric link between *a* and *b* (idempotent)."""
        if a == b:
            raise ValueError("self-links are not allowed")
        self.add_node(a)
        self.add_node(b)
        spec = spec or LinkSpec()
        self._links[self._key(a, b)] = spec
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._route_cache.clear()

    def remove_link(self, a: Any, b: Any) -> bool:
        """Remove the link between *a* and *b*; returns False if absent."""
        key = self._key(a, b)
        if key not in self._links:
            return False
        del self._links[key]
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)
        self._route_cache.clear()
        return True

    @staticmethod
    def _key(a: Any, b: Any) -> Tuple[Any, Any]:
        return (a, b) if repr(a) <= repr(b) else (b, a)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def nodes(self) -> List[Any]:
        return list(self._nodes)

    def node_kind(self, node: Any) -> str:
        return self._node_kind.get(node, "stub")

    def node_count(self) -> int:
        return len(self._nodes)

    def has_node(self, node: Any) -> bool:
        return node in self._node_set

    def has_link(self, a: Any, b: Any) -> bool:
        return self._key(a, b) in self._links

    def link(self, a: Any, b: Any) -> LinkSpec:
        return self._links[self._key(a, b)]

    def links(self) -> Iterator[Tuple[Any, Any, LinkSpec]]:
        for (a, b), spec in self._links.items():
            yield a, b, spec

    def link_count(self) -> int:
        return len(self._links)

    def neighbors(self, node: Any) -> List[Any]:
        return sorted(self._adjacency.get(node, ()), key=repr)

    def degree(self, node: Any) -> int:
        return len(self._adjacency.get(node, ()))

    def links_by_tier(self, tier: str) -> List[Tuple[Any, Any, LinkSpec]]:
        return [(a, b, spec) for a, b, spec in self.links() if spec.tier == tier]

    # ------------------------------------------------------------------ #
    # link facts for the NDlog protocols
    # ------------------------------------------------------------------ #
    def link_facts(self) -> List[Tuple[Any, Any, int]]:
        """Return directed ``(src, dst, cost)`` triples for every link.

        Links are symmetric, so both directions are emitted — each node is
        "initialized with a link tuple for each of its neighbors".
        """
        facts: List[Tuple[Any, Any, int]] = []
        for a, b, spec in self.links():
            facts.append((a, b, spec.cost))
            facts.append((b, a, spec.cost))
        return facts

    # ------------------------------------------------------------------ #
    # routing (latency between arbitrary node pairs)
    # ------------------------------------------------------------------ #
    def latency_between(self, source: Any, destination: Any) -> float:
        """Shortest-path latency between two nodes (Dijkstra, cached)."""
        if source == destination:
            return 0.0
        table = self._route_cache.get(source)
        if table is None:
            table = self._dijkstra(source)
            self._route_cache[source] = table
        try:
            return table[destination]
        except KeyError:
            raise NoRouteError(source, destination) from None

    def _dijkstra(self, source: Any) -> Dict[Any, float]:
        distances: Dict[Any, float] = {source: 0.0}
        heap: List[Tuple[float, int, Any]] = [(0.0, 0, source)]
        sequence = 0
        visited: Set[Any] = set()
        while heap:
            distance, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor in self._adjacency.get(node, ()):
                spec = self._links[self._key(node, neighbor)]
                candidate = distance + spec.latency
                if candidate < distances.get(neighbor, float("inf")):
                    distances[neighbor] = candidate
                    sequence += 1
                    heapq.heappush(heap, (candidate, sequence, neighbor))
        return distances

    def is_connected(self) -> bool:
        if not self._nodes:
            return True
        reachable = self._dijkstra(self._nodes[0])
        return len(reachable) == len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, nodes={self.node_count()}, "
            f"links={self.link_count()})"
        )


# ---------------------------------------------------------------------- #
# generators
# ---------------------------------------------------------------------- #
def transit_stub_topology(
    domains: int = 1,
    transit_per_domain: int = 4,
    stubs_per_transit: int = 3,
    nodes_per_stub: int = 8,
    seed: int = 0,
    link_cost: int = 1,
) -> Topology:
    """Generate a GT-ITM style transit-stub topology.

    With the paper's defaults one domain contains
    ``4 * (1 + 3 * 8) = 100`` nodes; the evaluation sweeps network size by
    increasing ``domains``.
    """
    rng = random.Random(seed)
    topology = Topology(name=f"transit-stub-{domains}d")
    transit_nodes: List[List[str]] = []

    for domain in range(domains):
        domain_transits: List[str] = []
        for index in range(transit_per_domain):
            node = f"t{domain}_{index}"
            topology.add_node(node, kind="transit")
            domain_transits.append(node)
        # Connect transit nodes within a domain as a ring plus one chord,
        # giving the dense transit core GT-ITM produces.
        count = len(domain_transits)
        for index in range(count):
            a = domain_transits[index]
            b = domain_transits[(index + 1) % count]
            if a != b and not topology.has_link(a, b):
                topology.add_link(a, b, _spec(TIER_TRANSIT, link_cost))
        if count > 3:
            topology.add_link(
                domain_transits[0], domain_transits[count // 2], _spec(TIER_TRANSIT, link_cost)
            )
        transit_nodes.append(domain_transits)

    # Interconnect domains through their first transit nodes (ring of domains).
    for domain in range(1, domains):
        topology.add_link(
            transit_nodes[domain - 1][0],
            transit_nodes[domain][0],
            _spec(TIER_TRANSIT, link_cost),
        )
    if domains > 2:
        topology.add_link(
            transit_nodes[-1][1 % transit_per_domain],
            transit_nodes[0][1 % transit_per_domain],
            _spec(TIER_TRANSIT, link_cost),
        )

    # Attach stubs.
    for domain, domain_transits in enumerate(transit_nodes):
        for transit_index, transit in enumerate(domain_transits):
            for stub_index in range(stubs_per_transit):
                stub_nodes: List[str] = []
                for node_index in range(nodes_per_stub):
                    node = f"s{domain}_{transit_index}_{stub_index}_{node_index}"
                    topology.add_node(node, kind="stub")
                    stub_nodes.append(node)
                # Stub internal structure: a ring plus a couple of random
                # chords, giving average degree ~2.6 like GT-ITM stubs.
                for index in range(len(stub_nodes)):
                    a = stub_nodes[index]
                    b = stub_nodes[(index + 1) % len(stub_nodes)]
                    if a != b and not topology.has_link(a, b):
                        topology.add_link(a, b, _spec(TIER_STUB, link_cost))
                if len(stub_nodes) >= 3:
                    extra_chords = max(1, nodes_per_stub // 4)
                    for _ in range(extra_chords):
                        a, b = rng.sample(stub_nodes, 2)
                        if not topology.has_link(a, b):
                            topology.add_link(a, b, _spec(TIER_STUB, link_cost))
                # Gateway stub node connects to the transit node.
                gateway = stub_nodes[0]
                topology.add_link(transit, gateway, _spec(TIER_TRANSIT_STUB, link_cost))
    return topology


def ring_topology(
    node_count: int,
    random_peers: bool = True,
    max_degree: int = 3,
    seed: int = 0,
    link_cost: int = 1,
    latency: float = 0.001,
    bandwidth: float = 125_000_000.0,
) -> Topology:
    """Generate the testbed topology of Section 7.4.

    Nodes are arranged in a ring; when *random_peers* is set each node also
    links to one random peer subject to the *max_degree* cap, giving the
    "maximum degree of all nodes is three" structure of the paper.
    """
    rng = random.Random(seed)
    topology = Topology(name=f"ring-{node_count}")
    nodes = [f"n{index}" for index in range(node_count)]
    for node in nodes:
        topology.add_node(node, kind="stub")
    spec = LinkSpec(latency=latency, bandwidth=bandwidth, cost=link_cost, tier=TIER_STUB)
    for index in range(node_count):
        topology.add_link(nodes[index], nodes[(index + 1) % node_count], spec)
    if random_peers and node_count > 3:
        order = list(range(node_count))
        rng.shuffle(order)
        for index in order:
            node = nodes[index]
            if topology.degree(node) >= max_degree:
                continue
            candidates = [
                other
                for other in nodes
                if other != node
                and not topology.has_link(node, other)
                and topology.degree(other) < max_degree
            ]
            if not candidates:
                continue
            peer = rng.choice(candidates)
            topology.add_link(node, peer, spec)
    return topology


def line_topology(node_count: int, link_cost: int = 1, latency: float = 0.010) -> Topology:
    """A simple chain topology, useful for unit tests."""
    topology = Topology(name=f"line-{node_count}")
    nodes = [f"n{index}" for index in range(node_count)]
    for node in nodes:
        topology.add_node(node)
    for index in range(node_count - 1):
        topology.add_link(
            nodes[index],
            nodes[index + 1],
            LinkSpec(latency=latency, cost=link_cost, tier=TIER_STUB),
        )
    return topology


def grid_topology(rows: int, columns: int, link_cost: int = 1, latency: float = 0.005) -> Topology:
    """A rows x columns grid topology, useful for tests and examples."""
    topology = Topology(name=f"grid-{rows}x{columns}")
    spec = LinkSpec(latency=latency, cost=link_cost, tier=TIER_STUB)
    for row in range(rows):
        for column in range(columns):
            topology.add_node(f"g{row}_{column}")
    for row in range(rows):
        for column in range(columns):
            node = f"g{row}_{column}"
            if column + 1 < columns:
                topology.add_link(node, f"g{row}_{column + 1}", spec)
            if row + 1 < rows:
                topology.add_link(node, f"g{row + 1}_{column}", spec)
    return topology


def cluster_topology(
    clusters: int,
    nodes_per_cluster: int,
    seed: int = 0,
    link_cost: int = 1,
    intra_latency: float = 0.002,
    inter_latency: float = 0.050,
    chords_per_cluster: Optional[int] = None,
) -> Topology:
    """Generate a large clustered topology for the scale scenarios.

    ``clusters`` dense rings of ``nodes_per_cluster`` nodes (ring plus a few
    random chords each) are joined into a ring of clusters through gateway
    nodes, with one long chord across the cluster ring for shortcut routes.
    Intra-cluster links are fast (``intra_latency``); inter-cluster links are
    slow (``inter_latency``, transit tier).  The structure mirrors how
    Internet-scale deployments cluster by data center / AS — and it is what
    makes paper-scale topologies shardable: a partitioner that cuts only the
    sparse high-latency inter-cluster links gives the sharded engine a large
    conservative lookahead window (the window is the minimum cut-edge
    latency) with little cross-shard traffic.
    """
    if clusters < 1 or nodes_per_cluster < 1:
        raise ValueError("clusters and nodes_per_cluster must be positive")
    rng = random.Random(seed)
    topology = Topology(name=f"cluster-{clusters}x{nodes_per_cluster}")
    intra = LinkSpec(
        latency=intra_latency,
        bandwidth=_TIER_BANDWIDTH[TIER_STUB],
        cost=link_cost,
        tier=TIER_STUB,
    )
    inter = LinkSpec(
        latency=inter_latency,
        bandwidth=_TIER_BANDWIDTH[TIER_TRANSIT],
        cost=link_cost,
        tier=TIER_TRANSIT,
    )
    gateways: List[str] = []
    for cluster in range(clusters):
        members = [f"c{cluster}_{index}" for index in range(nodes_per_cluster)]
        for index, node in enumerate(members):
            topology.add_node(node, kind="transit" if index == 0 else "stub")
        for index in range(len(members)):
            a = members[index]
            b = members[(index + 1) % len(members)]
            if a != b and not topology.has_link(a, b):
                topology.add_link(a, b, intra)
        chords = (
            chords_per_cluster
            if chords_per_cluster is not None
            else max(1, nodes_per_cluster // 8)
        )
        if nodes_per_cluster >= 4:
            for _ in range(chords):
                a, b = rng.sample(members, 2)
                if not topology.has_link(a, b):
                    topology.add_link(a, b, intra)
        gateways.append(members[0])
    for cluster in range(1, clusters):
        topology.add_link(gateways[cluster - 1], gateways[cluster], inter)
    if clusters > 2:
        topology.add_link(gateways[-1], gateways[0], inter)
    if clusters > 5:
        topology.add_link(gateways[0], gateways[clusters // 2], inter)
    return topology


# ---------------------------------------------------------------------- #
# sharding support: latency-aware balanced partitioning
# ---------------------------------------------------------------------- #
def partition_topology(
    topology: Topology,
    shards: int,
    balance_tolerance: float = 0.25,
    refinement_passes: int = 8,
) -> Dict[Any, int]:
    """Partition the nodes into *shards* balanced, latency-aware parts.

    The goal is twofold: (1) balance — shard sizes differ by at most
    ``balance_tolerance`` of the ideal size (never below 1 node of it), so
    worker processes get comparable event load; (2) a *cheap cut* — the
    edges crossing shards should be few and slow, because every cut edge
    carries cross-shard envelopes and the **minimum cut-edge latency is the
    conservative lookahead window** of the sharded engine (cutting a fast
    link both shrinks the window and adds barrier traffic).

    The algorithm is deterministic (no RNG, no hash-order dependence):
    grow a Prim-style traversal that always absorbs the fastest link
    leaving the visited set — so tightly coupled clusters are swallowed
    whole before a slow inter-cluster link is crossed — chunk the visit
    order into contiguous balanced blocks, then run bounded
    Kernighan-Lin-style refinement passes moving boundary nodes when that
    strictly lowers the cut cost (sum of ``1/latency`` over cut edges)
    without violating balance.
    """
    nodes = topology.nodes
    count = len(nodes)
    if shards < 1:
        raise ValueError(f"shards must be positive, got {shards}")
    if shards == 1 or count <= 1:
        return {node: 0 for node in nodes}
    shards = min(shards, count)

    order = _prim_order(topology, nodes)
    assignment: Dict[Any, int] = {}
    # Contiguous chunks of the traversal order, sizes differing by <= 1.
    base, extra = divmod(count, shards)
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        for node in order[start : start + size]:
            assignment[node] = shard
        start += size

    target = count / shards
    low = max(1, int(target - max(1, balance_tolerance * target)))
    high = max(low, int(target + max(1, balance_tolerance * target) + 0.5))
    sizes = [0] * shards
    for shard in assignment.values():
        sizes[shard] += 1

    def move_gain(node: Any, destination: int) -> float:
        """Cut-cost reduction of moving *node* to *destination*."""
        gain = 0.0
        here = assignment[node]
        for neighbor in topology.neighbors(node):
            spec = topology.link(node, neighbor)
            affinity = (1.0 / spec.latency) if spec.latency > 0 else float("inf")
            other = assignment[neighbor]
            if other == here:
                gain -= affinity  # this edge becomes cut
            elif other == destination:
                gain += affinity  # this cut edge heals
        return gain

    for _ in range(max(0, refinement_passes)):
        improved = False
        for node in nodes:
            here = assignment[node]
            if sizes[here] <= low:
                continue
            # Candidate destinations: shards of the node's neighbors, in
            # deterministic ascending shard order.
            candidates = sorted(
                {assignment[neighbor] for neighbor in topology.neighbors(node)}
                - {here}
            )
            best, best_gain = None, 0.0
            for destination in candidates:
                if sizes[destination] >= high:
                    continue
                gain = move_gain(node, destination)
                if gain > best_gain:
                    best, best_gain = destination, gain
            if best is not None:
                assignment[node] = best
                sizes[here] -= 1
                sizes[best] += 1
                improved = True
        if not improved:
            break
    return assignment


def _prim_order(topology: Topology, nodes: List[Any]) -> List[Any]:
    """Visit order absorbing the lowest-latency frontier link first."""
    index_of = {node: index for index, node in enumerate(nodes)}
    visited: Set[Any] = set()
    order: List[Any] = []
    for root in nodes:
        if root in visited:
            continue
        heap: List[Tuple[float, int, Any]] = [(0.0, index_of[root], root)]
        while heap:
            _, _, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            order.append(node)
            for neighbor in topology.neighbors(node):
                if neighbor not in visited:
                    spec = topology.link(node, neighbor)
                    heapq.heappush(
                        heap, (spec.latency, index_of[neighbor], neighbor)
                    )
    return order


def partition_cut_edges(
    topology: Topology, assignment: Dict[Any, int]
) -> List[Tuple[Any, Any, LinkSpec]]:
    """The links whose endpoints live in different shards."""
    return [
        (a, b, spec)
        for a, b, spec in topology.links()
        if assignment.get(a) != assignment.get(b)
    ]


def partition_lookahead(
    topology: Topology, assignment: Dict[Any, int]
) -> Optional[float]:
    """Conservative lookahead window: the minimum cut-edge latency.

    Any path between nodes in different shards crosses the cut at least
    once, so its end-to-end (shortest-path) latency is at least the
    minimum latency among cut edges — a message sent at time *t* to
    another shard can never arrive before ``t + lookahead``.  Returns
    ``None`` when no edge crosses the cut (the shards never interact).
    """
    latencies = [spec.latency for _, _, spec in partition_cut_edges(topology, assignment)]
    return min(latencies) if latencies else None


def _spec(tier: str, cost: int) -> LinkSpec:
    return LinkSpec(
        latency=_TIER_LATENCY[tier],
        bandwidth=_TIER_BANDWIDTH[tier],
        cost=cost,
        tier=tier,
    )
