"""Network substrate: discrete-event simulation, topologies, hosts, stats.

This package replaces ns-3 / RapidNet's networking layer in the ExSPAN
reproduction.  See DESIGN.md (system S3) for the substitution rationale.
"""

from .churn import ChurnEvent, ChurnGenerator
from .errors import NetworkError, NoRouteError, SimulationError, UnknownNodeError
from .host import Host
from .message import HEADER_OVERHEAD, Message, payload_size
from .network import Network
from .simulator import ScheduledEvent, Simulator
from .stats import LatencyStats, MessageRecord, TrafficStats, cdf_points
from .topology import (
    LinkSpec,
    Topology,
    cluster_topology,
    grid_topology,
    line_topology,
    partition_cut_edges,
    partition_lookahead,
    partition_topology,
    ring_topology,
    transit_stub_topology,
)

__all__ = [
    "ChurnEvent",
    "ChurnGenerator",
    "NetworkError",
    "NoRouteError",
    "SimulationError",
    "UnknownNodeError",
    "Host",
    "HEADER_OVERHEAD",
    "Message",
    "payload_size",
    "Network",
    "ScheduledEvent",
    "Simulator",
    "LatencyStats",
    "MessageRecord",
    "TrafficStats",
    "cdf_points",
    "LinkSpec",
    "Topology",
    "cluster_topology",
    "grid_topology",
    "line_topology",
    "partition_cut_edges",
    "partition_lookahead",
    "partition_topology",
    "ring_topology",
    "transit_stub_topology",
]
