"""A small discrete-event simulator.

This is the reproduction's substitute for ns-3: it provides an event queue
ordered by simulated time, with deterministic tie-breaking for events
scheduled at the same instant.  All latencies are in seconds.

The simulator knows nothing about networks; :mod:`repro.net.network` builds
message delivery on top of :meth:`Simulator.schedule`.

Event ordering
--------------
Events are ordered by ``(time, key, sequence)``.  ``key`` is an optional
tuple supplied by the scheduler; events with equal keys fall back
to FIFO insertion order.  The network layer keys every message delivery by
``(send time, source rank, per-source send sequence)``, which makes the
execution order of same-instant deliveries a pure function of *which host
sent what, when*
rather than of global scheduling order.  That invariance is what lets the
sharded engine (:mod:`repro.net.sharding`) partition one simulation across
worker processes and still execute bit-identically to this single-process
simulator: a per-shard queue can reconstruct the very same total order
from local information only.

Windowed stepping
-----------------
:meth:`Simulator.run_window` executes every event strictly *before* an
exclusive horizon and then parks the clock there.  The sharded engine runs
each shard over conservative lookahead windows (the horizon is the window
barrier); events scheduled exactly at the horizon wait, because a
cross-shard message may still arrive at that instant.  ``safe_time`` is
the monotone horizon accounting: no event before it can ever be scheduled
again, which the barrier protocol asserts when it injects remote messages.

Cancelled events are lazily skipped at pop time (the classic tombstone
scheme), but the queue does not rot under churn-heavy workloads: the
simulator keeps a live-event counter (so :attr:`Simulator.pending_events`
is O(1) rather than an O(queue) scan) and compacts the heap whenever
tombstones outnumber live events by the configured ratio, so a workload
that schedules and cancels in a loop runs in memory proportional to the
*live* events only.  ``compact_min_cancelled`` and ``compact_ratio`` are
constructor knobs (huge sharded runs tune them through
:class:`~repro.core.api.ExspanNetwork`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .errors import SimulationError

__all__ = ["Simulator", "ScheduledEvent", "COMPACT_MIN_CANCELLED", "COMPACT_RATIO"]

#: Default tombstone floor below which compaction is never attempted; keeps
#: tiny simulations from paying repeated heapify costs for a handful of
#: cancels.  Overridable per-instance via ``Simulator(compact_min_cancelled=...)``.
COMPACT_MIN_CANCELLED = 64

#: Default tombstones-to-live ratio that triggers compaction (``1.0`` =
#: compact once tombstones outnumber live events).  Overridable per-instance
#: via ``Simulator(compact_ratio=...)``.
COMPACT_RATIO = 1.0

#: Ordering key reserved for events scheduled without an explicit key
#: (timers, workload callbacks).  The empty tuple sorts before every
#: delivery key, so a timer scheduled at time *t* always runs before the
#: message deliveries of time *t* — deterministically, in both the serial
#: and the sharded engine.
_DEFAULT_KEY: Tuple[int, ...] = ()


@dataclass(order=True)
class ScheduledEvent:
    """An event in the simulator queue (ordered by time, key, sequence)."""

    time: float
    key: Tuple[int, ...]
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Back-reference so cancel() can keep the owner's live-event counter
    # exact; detached (None) once the event leaves the queue.
    _owner: Optional["Simulator"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so that it is skipped when dequeued."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()
            self._owner = None


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock."""

    def __init__(
        self,
        compact_min_cancelled: int = COMPACT_MIN_CANCELLED,
        compact_ratio: float = COMPACT_RATIO,
    ) -> None:
        if compact_min_cancelled < 0:
            raise SimulationError(
                f"compact_min_cancelled must be >= 0, got {compact_min_cancelled}"
            )
        if compact_ratio <= 0:
            raise SimulationError(f"compact_ratio must be > 0, got {compact_ratio}")
        self._now = 0.0
        self._sequence = 0
        self._queue: List[ScheduledEvent] = []
        self._live = 0
        self._cancelled_in_queue = 0
        self._safe_time = 0.0
        self.compact_min_cancelled = compact_min_cancelled
        self.compact_ratio = compact_ratio
        self.events_executed = 0
        self.compactions = 0
        #: Optional :class:`repro.obs.tracer.Tracer`; when set, every event
        #: dispatch is wrapped in a ``sim.event`` span (simulated-time axis).
        self.tracer = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def safe_time(self) -> float:
        """Monotone horizon: no event strictly before it can be scheduled.

        Advanced by :meth:`run_window`; the sharded barrier protocol uses it
        to assert that injected cross-shard messages never travel into this
        shard's past (the conservative-lookahead guarantee).
        """
        return self._safe_time

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events, maintained in O(1)."""
        return self._live

    @property
    def queue_length(self) -> int:
        """Physical heap size including tombstones (compaction bounds it)."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        key: Tuple[int, ...] = _DEFAULT_KEY,
    ) -> ScheduledEvent:
        """Schedule *callback* to run *delay* seconds from now.

        Every relative delay funnels through :meth:`schedule_at` so there is
        exactly one place where absolute event times are produced — the
        single authoritative path that the monotonicity assertions (and the
        sharded barrier protocol) rely on.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, key=key)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        key: Tuple[int, ...] = _DEFAULT_KEY,
    ) -> ScheduledEvent:
        """Schedule *callback* at absolute simulated *time*.

        ``key`` participates in the event ordering between ``time`` and the
        FIFO sequence; see the module docstring.  Scheduling before the
        current clock or before :attr:`safe_time` raises — the latter
        guards the sharded window barriers against float round-off drift
        (an event sneaking into an already-executed window would silently
        diverge from the serial engine).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}",
                time=time, safe_time=self._safe_time,
            )
        if time < self._safe_time:
            raise SimulationError(
                f"cannot schedule event at {time} before safe time "
                f"{self._safe_time} (window-barrier violation)",
                time=time, safe_time=self._safe_time,
            )
        event = ScheduledEvent(
            time=time, key=key, sequence=self._sequence, callback=callback, _owner=self
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def _note_cancelled(self) -> None:
        """Called by :meth:`ScheduledEvent.cancel` while the event is queued."""
        self._live -= 1
        self._cancelled_in_queue += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once tombstones dominate the live events."""
        if (
            self._cancelled_in_queue > self.compact_min_cancelled
            and self._cancelled_in_queue > self._live * self.compact_ratio
        ):
            self._queue = [event for event in self._queue if not event.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0
            self.compactions += 1

    def _pop(self) -> Optional[ScheduledEvent]:
        """Pop the next live event, discarding tombstones along the way."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            event._owner = None
            self._live -= 1
            return event
        return None

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when queue is empty."""
        event = self._pop()
        if event is None:
            return False
        self._now = event.time
        tracer = self.tracer
        if tracer is None:
            event.callback()
        else:
            with tracer.span("sim.event", cat="sim"):
                event.callback()
        self.events_executed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, *until* is reached, or
        *max_events* have executed.  Returns the number of events executed."""
        executed = 0
        while self._queue:
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                self._now = until
                break
            if max_events is not None and executed >= max_events:
                break
            if self.step():
                executed += 1
        return executed

    def run_window(self, horizon: float, max_events: Optional[int] = None) -> int:
        """Execute every event strictly before *horizon* (exclusive).

        The window's upper bound is exclusive because a conservatively
        lookahead-bounded remote message may still arrive exactly at the
        horizon; events parked there run in a later window, after the
        barrier exchange.  On return the clock rests at the last executed
        event (so fixpoint times match the serial engine) while
        :attr:`safe_time` advances to the horizon — scheduling anything
        before it afterwards raises.  Returns the number of events executed.
        """
        if horizon < self._safe_time:
            raise SimulationError(
                f"window horizon {horizon} precedes safe time {self._safe_time}"
            )
        executed = 0
        drained = True
        while True:
            next_event = self._peek()
            if next_event is None or next_event.time >= horizon:
                break
            if max_events is not None and executed >= max_events:
                # Truncated: live pre-horizon events remain, so the horizon
                # is NOT safe — their callbacks may legitimately schedule
                # before it.  The safe time only advances to "now".
                drained = False
                break
            if self.step():
                executed += 1
        self._safe_time = horizon if drained else max(self._safe_time, self._now)
        return executed

    def reopen_window(self, time: float) -> None:
        """Lower the safe time back to *time* (a global barrier re-entry).

        Only sound when the caller can guarantee nothing can arrive before
        *time* anymore — the sharded driver calls it at op barriers, where
        global quiescence (or the script-limit window cap) ensures every
        in-flight message at an earlier instant has been delivered.  New
        external inputs applied at *time* may then schedule work from that
        instant onward, even though earlier windows overshot it.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot reopen a window at {time} before current time {self._now}"
            )
        self._safe_time = min(self._safe_time, time)

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` when idle."""
        event = self._peek()
        return event.time if event is not None else None

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until no events remain (network fixpoint)."""
        return self.run(until=None, max_events=max_events)

    def _peek(self) -> Optional[ScheduledEvent]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled_in_queue -= 1
        return self._queue[0] if self._queue else None

    def advance_to(self, time: float) -> None:
        """Advance the clock with no events (used by workload generators)."""
        if time < self._now:
            raise SimulationError("cannot move the clock backwards")
        self._now = time
