"""A small discrete-event simulator.

This is the reproduction's substitute for ns-3: it provides an event queue
ordered by simulated time, with deterministic FIFO tie-breaking for events
scheduled at the same instant.  All latencies are in seconds.

The simulator knows nothing about networks; :mod:`repro.net.network` builds
message delivery on top of :meth:`Simulator.schedule`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from .errors import SimulationError

__all__ = ["Simulator", "ScheduledEvent"]


@dataclass(order=True)
class ScheduledEvent:
    """An event in the simulator queue (ordered by time, then sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so that it is skipped when dequeued."""
        self.cancelled = True


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: List[ScheduledEvent] = []
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = ScheduledEvent(time=time, sequence=self._sequence, callback=callback)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self.events_executed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, *until* is reached, or
        *max_events* have executed.  Returns the number of events executed."""
        executed = 0
        while self._queue:
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                self._now = until
                break
            if max_events is not None and executed >= max_events:
                break
            if self.step():
                executed += 1
        return executed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until no events remain (network fixpoint)."""
        return self.run(until=None, max_events=max_events)

    def _peek(self) -> Optional[ScheduledEvent]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def advance_to(self, time: float) -> None:
        """Advance the clock with no events (used by workload generators)."""
        if time < self._now:
            raise SimulationError("cannot move the clock backwards")
        self._now = time
