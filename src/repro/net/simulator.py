"""A small discrete-event simulator.

This is the reproduction's substitute for ns-3: it provides an event queue
ordered by simulated time, with deterministic FIFO tie-breaking for events
scheduled at the same instant.  All latencies are in seconds.

The simulator knows nothing about networks; :mod:`repro.net.network` builds
message delivery on top of :meth:`Simulator.schedule`.

Cancelled events are lazily skipped at pop time (the classic tombstone
scheme), but the queue does not rot under churn-heavy workloads: the
simulator keeps a live-event counter (so :attr:`Simulator.pending_events`
is O(1) rather than an O(queue) scan) and compacts the heap whenever
tombstones outnumber live events, so a workload that schedules and cancels
in a loop runs in memory proportional to the *live* events only.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .errors import SimulationError

__all__ = ["Simulator", "ScheduledEvent"]

#: Tombstone floor below which compaction is never attempted; keeps tiny
#: simulations from paying repeated heapify costs for a handful of cancels.
COMPACT_MIN_CANCELLED = 64


@dataclass(order=True)
class ScheduledEvent:
    """An event in the simulator queue (ordered by time, then sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    # Back-reference so cancel() can keep the owner's live-event counter
    # exact; detached (None) once the event leaves the queue.
    _owner: Optional["Simulator"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so that it is skipped when dequeued."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()
            self._owner = None


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._now = 0.0
        self._sequence = 0
        self._queue: List[ScheduledEvent] = []
        self._live = 0
        self._cancelled_in_queue = 0
        self.events_executed = 0
        self.compactions = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events, maintained in O(1)."""
        return self._live

    @property
    def queue_length(self) -> int:
        """Physical heap size including tombstones (compaction bounds it)."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        event = ScheduledEvent(
            time=time, sequence=self._sequence, callback=callback, _owner=self
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def _note_cancelled(self) -> None:
        """Called by :meth:`ScheduledEvent.cancel` while the event is queued."""
        self._live -= 1
        self._cancelled_in_queue += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once tombstones dominate the live events."""
        if (
            self._cancelled_in_queue > COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue > self._live
        ):
            self._queue = [event for event in self._queue if not event.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_in_queue = 0
            self.compactions += 1

    def _pop(self) -> Optional[ScheduledEvent]:
        """Pop the next live event, discarding tombstones along the way."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            event._owner = None
            self._live -= 1
            return event
        return None

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next pending event.  Returns False when queue is empty."""
        event = self._pop()
        if event is None:
            return False
        self._now = event.time
        event.callback()
        self.events_executed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, *until* is reached, or
        *max_events* have executed.  Returns the number of events executed."""
        executed = 0
        while self._queue:
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                self._now = until
                break
            if max_events is not None and executed >= max_events:
                break
            if self.step():
                executed += 1
        return executed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until no events remain (network fixpoint)."""
        return self.run(until=None, max_events=max_events)

    def _peek(self) -> Optional[ScheduledEvent]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled_in_queue -= 1
        return self._queue[0] if self._queue else None

    def advance_to(self, time: float) -> None:
        """Advance the clock with no events (used by workload generators)."""
        if time < self._now:
            raise SimulationError("cannot move the clock backwards")
        self._now = time
