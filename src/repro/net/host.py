"""Simulated hosts.

A :class:`Host` is one addressable endpoint in the simulated network.  It
dispatches incoming :class:`~repro.net.message.Message` objects to handlers
registered per message *kind* — the NDlog runtime registers a ``"delta"``
handler, the ExSPAN provenance query service registers provenance-query
handlers, and so on.  Hosts know nothing about what the payloads mean.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .errors import NetworkError
from .message import Message

__all__ = ["Host"]


class Host:
    """One node of the simulated network."""

    __slots__ = (
        "address",
        "network",
        "_handlers",
        "messages_received",
        "bytes_received",
        "up",
    )

    def __init__(self, address: Any, network: "Network"):
        self.address = address
        self.network = network
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self.messages_received = 0
        self.bytes_received = 0
        self.up = True

    # ------------------------------------------------------------------ #
    # handler registration
    # ------------------------------------------------------------------ #
    def register_handler(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Register *handler* for messages of the given *kind*."""
        self._handlers[kind] = handler

    def has_handler(self, kind: str) -> bool:
        return kind in self._handlers

    # ------------------------------------------------------------------ #
    # sending / receiving
    # ------------------------------------------------------------------ #
    def send(
        self,
        destination: Any,
        kind: str,
        payload: Any,
        size: Optional[int] = None,
    ) -> Message:
        """Send *payload* to *destination* through the network."""
        return self.network.send(self.address, destination, kind, payload, size)

    def deliver(self, message: Message) -> None:
        """Called by the network when a message arrives at this host."""
        if not self.up:
            return
        self.messages_received += 1
        self.bytes_received += message.size
        handler = self._handlers.get(message.kind)
        if handler is None:
            raise NetworkError(
                f"host {self.address!r} has no handler for message kind "
                f"{message.kind!r}"
            )
        handler(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.address!r})"
