"""Simulated hosts.

A :class:`Host` is one addressable endpoint in the simulated network.  It
dispatches incoming :class:`~repro.net.message.Message` objects to handlers
registered per message *kind* — the NDlog runtime registers a ``"delta"``
handler, the ExSPAN provenance query service registers provenance-query
handlers, and so on.  Hosts know nothing about what the payloads mean.

Per-destination batching
------------------------
Services that generate bursts of small messages (the provenance query
protocol above all) can *enqueue* sends instead of issuing them directly.
Enqueued payloads accumulate in a per-``(destination, kind)`` outbox for
the duration of the current **turn** — one delivered message or one
externally driven entry point, bracketed by :meth:`begin_turn` /
:meth:`end_turn` — and are flushed when the outermost turn ends.  A flush
sends a single batched message per destination that accumulated two or
more payloads (one header on the wire instead of N) and a plain message
for singletons, so un-batched traffic is byte-identical to the pre-batching
wire format.  Delivery of a batch dispatches the handler once per item, in
enqueue order, which keeps processing order identical to individual sends.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import NetworkError
from .message import Message

__all__ = ["Host"]


class Host:
    """One node of the simulated network."""

    __slots__ = (
        "address",
        "network",
        "_handlers",
        "_outbox",
        "_turn_depth",
        "messages_received",
        "bytes_received",
        "batches_sent",
        "messages_batched",
        "up",
    )

    def __init__(self, address: Any, network: "Network"):
        self.address = address
        self.network = network
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        # (destination, kind) -> payloads queued this turn, in first-enqueue
        # order (dict insertion order doubles as the flush order, which is
        # what keeps batched delivery order identical to individual sends).
        self._outbox: Dict[Tuple[Any, str], List[Any]] = {}
        self._turn_depth = 0
        self.messages_received = 0
        self.bytes_received = 0
        self.batches_sent = 0
        self.messages_batched = 0
        self.up = True

    # ------------------------------------------------------------------ #
    # handler registration
    # ------------------------------------------------------------------ #
    def register_handler(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Register *handler* for messages of the given *kind*."""
        self._handlers[kind] = handler

    def has_handler(self, kind: str) -> bool:
        return kind in self._handlers

    # ------------------------------------------------------------------ #
    # sending / receiving
    # ------------------------------------------------------------------ #
    def send(
        self,
        destination: Any,
        kind: str,
        payload: Any,
        size: Optional[int] = None,
    ) -> Message:
        """Send *payload* to *destination* through the network."""
        return self.network.send(self.address, destination, kind, payload, size)

    def enqueue(self, destination: Any, kind: str, payload: Any) -> None:
        """Queue *payload* for batched delivery at the end of this turn.

        Outside a turn the payload is sent immediately (so callers never
        need to know whether they run inside a delivery context).
        """
        if self._turn_depth == 0:
            self.send(destination, kind, payload)
            return
        self._outbox.setdefault((destination, kind), []).append(payload)

    def begin_turn(self) -> None:
        """Enter a batching turn (re-entrant)."""
        self._turn_depth += 1

    def end_turn(self) -> None:
        """Leave a batching turn; the outermost exit flushes the outbox."""
        self._turn_depth -= 1
        if self._turn_depth == 0 and self._outbox:
            self._flush_outbox()

    def _flush_outbox(self) -> None:
        # Services may enqueue more while a flush is delivering nothing —
        # flushed sends only *schedule* deliveries — but take a snapshot
        # anyway so the loop is immune to re-entrant enqueues.
        outbox, self._outbox = self._outbox, {}
        for (destination, kind), payloads in outbox.items():
            if len(payloads) == 1:
                self.send(destination, kind, payloads[0])
            else:
                self.network.send_batch(self.address, destination, kind, payloads)
                self.batches_sent += 1
                self.messages_batched += len(payloads)

    def deliver(self, message: Message) -> None:
        """Called by the network when a message arrives at this host.

        With a fault injector installed, arrival detours through its
        receive hook — duplicate suppression, FIFO-restore buffering,
        journaling and ack generation — which calls back into
        :meth:`dispatch_delivery` for each message actually handed to the
        application.  Fault-free runs dispatch directly.
        """
        injector = self.network.fault_injector
        if injector is not None:
            injector.deliver(self, message)
            return
        self.dispatch_delivery(message)

    def dispatch_delivery(self, message: Message) -> None:
        """Count the arrival and dispatch the registered handler."""
        if not self.up:
            return
        self.messages_received += 1
        self.bytes_received += message.size
        handler = self._handlers.get(message.kind)
        if handler is None:
            raise NetworkError(
                f"host {self.address!r} has no handler for message kind "
                f"{message.kind!r}"
            )
        self.begin_turn()
        try:
            if message.batch:
                for item in message.payload:
                    # Per-item views carry size 0: the envelope's bytes were
                    # billed once on send and counted once above — claiming
                    # the full batch size on every item would overstate it.
                    handler(
                        Message(
                            source=message.source,
                            destination=message.destination,
                            kind=message.kind,
                            payload=item,
                            size=0,
                            sent_at=message.sent_at,
                            delivered_at=message.delivered_at,
                        )
                    )
            else:
                handler(message)
        finally:
            self.end_turn()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.address!r})"
