"""Messages and wire-size accounting.

The ExSPAN evaluation is framed almost entirely in terms of bytes on the
wire: per-node communication cost to fixpoint, bandwidth over time, and the
relative overhead of reference- versus value-based provenance.  This module
defines the :class:`Message` envelope exchanged between simulated hosts and
a deterministic :func:`payload_size` estimator used to charge bytes to each
message.

Size model
----------
* strings: one byte per character (SHA-1 identifiers are carried as 40-char
  hex digests, i.e. 40 bytes — the paper's raw digests are 20 bytes; the
  factor of two applies uniformly to every provenance mode so relative
  comparisons are unaffected);
* integers: 4 bytes; floats: 8 bytes; booleans / None: 1 byte;
* lists and tuples: 2 bytes of length framing plus the members;
* dictionaries: framing plus keys and values;
* every message additionally pays :data:`HEADER_OVERHEAD` bytes, standing in
  for the UDP/IP headers of the prototype deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

__all__ = [
    "Message",
    "payload_size",
    "batch_size",
    "HEADER_OVERHEAD",
    "TRACE_CONTEXT_KEY",
]

#: Fixed per-message overhead in bytes (UDP + IPv4 headers).
HEADER_OVERHEAD = 28

#: Reserved payload-dict key carrying observability trace context
#: (``[trace_id, parent_span_id]``; see :mod:`repro.obs.tracer`).  It is
#: *exempt* from wire-size accounting: tracing rides along for free so
#: every byte counter is identical with tracing on or off — the real
#: system would ship span context in headers outside the measured payload.
TRACE_CONTEXT_KEY = "_tc"


def payload_size(value: Any) -> int:
    """Return the estimated serialized size of *value* in bytes."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 4
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 2 + sum(payload_size(item) for item in value)
    if isinstance(value, dict):
        return 2 + sum(
            payload_size(key) + payload_size(item)
            for key, item in value.items()
            if key != TRACE_CONTEXT_KEY
        )
    if hasattr(value, "wire_size"):
        return int(value.wire_size())
    # Fallback: size of the repr — deterministic and monotone in content.
    return len(repr(value))


def batch_size(kind: str, payloads: Sequence[Any]) -> int:
    """Billed size of one batched message carrying several payloads.

    A batch pays the per-message header and kind once plus two bytes of
    length framing — versus ``len(payloads)`` headers for individual sends,
    which is where per-destination batching saves bytes on the wire.
    """
    return (
        HEADER_OVERHEAD
        + len(kind)
        + 2
        + sum(payload_size(payload) for payload in payloads)
    )


@dataclass
class Message:
    """A message in flight between two hosts.

    ``kind`` selects the handler on the receiving host (``"delta"`` for
    NDlog tuples, ``"prov"`` for provenance-query traffic, ...).  ``size``
    is the total billed size including header overhead; it is computed by the
    network layer if not supplied.

    A *batch* message carries several logical payloads for the same
    destination in one envelope (``payload`` is then a sequence of the
    individual payloads); the receiving host unpacks it and dispatches the
    handler once per item, so handlers never see the envelope.
    """

    source: Any
    destination: Any
    kind: str
    payload: Any
    size: int = 0
    sent_at: float = 0.0
    delivered_at: float = 0.0
    batch: bool = False
    #: Transport sequence number stamped by the fault injector's reliable
    #: (ARQ) layer for duplicate suppression and per-edge FIFO restore.
    #: ``None`` in fault-free runs, so the wire format is unchanged there;
    #: like trace context, it is exempt from wire-size accounting (a real
    #: deployment ships it in the UDP payload header already billed by
    #: :data:`HEADER_OVERHEAD`).
    tseq: Any = None

    def compute_size(self) -> int:
        """Compute (and cache) this message's billed size in bytes."""
        if self.size <= 0:
            if self.batch:
                self.size = batch_size(self.kind, self.payload)
            else:
                self.size = HEADER_OVERHEAD + len(self.kind) + payload_size(self.payload)
        return self.size
