"""Provenance polynomials (provenance semirings).

Section 5.2.1 of the paper encodes provenance as algebraic expressions over
two binary operations: ``+`` (union of alternative derivations) and ``·``
(join of the inputs of one rule execution), with base tuples as literals —
the *provenance semiring* of Green et al.  ``r1(A + r2(B · C))`` reads
"rule r2 joins B and C, and the result is unioned with A by rule r1".

This module provides an immutable expression tree with:

* construction helpers (:func:`var`, :func:`sum_of`, :func:`product_of`);
* structural queries (variables, depth, counting derivations);
* semiring evaluations parameterized by an interpretation (used to check
  the equivalence of the #DERIVATION / derivability query customizations);
* conversion to a canonical DNF (set of frozensets of literals) with
  boolean *absorption* applied — the "condensed provenance" of Section 6.3,
  also the bridge to the BDD representation in :mod:`repro.core.bdd`;
* a deterministic string rendering matching the paper's notation;
* a wire-size estimate used by the bandwidth accounting of the POLYNOMIAL
  query experiments (Figures 11, 13, 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "ProvenanceExpression",
    "Literal",
    "Sum",
    "Product",
    "EMPTY",
    "var",
    "sum_of",
    "product_of",
    "absorb",
    "count_derivations",
    "node_set",
    "is_derivable",
]


class ProvenanceExpression:
    """Base class for provenance polynomial expressions."""

    __slots__ = ()

    # -- structural queries -------------------------------------------- #
    def literals(self) -> Iterator[str]:
        """Yield the labels of all literals (base tuples) in the expression."""
        raise NotImplementedError

    def depth(self) -> int:
        """Height of the expression tree (a literal has depth 1)."""
        raise NotImplementedError

    def children(self) -> Tuple["ProvenanceExpression", ...]:
        return ()

    # -- semiring evaluation -------------------------------------------- #
    def evaluate(
        self,
        literal_value: Callable[[str], Any],
        add: Callable[[Any, Any], Any],
        multiply: Callable[[Any, Any], Any],
        zero: Any,
        one: Any,
    ) -> Any:
        """Evaluate the polynomial in an arbitrary commutative semiring."""
        raise NotImplementedError

    # -- canonical forms ------------------------------------------------ #
    def to_dnf(self) -> FrozenSet[FrozenSet[str]]:
        """Return the monotone DNF (set of products) with absorption applied."""
        raise NotImplementedError

    # -- sizes ----------------------------------------------------------- #
    def wire_size(self) -> int:
        """Estimated serialized size in bytes for bandwidth accounting."""
        raise NotImplementedError

    def __add__(self, other: "ProvenanceExpression") -> "ProvenanceExpression":
        return sum_of([self, other])

    def __mul__(self, other: "ProvenanceExpression") -> "ProvenanceExpression":
        return product_of([self, other])


@dataclass(frozen=True)
class Literal(ProvenanceExpression):
    """A base tuple (leaf) in the polynomial, identified by *label*.

    The label is whatever granularity the query runs at: the tuple's VID or
    printable form for tuple-level provenance, the node identifier for
    node-level provenance, or a trust-domain identifier.
    """

    label: str

    def literals(self) -> Iterator[str]:
        yield self.label

    def depth(self) -> int:
        return 1

    def evaluate(self, literal_value, add, multiply, zero, one):
        return literal_value(self.label)

    def to_dnf(self) -> FrozenSet[FrozenSet[str]]:
        return frozenset({frozenset({self.label})})

    def wire_size(self) -> int:
        return len(self.label)

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class Sum(ProvenanceExpression):
    """Union of alternative derivations, optionally annotated with a location."""

    terms: Tuple[ProvenanceExpression, ...]
    location: Optional[str] = None

    def literals(self) -> Iterator[str]:
        for term in self.terms:
            yield from term.literals()

    def depth(self) -> int:
        return 1 + max((term.depth() for term in self.terms), default=0)

    def children(self) -> Tuple[ProvenanceExpression, ...]:
        return self.terms

    def evaluate(self, literal_value, add, multiply, zero, one):
        result = zero
        for term in self.terms:
            result = add(result, term.evaluate(literal_value, add, multiply, zero, one))
        return result

    def to_dnf(self) -> FrozenSet[FrozenSet[str]]:
        products: Set[FrozenSet[str]] = set()
        for term in self.terms:
            products.update(term.to_dnf())
        return _absorb_products(products)

    def wire_size(self) -> int:
        overhead = 2 + (len(self.location) if self.location else 0)
        return overhead + sum(term.wire_size() for term in self.terms)

    def __str__(self) -> str:
        inner = " + ".join(str(term) for term in self.terms)
        suffix = f"@{self.location}" if self.location else ""
        return f"({inner}){suffix}"


@dataclass(frozen=True)
class Product(ProvenanceExpression):
    """Join of the inputs of a rule execution, annotated with rule and location."""

    factors: Tuple[ProvenanceExpression, ...]
    rule: Optional[str] = None
    location: Optional[str] = None

    def literals(self) -> Iterator[str]:
        for factor in self.factors:
            yield from factor.literals()

    def depth(self) -> int:
        return 1 + max((factor.depth() for factor in self.factors), default=0)

    def children(self) -> Tuple[ProvenanceExpression, ...]:
        return self.factors

    def evaluate(self, literal_value, add, multiply, zero, one):
        result = one
        for factor in self.factors:
            result = multiply(
                result, factor.evaluate(literal_value, add, multiply, zero, one)
            )
        return result

    def to_dnf(self) -> FrozenSet[FrozenSet[str]]:
        # distribute the product over the DNFs of the factors
        products: Set[FrozenSet[str]] = {frozenset()}
        for factor in self.factors:
            factor_dnf = factor.to_dnf()
            products = {
                existing | addition for existing in products for addition in factor_dnf
            }
        return _absorb_products(products)

    def wire_size(self) -> int:
        overhead = 2 + (len(self.rule) if self.rule else 0)
        overhead += len(self.location) if self.location else 0
        return overhead + sum(factor.wire_size() for factor in self.factors)

    def __str__(self) -> str:
        inner = " * ".join(str(factor) for factor in self.factors)
        prefix = f"<{self.rule}@{self.location}>" if self.rule else ""
        return f"{prefix}({inner})"


@dataclass(frozen=True)
class _Empty(ProvenanceExpression):
    """The additive identity (no derivation)."""

    def literals(self) -> Iterator[str]:
        return iter(())

    def depth(self) -> int:
        return 0

    def evaluate(self, literal_value, add, multiply, zero, one):
        return zero

    def to_dnf(self) -> FrozenSet[FrozenSet[str]]:
        return frozenset()

    def wire_size(self) -> int:
        return 1

    def __str__(self) -> str:
        return "0"


#: The empty (underivable) provenance expression.
EMPTY = _Empty()


# ---------------------------------------------------------------------- #
# constructors
# ---------------------------------------------------------------------- #
def var(label: str) -> Literal:
    """Create a literal for a base tuple (or node / domain) identifier."""
    return Literal(str(label))


def sum_of(
    terms: Sequence[ProvenanceExpression], location: Optional[str] = None
) -> ProvenanceExpression:
    """Union of alternative derivations; flattens nested sums and drops EMPTY."""
    flattened: List[ProvenanceExpression] = []
    for term in terms:
        if isinstance(term, _Empty):
            continue
        if isinstance(term, Sum) and term.location is None:
            flattened.extend(term.terms)
        else:
            flattened.append(term)
    if not flattened:
        return EMPTY
    if len(flattened) == 1 and location is None:
        return flattened[0]
    return Sum(tuple(flattened), location=location)


def product_of(
    factors: Sequence[ProvenanceExpression],
    rule: Optional[str] = None,
    location: Optional[str] = None,
) -> ProvenanceExpression:
    """Join of rule inputs; flattens unlabelled nested products.

    A product containing :data:`EMPTY` is itself EMPTY (joining with an
    underivable input yields nothing).
    """
    flattened: List[ProvenanceExpression] = []
    for factor in factors:
        if isinstance(factor, _Empty):
            return EMPTY
        if isinstance(factor, Product) and factor.rule is None:
            flattened.extend(factor.factors)
        else:
            flattened.append(factor)
    if not flattened:
        return EMPTY
    if len(flattened) == 1 and rule is None:
        return flattened[0]
    return Product(tuple(flattened), rule=rule, location=location)


# ---------------------------------------------------------------------- #
# absorption and evaluations
# ---------------------------------------------------------------------- #
def _absorb_products(products: Set[FrozenSet[str]]) -> FrozenSet[FrozenSet[str]]:
    """Remove products that are supersets of another product (absorption)."""
    minimal: List[FrozenSet[str]] = []
    for product in sorted(products, key=len):
        if any(keeper <= product for keeper in minimal):
            continue
        minimal.append(product)
    return frozenset(minimal)


def absorb(expression: ProvenanceExpression) -> FrozenSet[FrozenSet[str]]:
    """Apply boolean absorption; e.g. ``a·(a + b)`` reduces to ``{{a}}``."""
    return expression.to_dnf()


def count_derivations(expression: ProvenanceExpression) -> int:
    """Number of distinct derivations: sum over ``+``, product over ``·``."""
    return expression.evaluate(
        literal_value=lambda label: 1,
        add=lambda a, b: a + b,
        multiply=lambda a, b: a * b,
        zero=0,
        one=1,
    )


def node_set(expression: ProvenanceExpression) -> FrozenSet[str]:
    """Set of literals involved in any derivation (NodeSet customization)."""
    return frozenset(expression.literals())


def is_derivable(
    expression: ProvenanceExpression, trusted: Optional[Iterable[str]] = None
) -> bool:
    """Derivability test: can the tuple be derived using only *trusted* literals?

    With ``trusted=None`` every literal counts as available, so the result is
    simply "does at least one derivation exist".
    """
    allowed = None if trusted is None else set(trusted)
    return expression.evaluate(
        literal_value=lambda label: allowed is None or label in allowed,
        add=lambda a, b: a or b,
        multiply=lambda a, b: a and b,
        zero=False,
        one=True,
    )
