"""Provenance granularity (Section 3: tuple, node, trust-domain level).

ExSPAN can encode provenance at three levels of detail:

* **tuple-level** — leaves of the provenance expression are the base tuples
  themselves (maximum detail, highest cost);
* **node-level** — leaves are the node identifiers hosting the base tuples,
  e.g. the node-level provenance of ``bestPathCost(@a,c,5)`` is
  ``<a + a*b>``;
* **trust-domain level** — leaves are identifiers of the trust domain each
  node belongs to, enabling cross-domain access-control policies.

The query customizations take a :class:`GranularitySpec` and use
:meth:`GranularitySpec.leaf_label` to map a base tuple to the literal that
appears in the provenance expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Mapping, Optional

from ..datalog.ast import Fact

__all__ = ["Granularity", "GranularitySpec", "prefix_domain_map"]


class Granularity(Enum):
    """Detail level of the provenance maintained for derived tuples."""

    TUPLE = "tuple"
    NODE = "node"
    TRUST_DOMAIN = "trust-domain"


def prefix_domain_map(separator: str = "_") -> Callable[[Any], str]:
    """Return a node→domain function that strips everything after *separator*.

    The transit-stub generator names nodes ``s<domain>_<transit>_<stub>_<n>``,
    so the default map assigns every node of a domain the same identifier
    ``s<domain>`` / ``t<domain>`` — a reasonable stand-in for administrative
    domains in the absence of explicit configuration.
    """

    def mapper(node: Any) -> str:
        text = str(node)
        return text.split(separator, 1)[0]

    return mapper


@dataclass
class GranularitySpec:
    """Granularity selection plus the node→trust-domain mapping."""

    level: Granularity = Granularity.TUPLE
    domain_of: Callable[[Any], str] = field(default_factory=prefix_domain_map)

    def leaf_label(self, fact: Optional[Fact], vid: str, node: Any) -> str:
        """Label of a base-tuple leaf in a provenance expression.

        ``fact`` may be ``None`` when the queried node cannot resolve the VID
        back to a tuple (it then falls back to the VID itself for tuple-level
        provenance).
        """
        if self.level is Granularity.NODE:
            return str(node)
        if self.level is Granularity.TRUST_DOMAIN:
            return str(self.domain_of(node))
        if fact is not None:
            return _render_fact(fact)
        return vid

    def describe(self) -> str:
        return self.level.value


def _render_fact(fact: Fact) -> str:
    values = ",".join(str(value) for value in fact.values)
    return f"{fact.name}({values})"
