"""The ExSPAN facade: a provenance-aware declarative network.

:class:`ExspanNetwork` wires every piece of the reproduction together:

* a :class:`~repro.net.topology.Topology` and the event-driven
  :class:`~repro.net.network.Network` built on it;
* one :class:`~repro.datalog.engine.NDlogEngine` per node running the
  protocol program prepared for the chosen
  :class:`~repro.core.modes.ProvenanceMode` (none / reference / value /
  centralized);
* one :class:`~repro.core.query.ProvenanceQueryService` per node for
  distributed provenance queries with pluggable
  :class:`~repro.core.query.QuerySpec` customizations.

Typical usage (see ``examples/quickstart.py``)::

    topology = ring_topology(20, seed=1)
    net = ExspanNetwork(topology, mincost_program(),
                        config=ExspanConfig(mode=ProvenanceMode.REFERENCE))
    net.seed_links()
    net.run_to_fixpoint()
    answer = net.execute(QueryRequest(fact=Fact("bestPathCost", ("n0", "n5", 3)),
                                      spec=SpecDescriptor(kind="polynomial")))
    print(answer.result)

Construction knobs live in one validated, frozen
:class:`~repro.core.config.ExspanConfig`; the historical keyword sprawl
(``mode=``, ``planner=``, ``query_cache_capacity=``, ...) still works
through a deprecation shim that assembles the equivalent config.
Provenance queries go through the one typed request/response entry point
(:meth:`ExspanNetwork.execute` / :meth:`ExspanNetwork.submit`, both taking
a :class:`~repro.core.requests.QueryRequest`); the older
``register_query_spec`` / ``issue_query`` / ``query_provenance`` trio is
deprecated and forwards to the same machinery.
"""

from __future__ import annotations

import copy
import random
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..datalog.ast import Fact, Program
from ..datalog.engine import Delta, NDlogEngine, RuleFiring
from ..datalog.functions import default_registry
from ..net.host import Host
from ..net.message import HEADER_OVERHEAD, Message, payload_size
from ..net.network import Network
from ..net.simulator import Simulator
from ..net.topology import LinkSpec, Topology
from ..obs import runtime as obs_runtime
from .config import ExspanConfig
from .errors import ProvenanceError, QueryTimeoutError
from .modes import PreparedProgram, ProvenanceMode, prepare_program
from .provenance_graph import ProvenanceGraph, build_global_graph
from .query import ProvenanceQueryService, QueryOutcome, QuerySpec
from .requests import QueryRequest, QueryResult, SpecDescriptor
from .storage import ProvenanceStore
from ..storage.backend import StorageBackend, default_storage, make_backend, parse_storage_spec
from .vid import fact_vid

__all__ = ["ExspanNode", "ExspanNetwork", "DELTA_MESSAGE_KIND"]

DELTA_MESSAGE_KIND = "delta"


@dataclass
class ExspanNode:
    """Everything ExSPAN runs at one network node."""

    address: Any
    host: Host
    engine: NDlogEngine
    store: ProvenanceStore
    query_service: ProvenanceQueryService


class ExspanNetwork:
    """A provenance-aware declarative network over a simulated topology."""

    def __init__(
        self,
        topology: Topology,
        program: Program,
        config: Optional[ExspanConfig] = None,
        *,
        tracer: Any = None,
        **legacy_kwargs: Any,
    ):
        """Build a network from *topology*, *program* and one *config*.

        ``config`` carries every construction knob (see
        :class:`~repro.core.config.ExspanConfig`); omitting it uses the
        documented defaults.  The pre-config keyword surface (``mode=``,
        ``planner=``, ``query_cache_capacity=``, ``local_addresses=``,
        ...) still works through a deprecation shim that assembles the
        equivalent config — construction through either path is
        bit-identical.

        ``tracer`` stays a direct keyword because it is runtime wiring,
        not configuration: it installs an observability tracer across the
        simulator, every engine and every query service.  When ``None``
        and a process-wide trace session is active (see
        :func:`repro.obs.runtime.enable_tracing`) one is registered
        automatically.  Tracing never perturbs results: fixpoints, VIDs,
        counters and traffic bytes are identical with it on or off.
        """
        if isinstance(config, ProvenanceMode):
            # Positional legacy form: ExspanNetwork(topology, program, mode).
            legacy_kwargs["mode"] = config
            config = None
        if legacy_kwargs:
            if config is not None:
                raise TypeError(
                    "pass either config=ExspanConfig(...) or legacy keyword "
                    f"arguments, not both (got {sorted(legacy_kwargs)})"
                )
            unknown = sorted(set(legacy_kwargs) - set(ExspanConfig.field_names()))
            if unknown:
                raise TypeError(f"unknown ExspanNetwork arguments: {unknown}")
            warnings.warn(
                "constructing ExspanNetwork from individual keyword arguments "
                f"({sorted(legacy_kwargs)}) is deprecated; pass "
                "config=ExspanConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = ExspanConfig(**legacy_kwargs)
        elif config is None:
            config = ExspanConfig()
        self.config = config
        self.topology = topology
        self.mode = config.mode
        self.link_cost = config.link_cost
        self.planner = config.planner
        self.pipeline = config.pipeline
        self.query_cache_capacity = config.query_cache_capacity
        self.query_coalescing = config.query_coalescing
        self.query_batching = config.query_batching
        self._rng = random.Random(config.seed)
        collector = config.collector
        if config.mode is ProvenanceMode.CENTRALIZED and collector is None:
            collector = topology.nodes[0]
        self.collector = collector
        self.prepared: PreparedProgram = prepare_program(
            program, config.mode, collector=collector, value_policy=config.value_policy
        )
        self.network = Network(
            topology,
            local_nodes=config.local_addresses,
            shard_map=config.shard_map,
            compact_min_cancelled=config.compact_min_cancelled,
            compact_ratio=config.compact_ratio,
            traffic_record_cap=config.traffic_record_cap,
        )
        self.simulator: Simulator = self.network.simulator
        if tracer is None:
            session = obs_runtime.active_session()
            if session is not None:
                tracer = session.new_tracer()
        self.tracer = tracer
        if tracer is not None:
            tracer.set_clock(lambda: self.simulator.now)
            self.simulator.tracer = tracer
        #: Specs built from :class:`SpecDescriptor`, keyed by canonical
        #: name, so repeated requests reuse one live spec (and one BDD
        #: manager / cache namespace) instead of rebuilding per query.
        self._descriptor_specs: Dict[str, QuerySpec] = {}
        self.storage: StorageBackend = make_backend(
            self._resolve_storage_spec(config)
        )
        self.nodes: Dict[Any, ExspanNode] = {}
        members = (
            topology.nodes
            if config.local_addresses is None
            else list(config.local_addresses)
        )
        for address in members:
            self.nodes[address] = self._build_node(address)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_storage_spec(config: ExspanConfig) -> str:
        """The storage spec this instance uses (config first, else process default).

        A sharded worker with an explicit sqlite path gets a per-shard
        suffix (``<path>.shard<N>``) so forked processes never contend on
        one WAL; the whole-network restore helpers reassemble per shard.
        """
        spec = config.storage if config.storage is not None else default_storage()
        kind, path = parse_storage_spec(spec)
        if (
            kind == "sqlite"
            and path is not None
            and config.local_addresses
            and config.shard_map
        ):
            shard = config.shard_map[config.local_addresses[0]]
            spec = f"sqlite:{path}.shard{shard}"
        return spec

    def _build_node(self, address: Any) -> ExspanNode:
        host = self.network.host(address)
        policy = None
        if self.prepared.annotation_policy_factory is not None:
            policy = self.prepared.annotation_policy_factory(address)
        engine = NDlogEngine(
            address,
            functions=default_registry(),
            annotation_policy=policy,
            planner=self.planner,
            pipeline=self.pipeline,
        )
        engine.set_send(self._make_sender(host, engine))
        engine.load_program(self.prepared.program)
        if self.tracer is not None:
            engine.set_tracer(self.tracer)
        store = ProvenanceStore(engine)
        self.storage.attach_node(address, engine, store)
        query_service = ProvenanceQueryService(
            host,
            store,
            clock=lambda: self.simulator.now,
            cache_capacity=self.query_cache_capacity,
            coalesce=self.query_coalescing,
            batch=self.query_batching,
            tracer=self.tracer,
        )
        engine.add_update_listener(
            lambda action, fact, service=query_service: service.on_tuple_update(fact)
        )
        host.register_handler(
            DELTA_MESSAGE_KIND,
            lambda message, eng=engine: self._deliver_delta(eng, message),
        )
        return ExspanNode(
            address=address,
            host=host,
            engine=engine,
            store=store,
            query_service=query_service,
        )

    def _make_sender(self, host: Host, engine: NDlogEngine) -> Callable[[Any, Delta], None]:
        def send(destination: Any, delta: Delta) -> None:
            size = self._delta_size(engine, delta)
            host.send(destination, DELTA_MESSAGE_KIND, delta, size=size)

        return send

    @staticmethod
    def _delta_size(engine: NDlogEngine, delta: Delta) -> int:
        """Bytes charged for shipping *delta* (tuple content + annotation)."""
        size = HEADER_OVERHEAD + 1  # header plus the insert/delete flag
        size += len(delta.fact.name)
        size += payload_size(list(delta.fact.values))
        if delta.annotation is not None and engine.annotation_policy is not None:
            size += engine.annotation_policy.size(delta.annotation)
        return size

    def _deliver_delta(self, engine: NDlogEngine, message: Message) -> None:
        engine.receive(message.payload)
        engine.run()

    # ------------------------------------------------------------------ #
    # node / table access
    # ------------------------------------------------------------------ #
    def node(self, address: Any) -> ExspanNode:
        try:
            return self.nodes[address]
        except KeyError:
            raise ProvenanceError(f"unknown node {address!r}") from None

    def addresses(self) -> List[Any]:
        return list(self.nodes)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def engine(self, address: Any) -> NDlogEngine:
        return self.node(address).engine

    def tuples(self, table: str) -> List[Tuple[Any, Tuple[Any, ...]]]:
        """All rows of *table* across every node, as ``(node, row)`` pairs."""
        rows: List[Tuple[Any, Tuple[Any, ...]]] = []
        for address, node in self.nodes.items():
            for row in node.engine.catalog.table(table).rows():
                rows.append((address, row))
        return rows

    def random_tuple(self, table: str) -> Optional[Tuple[Any, Fact]]:
        """A uniformly random row of *table*, as ``(node, Fact)``."""
        rows = self.tuples(table)
        if not rows:
            return None
        address, row = self._rng.choice(rows)
        return address, Fact(table, row)

    # ------------------------------------------------------------------ #
    # base-fact management
    # ------------------------------------------------------------------ #
    def insert_fact(self, fact: Fact, process: bool = True) -> None:
        """Insert a base fact at the node named by its location specifier."""
        engine = self.node(fact.location).engine
        injector = self.network.fault_injector
        if injector is not None:
            injector.note_local_op(fact.location, "insert", fact)
        engine.insert(fact)
        if process:
            engine.run()

    def delete_fact(self, fact: Fact, process: bool = True) -> None:
        engine = self.node(fact.location).engine
        injector = self.network.fault_injector
        if injector is not None:
            injector.note_local_op(fact.location, "delete", fact)
        engine.delete(fact)
        if process:
            engine.run()

    def seed_links(self, cost: Optional[int] = None) -> int:
        """Insert one ``link`` fact per direction of every topology link.

        Returns the number of facts inserted.  This mirrors the evaluation
        setup: "each node is initialized with a link tuple for each of its
        neighbors".
        """
        inserted = 0
        for source, destination, link_cost in self.topology.link_facts():
            if source not in self.nodes:
                # Sharded instance: this fact belongs to another shard.
                continue
            value = cost if cost is not None else link_cost
            self.insert_fact(Fact("link", (source, destination, value)), process=False)
            inserted += 1
        for node in self.nodes.values():
            node.engine.run()
        return inserted

    def add_link(self, a: Any, b: Any, cost: Optional[int] = None) -> None:
        """Add a symmetric link at runtime (churn): topology + link tuples."""
        value = cost if cost is not None else self.link_cost
        if not self.topology.has_link(a, b):
            self.topology.add_link(a, b, LinkSpec(cost=value))
        if a in self.nodes:
            self.insert_fact(Fact("link", (a, b, value)))
        if b in self.nodes:
            self.insert_fact(Fact("link", (b, a, value)))

    def remove_link(self, a: Any, b: Any) -> None:
        """Remove a symmetric link at runtime (churn)."""
        if self.topology.has_link(a, b):
            spec = self.topology.link(a, b)
            cost = spec.cost
            self.topology.remove_link(a, b)
        else:
            cost = self.link_cost
        if a in self.nodes:
            self.delete_fact(Fact("link", (a, b, cost)))
        if b in self.nodes:
            self.delete_fact(Fact("link", (b, a, cost)))

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_to_fixpoint(self, max_events: Optional[int] = None) -> float:
        """Run the simulation until quiescence; returns the fixpoint time."""
        tracer = self.tracer
        if tracer is None:
            self.network.run_to_fixpoint(max_events=max_events)
        else:
            with tracer.span("net.fixpoint", cat="net") as span:
                self.network.run_to_fixpoint(max_events=max_events)
                span.add(events=self.simulator.events_executed)
        return self.simulator.now

    def run_for(self, duration: float) -> None:
        self.network.run_for(duration)

    @property
    def now(self) -> float:
        return self.simulator.now

    # ------------------------------------------------------------------ #
    # fault injection
    # ------------------------------------------------------------------ #
    @property
    def fault_injector(self):
        """The installed :class:`~repro.faults.injector.FaultInjector`,
        or ``None`` (the fault-free fast path)."""
        return self.network.fault_injector

    def install_faults(self, plan) -> Optional[Any]:
        """Install a fault plan; returns the injector (``None`` if empty).

        *plan* is a :class:`~repro.faults.plan.FaultPlan`, a spec string
        for :func:`~repro.faults.plan.parse_fault_spec`, or ``None``.
        An empty plan installs nothing at all — the run stays on the
        exact fault-free code path, which is what makes the empty-plan
        byte-identity guarantee hold by construction.  Install before
        driving the simulation; one plan per network.
        """
        from ..faults import FaultInjector, FaultPlan, parse_fault_spec

        if plan is None:
            return None
        if isinstance(plan, str):
            plan = parse_fault_spec(plan)
        if not isinstance(plan, FaultPlan):
            raise ProvenanceError(
                f"install_faults takes a FaultPlan or spec string, got {plan!r}"
            )
        if plan.is_empty():
            return None
        if self.network.fault_injector is not None:
            raise ProvenanceError("a fault plan is already installed")
        return FaultInjector(self, plan).install()

    # ------------------------------------------------------------------ #
    # provenance queries — the unified request/response API
    # ------------------------------------------------------------------ #
    def register_spec(self, spec: Union[QuerySpec, SpecDescriptor]) -> str:
        """Install a query customization on every node; returns its name.

        Accepts a live :class:`QuerySpec` or a declarative
        :class:`SpecDescriptor` (built once and memoized by canonical
        name, so repeated registration of an equal descriptor reuses the
        same live spec).
        """
        if isinstance(spec, SpecDescriptor):
            name = spec.canonical_name
            built = self._descriptor_specs.get(name)
            if built is None:
                built = spec.build()
                self._descriptor_specs[name] = built
            spec = built
        for node in self.nodes.values():
            node.query_service.register_spec(spec)
        return spec.name

    def spec_names(self) -> List[str]:
        """Names of every registered query spec (sorted)."""
        names: set = set()
        for node in self.nodes.values():
            names.update(node.query_service.spec_names())
        return sorted(names)

    def predicates(self) -> List[str]:
        """All table names known to any node's engine (sorted)."""
        names: set = set()
        for node in self.nodes.values():
            names.update(node.engine.catalog.names())
        return sorted(names)

    def submit(
        self,
        request: QueryRequest,
        on_complete: Callable[[QueryResult], None],
    ) -> str:
        """Asynchronously issue *request*; returns the engine query id.

        ``on_complete`` receives the typed :class:`QueryResult` once the
        distributed resolution finishes (drive the simulator to make that
        happen).  ``target`` defaults to the node named by the fact's
        location specifier (where the tuple and its ``prov`` entries
        live); ``issuer`` defaults to the target itself.
        """
        spec_name = self._ensure_spec(request.spec)
        fact = request.fact
        target_node = request.target if request.target is not None else fact.location
        issuer_node = request.issuer if request.issuer is not None else target_node
        service = self.node(issuer_node).query_service

        def finish(outcome: QueryOutcome) -> None:
            on_complete(QueryResult.from_outcome(outcome, request, spec_name))

        return service.query(
            fact_vid(fact), target_node, spec_name, finish,
            deadline=request.deadline,
        )

    def execute(
        self, request: QueryRequest, max_events: Optional[int] = None
    ) -> QueryResult:
        """Issue *request* and run the simulation until it completes.

        The single synchronous entry point shared by in-process callers,
        the experiment trials, the wire-protocol service and the shell.
        """
        results: List[QueryResult] = []
        tracer = self.tracer
        if tracer is None:
            self.submit(request, results.append)
            self.simulator.run_until_idle(max_events=max_events)
        else:
            with tracer.span(
                "api.execute", cat="api", spec=request.spec_name
            ) as span:
                self.submit(request, results.append)
                self.simulator.run_until_idle(max_events=max_events)
                span.add(completed=bool(results))
        if not results:
            raise QueryTimeoutError(
                f"provenance query for {request.fact} did not complete"
            )
        return results[0]

    def _ensure_spec(self, spec: Union[QuerySpec, SpecDescriptor, str]) -> str:
        if isinstance(spec, str):
            return spec
        return self.register_spec(spec)

    # ------------------------------------------------------------------ #
    # provenance queries — deprecated pre-request-API surface
    # ------------------------------------------------------------------ #
    def register_query_spec(self, spec: QuerySpec) -> None:
        """Deprecated: use :meth:`register_spec`."""
        warnings.warn(
            "ExspanNetwork.register_query_spec is deprecated; use "
            "register_spec (or pass the spec on a QueryRequest)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.register_spec(spec)

    def issue_query(
        self,
        fact: Fact,
        spec: Union[QuerySpec, str],
        issuer: Optional[Any] = None,
        target: Optional[Any] = None,
        on_complete: Optional[Callable[[QueryOutcome], None]] = None,
    ) -> str:
        """Deprecated: use :meth:`submit` with a :class:`QueryRequest`.

        The callback keeps receiving the raw :class:`QueryOutcome` for
        compatibility.
        """
        warnings.warn(
            "ExspanNetwork.issue_query is deprecated; use "
            "submit(QueryRequest(...), on_complete)",
            DeprecationWarning,
            stacklevel=2,
        )
        spec_name = self._ensure_spec(spec)
        target_node = target if target is not None else fact.location
        issuer_node = issuer if issuer is not None else target_node
        service = self.node(issuer_node).query_service
        callback = on_complete if on_complete is not None else (lambda outcome: None)
        return service.query(fact_vid(fact), target_node, spec_name, callback)

    def query_provenance(
        self,
        fact: Fact,
        spec: Union[QuerySpec, str],
        issuer: Optional[Any] = None,
        target: Optional[Any] = None,
        max_events: Optional[int] = None,
    ) -> QueryOutcome:
        """Deprecated: use :meth:`execute` with a :class:`QueryRequest`.

        Returns the raw :class:`QueryOutcome` for compatibility; the
        result value is identical to ``execute(...).result``.
        """
        warnings.warn(
            "ExspanNetwork.query_provenance is deprecated; use "
            "execute(QueryRequest(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        request = QueryRequest(fact=fact, spec=spec, issuer=issuer, target=target)
        spec_name = self._ensure_spec(request.spec)
        outcomes: List[QueryOutcome] = []
        service_issuer = (
            request.issuer
            if request.issuer is not None
            else (request.target if request.target is not None else fact.location)
        )
        target_node = request.target if request.target is not None else fact.location
        self.node(service_issuer).query_service.query(
            fact_vid(fact), target_node, spec_name, outcomes.append
        )
        self.simulator.run_until_idle(max_events=max_events)
        if not outcomes:
            raise QueryTimeoutError(
                f"provenance query for {fact} did not complete"
            )
        return outcomes[0]

    # ------------------------------------------------------------------ #
    # analysis / statistics
    # ------------------------------------------------------------------ #
    @property
    def stats(self):
        """The live :class:`~repro.net.stats.TrafficStats` collector.

        Internal consumers (trials, benchmarks) use this for ``reset()``
        and the record-shaped views; anything crossing a trust boundary
        should use :meth:`stats_snapshot` instead.
        """
        return self.network.stats

    def stats_snapshot(self) -> Dict[str, Any]:
        """Deep-copied, JSON-able traffic statistics.

        Unlike the live :attr:`stats` collector, mutating the returned
        dict can never corrupt the network's counters — this is what the
        query service serves to remote clients polling ``stats``.
        """
        return copy.deepcopy(self.network.stats.snapshot())

    def maintenance_bytes(self) -> int:
        """Bytes spent maintaining the protocol (and its provenance)."""
        return self.network.stats.total_bytes(kinds=[DELTA_MESSAGE_KIND])

    def query_bytes(self) -> int:
        """Bytes spent answering provenance queries."""
        return self.network.stats.total_bytes(kinds=["prov"])

    def average_maintenance_bytes_per_node(self) -> float:
        return self.network.stats.average_bytes_per_node(
            self.node_count, kinds=[DELTA_MESSAGE_KIND]
        )

    def provenance_graph(self) -> ProvenanceGraph:
        """Materialize the global provenance graph (offline analysis helper)."""
        return build_global_graph(node.store for node in self.nodes.values())

    def provenance_row_counts(self) -> Dict[str, int]:
        """Total prov / ruleExec rows across the network."""
        prov_rows = sum(node.store.prov_row_count() for node in self.nodes.values())
        rule_rows = sum(node.store.rule_exec_row_count() for node in self.nodes.values())
        return {"prov": prov_rows, "ruleExec": rule_rows}

    # ------------------------------------------------------------------ #
    # persistence & SQL queries (the pluggable storage backend)
    # ------------------------------------------------------------------ #
    def storage_flush(self) -> int:
        """Drain the backend's write-behind journal; returns ops flushed."""
        tracer = self.tracer
        if tracer is None:
            return self.storage.flush()
        with tracer.span("storage.flush", cat="storage") as span:
            flushed = self.storage.flush()
            span.add(ops=flushed)
        return flushed

    def checkpoint(self, path: str) -> Dict[str, Any]:
        """Quiesce the network and write a snapshot-consistent checkpoint.

        Runs the simulator to fixpoint first (scheduled events hold
        closures a checkpoint cannot carry), flushes the storage backend,
        then writes one canonical-JSON file atomically.  Restore with
        :meth:`ExspanNetwork.restore`.  Returns a summary dict
        (``path``/``nodes``/``bytes``/``now``).
        """
        from ..storage.checkpoint import save_checkpoint

        self.run_to_fixpoint()
        tracer = self.tracer
        if tracer is None:
            summary = save_checkpoint(self, path)
        else:
            with tracer.span("storage.checkpoint", cat="storage") as span:
                summary = save_checkpoint(self, path)
                span.add(nodes=summary["nodes"], bytes=summary["bytes"])
        if self.storage.persistent:
            self.storage.flush()
        self.storage.counters["checkpoints"] += 1
        return summary

    @classmethod
    def restore(
        cls,
        path: str,
        topology: Topology,
        program: Program,
        *,
        config: Optional[ExspanConfig] = None,
        storage: Optional[str] = None,
        tracer: Any = None,
    ) -> "ExspanNetwork":
        """Rebuild a network from a checkpoint written by :meth:`checkpoint`.

        *topology* and *program* must match the checkpointed network
        (checkpoints deliberately carry no user callables).  ``storage``
        overrides just the storage spec — the backend is an
        execution-environment knob, never part of the snapshot state.
        """
        from ..storage.checkpoint import restore_network

        return restore_network(
            path, topology, program, config=config, storage=storage, tracer=tracer
        )

    def sql_provenance(
        self,
        kind: str,
        fact: Optional[Fact] = None,
        *,
        vid: Optional[str] = None,
    ) -> List[Any]:
        """Answer a provenance query through the backend's SQL path.

        The second, independent oracle: the sqlite backend compiles
        reachability/subgraph queries over the pre/post-order interval
        encoding of the provenance DAG to indexed range scans + recursive
        CTEs (see ``docs/STORAGE.md``).  *kind* is one of
        ``repro.storage.SQL_QUERY_KINDS``; address the root tuple by
        *fact* or *vid*.  Requires ``storage='sqlite'``.
        """
        if (fact is None) == (vid is None):
            raise ProvenanceError("sql_provenance takes exactly one of fact= or vid=")
        root = vid if vid is not None else fact_vid(fact)
        tracer = self.tracer
        if tracer is None:
            return self.storage.sql_query(kind, root)
        with tracer.span("storage.sql", cat="storage") as span:
            rows = self.storage.sql_query(kind, root)
            span.add(kind=kind, rows=len(rows) if isinstance(rows, list) else 1)
        return rows

    def storage_stats(self) -> Dict[str, Any]:
        """The storage backend's introspection snapshot (kind, rows, counters)."""
        return self.storage.stats()

    def close_storage(self) -> None:
        """Release the storage backend's resources (connections, temp files)."""
        self.storage.close()

    def planner_stats(self) -> Dict[str, int]:
        """Aggregated planner / evaluation counters across every engine.

        Includes plans compiled and recompiled, secondary indexes
        registered, index vs full-scan lookups, and tuples scanned — the
        numbers benchmark reports use to show scan-count reductions.
        """
        from ..net.stats import aggregate_engine_stats

        return aggregate_engine_stats(
            node.engine.stats for node in self.nodes.values()
        )

    def explain(self, rule_label: str, address: Optional[Any] = None) -> str:
        """Render the compiled plans for *rule_label* at one node."""
        target = address if address is not None else next(iter(self.nodes))
        return self.node(target).engine.explain(rule_label)

    def cache_stats(self) -> Dict[str, int]:
        """Aggregated query-cache statistics across all nodes."""
        totals: Dict[str, int] = {}
        for node in self.nodes.values():
            for key, value in node.query_service.cache.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def query_service_stats(self) -> Dict[str, int]:
        """Aggregated query-engine counters across every node.

        Includes queries started/completed, in-flight and root coalescing
        counts, stale-result drops, cache hit/miss/eviction counters and
        per-destination batching counters — the numbers the multi-querier
        scenarios report alongside raw prov-kind traffic.
        """
        from ..net.stats import aggregate_query_stats

        return aggregate_query_stats(
            node.query_service.query_stats() for node in self.nodes.values()
        )

    def query_messages(self) -> int:
        """Messages spent answering provenance queries."""
        return self.network.stats.total_messages(kinds=["prov"])

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One canonical metrics snapshot covering every counter family.

        Folds the engine/planner counters, the query-engine counters and
        the per-kind traffic totals into a
        :class:`~repro.obs.metrics.MetricsRegistry` snapshot — the unified
        view the observability layer exposes on top of the legacy
        ``planner_stats()`` / ``query_service_stats()`` dicts (which remain
        available unchanged).
        """
        from ..obs.metrics import MetricsRegistry

        from .vid import vid_cache_stats

        registry = MetricsRegistry()
        registry.absorb_counters(self.planner_stats(), prefix="engine.")
        registry.absorb_counters(self.query_service_stats(), prefix="query.")
        for kind, (messages, size) in sorted(self.stats.kind_totals().items()):
            registry.inc("net.messages", messages, kind=kind)
            registry.inc("net.bytes", size, kind=kind)
        # Memoization effectiveness of the two VID layers (process-global
        # caches: tuple-VID memo and the underlying f_sha1 digest memo).
        # Hits/misses are counters; live entry counts and bounds are gauges.
        for layer, stats in vid_cache_stats().items():
            registry.inc(f"cache.{layer}.hits", stats["hits"])
            registry.inc(f"cache.{layer}.misses", stats["misses"])
            registry.set_gauge(f"cache.{layer}.entries", stats["entries"])
            registry.set_gauge(f"cache.{layer}.limit", stats["limit"])
        # Storage-backend counters, only when a persistent backend is in
        # play: the memory default emits nothing here, keeping the default
        # metrics snapshot (and golden shell transcripts) byte-identical.
        if self.storage.persistent:
            storage_stats = self.storage.stats()
            for key in (
                "journal_appends",
                "journal_pending",
                "flushes",
                "flushed_ops",
                "sql_queries",
                "checkpoints",
                "restores",
            ):
                registry.inc(f"cache.storage.{key}", storage_stats.get(key, 0))
            registry.set_gauge("cache.storage.rows", storage_stats["rows"])
        # Fault/transport counters, only when an injector is installed:
        # fault-free runs (the default) emit nothing here, keeping the
        # default metrics snapshot and golden transcripts byte-identical.
        injector = self.network.fault_injector
        if injector is not None:
            registry.absorb_counters(injector.stats(), prefix="fault.")
        registry.set_gauge("sim.now", self.simulator.now)
        registry.set_gauge("sim.events_executed", self.simulator.events_executed)
        # Deep copy so a service client polling metrics can never reach the
        # registry's internals through shared sub-dicts.
        return copy.deepcopy(registry.snapshot())
