"""Consolidated, validated construction configuration for ExSPAN networks.

:class:`ExspanNetwork` grew one keyword argument per PR — planner and
pipeline selection, query-cache capacity, coalescing/batching ablation
flags, simulator heap-compaction tuning, bounded traffic statistics,
sharding placement — until every caller (and every layer forwarding the
kwargs, like the sharded engine's worker bootstrap) had to repeat the whole
sprawl.  :class:`ExspanConfig` freezes that surface into one validated
value object with documented defaults:

* every knob is validated eagerly at construction (bad values fail where
  the config is *written*, not deep inside network bootstrap);
* the config is immutable, so it can be shared between shards, embedded in
  a service description, or fingerprinted without defensive copies;
* :meth:`ExspanConfig.to_dict` / :meth:`ExspanConfig.from_dict` give the
  canonical JSON form the always-on query service uses to describe the
  network it hosts over the wire.

``ExspanNetwork(topology, program, mode=..., planner=...)`` still works
through a deprecation shim that assembles the equivalent config (and warns
once per call site); new code should pass ``config=ExspanConfig(...)``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from .errors import ProvenanceError
from .modes import ProvenanceMode

__all__ = ["ExspanConfig", "coerce_mode", "MODE_NAMES"]

#: Canonical short names for provenance modes (the JSON wire form).
MODE_NAMES: Dict[ProvenanceMode, str] = {
    ProvenanceMode.NONE: "none",
    ProvenanceMode.REFERENCE: "ref",
    ProvenanceMode.VALUE: "value",
    ProvenanceMode.CENTRALIZED: "centralized",
}

_MODES_BY_NAME: Dict[str, ProvenanceMode] = {
    **{name: mode for mode, name in MODE_NAMES.items()},
    # Long spellings accepted on input for readability.
    "reference": ProvenanceMode.REFERENCE,
}

_PLANNERS = (None, "greedy", "naive")
_PIPELINES = (None, "batched", "delta", "columnar")
_VALUE_POLICIES = ("bdd", "polynomial")


def coerce_mode(mode: Any) -> ProvenanceMode:
    """Accept a :class:`ProvenanceMode` or its short/long string name."""
    if isinstance(mode, ProvenanceMode):
        return mode
    if isinstance(mode, str):
        try:
            return _MODES_BY_NAME[mode.lower()]
        except KeyError:
            raise ProvenanceError(
                f"unknown provenance mode {mode!r}; expected one of "
                f"{sorted(set(_MODES_BY_NAME))}"
            ) from None
    raise ProvenanceError(f"unknown provenance mode {mode!r}")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProvenanceError(f"invalid ExspanConfig: {message}")


@dataclass(frozen=True)
class ExspanConfig:
    """Every construction-time knob of an :class:`~repro.core.api.ExspanNetwork`.

    Engine selection
        ``mode`` — provenance mode (``ProvenanceMode`` or ``"ref"`` /
        ``"value"`` / ``"none"`` / ``"centralized"``);
        ``value_policy`` — annotation representation for value mode
        (``"bdd"`` or ``"polynomial"``);
        ``collector`` — collector node for centralized mode (defaults to
        the topology's first node);
        ``planner`` — rule planner (``None`` = process default,
        ``"greedy"`` or ``"naive"``);
        ``pipeline`` — delta pipeline (``None`` = process default,
        ``"batched"``, ``"delta"``, or the vectorized ``"columnar"``;
        all three are bit-identical).

    Workload
        ``link_cost`` — default cost for runtime-added links;
        ``seed`` — RNG seed for :meth:`ExspanNetwork.random_tuple`.

    Query engine
        ``query_cache_capacity`` — per-node bounded result-cache capacity
        (``None`` = engine default);
        ``query_coalescing`` / ``query_batching`` — concurrency ablations,
        both on by default.

    Simulator / statistics
        ``compact_min_cancelled`` / ``compact_ratio`` — event-heap
        compaction tuning (``None`` = simulator defaults);
        ``traffic_record_cap`` — bounded traffic-statistics mode
        (``None`` = unbounded history).

    Sharding placement
        ``local_addresses`` / ``shard_map`` — configure the instance as
        one shard of a larger simulation (see :mod:`repro.net.sharding`).

    Storage
        ``storage`` — storage backend spec (``None`` = process default,
        ``"memory"``, ``"sqlite"``, or ``"sqlite:<path>"``).  An
        execution-environment knob like ``pipeline``: results are
        byte-identical under any backend, and the spec is only emitted
        in :meth:`to_dict` when explicitly set.
    """

    mode: ProvenanceMode = ProvenanceMode.REFERENCE
    collector: Optional[Any] = None
    value_policy: str = "bdd"
    link_cost: int = 1
    seed: int = 0
    planner: Optional[str] = None
    pipeline: Optional[str] = None
    query_cache_capacity: Optional[int] = None
    query_coalescing: bool = True
    query_batching: bool = True
    compact_min_cancelled: Optional[int] = None
    compact_ratio: Optional[float] = None
    traffic_record_cap: Optional[int] = None
    local_addresses: Optional[Tuple[Any, ...]] = None
    shard_map: Optional[Mapping[Any, int]] = field(default=None)
    storage: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", coerce_mode(self.mode))
        _require(
            self.value_policy in _VALUE_POLICIES,
            f"value_policy must be one of {_VALUE_POLICIES}, got {self.value_policy!r}",
        )
        _require(
            self.planner in _PLANNERS,
            f"planner must be one of {_PLANNERS}, got {self.planner!r}",
        )
        _require(
            self.pipeline in _PIPELINES,
            f"pipeline must be one of {_PIPELINES}, got {self.pipeline!r}",
        )
        _require(
            isinstance(self.link_cost, int) and not isinstance(self.link_cost, bool),
            f"link_cost must be an int, got {self.link_cost!r}",
        )
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"seed must be an int, got {self.seed!r}",
        )
        for name in ("query_cache_capacity", "traffic_record_cap", "compact_min_cancelled"):
            value = getattr(self, name)
            _require(
                value is None
                or (isinstance(value, int) and not isinstance(value, bool) and value >= 0),
                f"{name} must be None or a non-negative int, got {value!r}",
            )
        _require(
            self.compact_ratio is None
            or (isinstance(self.compact_ratio, (int, float)) and self.compact_ratio > 0),
            f"compact_ratio must be None or > 0, got {self.compact_ratio!r}",
        )
        for name in ("query_coalescing", "query_batching"):
            _require(
                isinstance(getattr(self, name), bool),
                f"{name} must be a bool, got {getattr(self, name)!r}",
            )
        if self.local_addresses is not None:
            object.__setattr__(self, "local_addresses", tuple(self.local_addresses))
        if self.shard_map is not None:
            object.__setattr__(self, "shard_map", dict(self.shard_map))
        _require(
            (self.shard_map is None) == (self.local_addresses is None),
            "local_addresses and shard_map must be given together",
        )
        if self.storage is not None:
            from ..storage.backend import StorageError, validate_storage_spec

            try:
                validate_storage_spec(self.storage)
            except StorageError as exc:
                raise ProvenanceError(f"invalid ExspanConfig: {exc}") from None

    # ------------------------------------------------------------------ #
    # derivation / serialization
    # ------------------------------------------------------------------ #
    def replace(self, **changes: Any) -> "ExspanConfig":
        """A copy with *changes* applied (and re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-able form (the wire description of a network).

        ``collector`` and the sharding placement are emitted as-is, so the
        dict is JSON-serializable whenever node addresses are (they are
        strings in every in-repo topology).
        """
        payload: Dict[str, Any] = {
            "mode": MODE_NAMES[self.mode],
            "collector": self.collector,
            "value_policy": self.value_policy,
            "link_cost": self.link_cost,
            "seed": self.seed,
            "planner": self.planner,
            "pipeline": self.pipeline,
            "query_cache_capacity": self.query_cache_capacity,
            "query_coalescing": self.query_coalescing,
            "query_batching": self.query_batching,
            "compact_min_cancelled": self.compact_min_cancelled,
            "compact_ratio": self.compact_ratio,
            "traffic_record_cap": self.traffic_record_cap,
        }
        if self.local_addresses is not None:
            payload["local_addresses"] = list(self.local_addresses)
            payload["shard_map"] = dict(self.shard_map or {})
        if self.storage is not None:
            payload["storage"] = self.storage
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExspanConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ProvenanceError(f"unknown ExspanConfig keys: {unknown}")
        return cls(**dict(payload))

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        """The config's field names (the legacy-kwarg shim's vocabulary)."""
        return tuple(f.name for f in dataclasses.fields(cls))


def freeze_addresses(addresses: Optional[Iterable[Any]]) -> Optional[Tuple[Any, ...]]:
    """Normalize an optional address iterable to a tuple (or ``None``)."""
    return None if addresses is None else tuple(addresses)
