"""Exception types for the ExSPAN provenance layer."""

from __future__ import annotations


class ProvenanceError(Exception):
    """Base class for all ExSPAN provenance errors."""


class RewriteError(ProvenanceError):
    """Raised when a program cannot be rewritten for provenance maintenance.

    The most common cause is an aggregate other than MIN or MAX in a rule
    head — the paper restricts the provenance rewrite to MIN / MAX
    (Section 4.2.2).
    """


class UnknownVertexError(ProvenanceError):
    """Raised when a provenance query references a VID or RID that no node stores."""

    def __init__(self, identifier: str):
        super().__init__(f"unknown provenance vertex: {identifier!r}")
        self.identifier = identifier


class QueryError(ProvenanceError):
    """Raised when a distributed provenance query cannot be executed."""


class QueryTimeoutError(QueryError):
    """Raised when a provenance query does not complete within its deadline."""
