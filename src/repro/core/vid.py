"""Vertex identifiers for the provenance graph (Section 4.1).

Every vertex in the distributed provenance graph has a unique identifier
computed with a cryptographic hash so that any node can derive it locally
without coordination:

* a *tuple vertex* is identified by a **VID**: the SHA-1 of the tuple's
  relation name, location specifier and attribute values —
  ``VID = SHA1("pathCost" + X + Y + C)`` in the paper's notation;
* a *rule execution vertex* is identified by an **RID**: the SHA-1 of the
  rule label, the location where the rule executed, and the VIDs of its
  input tuples — ``RID = SHA1("sp2" + b + VID2 + VID6)``.

The same formulas are evaluated in two places: inside rewritten NDlog rules
(through the ``f_sha1`` builtin) and by Python code in the query layer and
the tests.  Keeping the string rendering identical in both paths is what
makes the reference pointers resolvable, so both call into this module's
:func:`render_value`.

Because a tuple's VID is immutable for its whole lifetime while the engine
recomputes it on every rule firing the tuple joins into, VID computation is
memoized twice: :func:`tuple_vid` keeps a bounded ``(name, values) ->
digest`` cache here, and the ``f_sha1`` builtin the rewrite layer evaluates
keeps the matching bounded preimage cache in
:mod:`repro.datalog.functions`.  Both caches only trade CPU for bounded
memory — cached and uncached computation produce identical digests — and
:func:`set_vid_caching` toggles the pair together (the speedup benchmarks
use that for honest before/after numbers).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Sequence

from ..datalog.ast import Fact
from ..datalog.functions import (
    clear_sha1_cache,
    freeze_cache_key,
    set_sha1_caching,
    sha1_cache_stats,
    sha1_hex,
)

__all__ = [
    "render_value",
    "tuple_preimage",
    "tuple_vid",
    "fact_vid",
    "rule_preimage",
    "rule_rid",
    "NULL_RID",
    "set_vid_caching",
    "clear_vid_caches",
    "vid_cache_stats",
    "VID_CACHE_LIMIT",
]

#: RID value used for base tuples (the paper stores ``null``).
NULL_RID = None

#: Upper bound on memoized tuple VIDs.  One entry holds the (name, frozen
#: values) key plus a 20-character digest; at the limit the cache is dropped
#: wholesale and rebuilt, so worst-case memory stays around a few tens of
#: megabytes regardless of how long a process sweeps topologies.
VID_CACHE_LIMIT = 1 << 17

_vid_cache: Dict[tuple, str] = {}
_vid_caching = True
_vid_hits = 0
_vid_misses = 0


def set_vid_caching(enabled: bool) -> None:
    """Enable/disable VID memoization here *and* in the ``f_sha1`` builtin.

    Used by the speedup benchmarks to measure the un-memoized baseline;
    results are identical either way, only wall-clock changes.
    """
    global _vid_caching
    _vid_caching = bool(enabled)
    if not _vid_caching:
        _vid_cache.clear()
    set_sha1_caching(enabled)


def clear_vid_caches() -> None:
    """Drop the VID cache and the underlying ``f_sha1`` cache."""
    global _vid_hits, _vid_misses
    _vid_cache.clear()
    _vid_hits = 0
    _vid_misses = 0
    clear_sha1_cache()


def vid_cache_stats() -> Dict[str, Any]:
    """Diagnostic counters of both memo layers (see README "Performance")."""
    return {
        "vid": {
            "entries": len(_vid_cache),
            "hits": _vid_hits,
            "misses": _vid_misses,
            "limit": VID_CACHE_LIMIT,
        },
        "sha1": sha1_cache_stats(),
    }


def render_value(value: Any) -> str:
    """Render one attribute value exactly as ``f_sha1`` concatenation does."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if value is None:
        return ""
    if isinstance(value, (list, tuple)):
        return "".join(render_value(item) for item in value)
    return str(value)


def tuple_preimage(name: str, values: Sequence[Any]) -> str:
    """The SHA-1 preimage of a tuple vertex: name followed by all attributes.

    The location specifier is part of ``values`` (it is an ordinary
    attribute of the tuple), matching ``SHA1("link" + b + c + 2)``.
    """
    return name + "".join(render_value(value) for value in values)


def tuple_vid(name: str, values: Sequence[Any]) -> str:
    """Compute the VID of the tuple ``name(values...)`` (memoized).

    The cache key freezes lists into tuples via the same helper the
    ``f_sha1`` memo uses (:func:`render_value` renders both identically, so
    equal keys always map to equal digests); values that stay unhashable
    (e.g. sets) skip the cache and fall through to direct computation.
    """
    global _vid_hits, _vid_misses
    if _vid_caching:
        try:
            key = (name, tuple(map(freeze_cache_key, values)))
            digest = _vid_cache.get(key)
        except TypeError:  # unhashable attribute (e.g. a set): no cache
            key = None
            digest = None
        if key is not None:
            if digest is not None:
                _vid_hits += 1
                return digest
            _vid_misses += 1
            digest = sha1_hex(tuple_preimage(name, values))
            if len(_vid_cache) >= VID_CACHE_LIMIT:
                _vid_cache.clear()
            _vid_cache[key] = digest
            return digest
    return sha1_hex(tuple_preimage(name, values))


def fact_vid(fact: Fact) -> str:
    """Compute the VID of a :class:`~repro.datalog.ast.Fact`."""
    return tuple_vid(fact.name, fact.values)


def rule_preimage(rule_label: str, location: Any, input_vids: Iterable[str]) -> str:
    """The SHA-1 preimage of a rule execution vertex."""
    return rule_label + render_value(location) + "".join(input_vids)


def rule_rid(rule_label: str, location: Any, input_vids: Iterable[str]) -> str:
    """Compute the RID of executing *rule_label* at *location* on *input_vids*."""
    return sha1_hex(rule_preimage(rule_label, location, list(input_vids)))
