"""Vertex identifiers for the provenance graph (Section 4.1).

Every vertex in the distributed provenance graph has a unique identifier
computed with a cryptographic hash so that any node can derive it locally
without coordination:

* a *tuple vertex* is identified by a **VID**: the SHA-1 of the tuple's
  relation name, location specifier and attribute values —
  ``VID = SHA1("pathCost" + X + Y + C)`` in the paper's notation;
* a *rule execution vertex* is identified by an **RID**: the SHA-1 of the
  rule label, the location where the rule executed, and the VIDs of its
  input tuples — ``RID = SHA1("sp2" + b + VID2 + VID6)``.

The same formulas are evaluated in two places: inside rewritten NDlog rules
(through the ``f_sha1`` builtin) and by Python code in the query layer and
the tests.  Keeping the string rendering identical in both paths is what
makes the reference pointers resolvable, so both call into this module's
:func:`render_value`.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..datalog.ast import Fact
from ..datalog.functions import sha1_hex

__all__ = [
    "render_value",
    "tuple_preimage",
    "tuple_vid",
    "fact_vid",
    "rule_preimage",
    "rule_rid",
    "NULL_RID",
]

#: RID value used for base tuples (the paper stores ``null``).
NULL_RID = None


def render_value(value: Any) -> str:
    """Render one attribute value exactly as ``f_sha1`` concatenation does."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if value is None:
        return ""
    if isinstance(value, (list, tuple)):
        return "".join(render_value(item) for item in value)
    return str(value)


def tuple_preimage(name: str, values: Sequence[Any]) -> str:
    """The SHA-1 preimage of a tuple vertex: name followed by all attributes.

    The location specifier is part of ``values`` (it is an ordinary
    attribute of the tuple), matching ``SHA1("link" + b + c + 2)``.
    """
    return name + "".join(render_value(value) for value in values)


def tuple_vid(name: str, values: Sequence[Any]) -> str:
    """Compute the VID of the tuple ``name(values...)``."""
    return sha1_hex(tuple_preimage(name, values))


def fact_vid(fact: Fact) -> str:
    """Compute the VID of a :class:`~repro.datalog.ast.Fact`."""
    return tuple_vid(fact.name, fact.values)


def rule_preimage(rule_label: str, location: Any, input_vids: Iterable[str]) -> str:
    """The SHA-1 preimage of a rule execution vertex."""
    return rule_label + render_value(location) + "".join(input_vids)


def rule_rid(rule_label: str, location: Any, input_vids: Iterable[str]) -> str:
    """Compute the RID of executing *rule_label* at *location* on *input_vids*."""
    return sha1_hex(rule_preimage(rule_label, location, list(input_vids)))
