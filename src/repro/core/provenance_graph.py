"""An explicit, in-memory view of the (distributed) provenance graph.

The provenance data model of Section 4.1 is an acyclic graph whose vertices
are *tuple vertices* (VIDs) and *rule execution vertices* (RIDs), with edges
from input tuples to rule executions and from rule executions to the derived
tuple.  At runtime the graph only ever exists as rows of the distributed
``prov`` / ``ruleExec`` tables; this module materializes it as a Python
object for analysis, testing, visualization (Figure 5 style ``.dot``
output), and for the centralized-provenance baseline where a collector node
holds the whole graph.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.ast import Fact
from .storage import ProvEntry, ProvenanceStore, RuleExecEntry
from .vid import fact_vid

__all__ = ["TupleVertex", "RuleVertex", "ProvenanceGraph", "build_global_graph"]


@dataclass
class TupleVertex:
    """A tuple vertex: the tuple's VID, its location, and (if known) the fact."""

    vid: str
    location: Any
    fact: Optional[Fact] = None
    derivations: List[str] = field(default_factory=list)  # RIDs deriving this tuple
    is_base: bool = False

    def label(self) -> str:
        if self.fact is not None:
            values = ",".join(str(value) for value in self.fact.values)
            return f"{self.fact.name}({values})"
        return self.vid[:10]


@dataclass
class RuleVertex:
    """A rule execution vertex: RID, rule label, location, input tuple VIDs."""

    rid: str
    rule_label: str
    location: Any
    input_vids: Tuple[str, ...] = ()

    def label(self) -> str:
        return f"{self.rule_label}@{self.location}"


class ProvenanceGraph:
    """A bipartite DAG of tuple vertices and rule execution vertices."""

    def __init__(self) -> None:
        self.tuples: Dict[str, TupleVertex] = {}
        self.rules: Dict[str, RuleVertex] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_prov_entry(self, entry: ProvEntry, fact: Optional[Fact] = None) -> None:
        vertex = self.tuples.get(entry.vid)
        if vertex is None:
            vertex = TupleVertex(vid=entry.vid, location=entry.location, fact=fact)
            self.tuples[entry.vid] = vertex
        elif fact is not None and vertex.fact is None:
            vertex.fact = fact
        if entry.is_base:
            vertex.is_base = True
        elif entry.rid not in vertex.derivations:
            vertex.derivations.append(entry.rid)

    def add_rule_exec(self, entry: RuleExecEntry) -> None:
        self.rules[entry.rid] = RuleVertex(
            rid=entry.rid,
            rule_label=entry.rule_label,
            location=entry.rule_location,
            input_vids=tuple(entry.input_vids),
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def tuple_vertex(self, vid: str) -> Optional[TupleVertex]:
        return self.tuples.get(vid)

    def rule_vertex(self, rid: str) -> Optional[RuleVertex]:
        return self.rules.get(rid)

    def derivations_of(self, vid: str) -> List[RuleVertex]:
        vertex = self.tuples.get(vid)
        if vertex is None:
            return []
        return [self.rules[rid] for rid in vertex.derivations if rid in self.rules]

    def base_vids(self) -> FrozenSet[str]:
        return frozenset(vid for vid, vertex in self.tuples.items() if vertex.is_base)

    def reachable_base_tuples(self, vid: str) -> FrozenSet[str]:
        """VIDs of all base tuples reachable from *vid* through its derivations."""
        seen: Set[str] = set()
        bases: Set[str] = set()
        queue = deque([vid])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            vertex = self.tuples.get(current)
            if vertex is None:
                continue
            if vertex.is_base:
                bases.add(current)
            for rid in vertex.derivations:
                rule = self.rules.get(rid)
                if rule is None:
                    continue
                queue.extend(rule.input_vids)
        return frozenset(bases)

    def nodes_involved(self, vid: str) -> FrozenSet[Any]:
        """All node locations participating in any derivation of *vid*."""
        seen: Set[str] = set()
        nodes: Set[Any] = set()
        queue = deque([vid])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            vertex = self.tuples.get(current)
            if vertex is None:
                continue
            nodes.add(vertex.location)
            for rid in vertex.derivations:
                rule = self.rules.get(rid)
                if rule is None:
                    continue
                nodes.add(rule.location)
                queue.extend(rule.input_vids)
        return frozenset(nodes)

    def is_acyclic(self) -> bool:
        """Verify the data-model invariant that the graph has no cycles."""
        colors: Dict[str, int] = {}

        def visit(vid: str) -> bool:
            state = colors.get(vid, 0)
            if state == 1:
                return False
            if state == 2:
                return True
            colors[vid] = 1
            vertex = self.tuples.get(vid)
            if vertex is not None:
                for rid in vertex.derivations:
                    rule = self.rules.get(rid)
                    if rule is None:
                        continue
                    for child in rule.input_vids:
                        if not visit(child):
                            return False
            colors[vid] = 2
            return True

        return all(visit(vid) for vid in list(self.tuples))

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_dot(self, root: Optional[str] = None) -> str:
        """Render the graph (or the subgraph under *root*) in Graphviz dot."""
        if root is not None:
            keep_tuples, keep_rules = self._subgraph(root)
        else:
            keep_tuples, keep_rules = set(self.tuples), set(self.rules)
        lines = ["digraph provenance {", "  rankdir=BT;"]
        for vid in sorted(keep_tuples):
            vertex = self.tuples[vid]
            shape = "box"
            lines.append(
                f'  "{vid[:10]}" [shape={shape}, label="{vertex.label()}"];'
            )
        for rid in sorted(keep_rules):
            rule = self.rules[rid]
            lines.append(f'  "{rid[:10]}" [shape=ellipse, label="{rule.label()}"];')
        for vid in sorted(keep_tuples):
            vertex = self.tuples[vid]
            for rid in vertex.derivations:
                if rid in keep_rules:
                    lines.append(f'  "{rid[:10]}" -> "{vid[:10]}";')
        for rid in sorted(keep_rules):
            rule = self.rules[rid]
            for child in rule.input_vids:
                if child in keep_tuples:
                    lines.append(f'  "{child[:10]}" -> "{rid[:10]}";')
        lines.append("}")
        return "\n".join(lines)

    def to_text_tree(self, root: str, max_depth: int = 8) -> str:
        """Pretty-print the derivation tree under *root* as indented text.

        The operator-shell rendering of ``\\prov``: tuple vertices show
        their fact label and location, rule vertices the rule and where it
        fired.  Revisited tuples print as a back-reference instead of
        re-expanding (the graph is a DAG, the rendering is a tree), and
        ``max_depth`` bounds the expansion of deep derivations.  Output is
        deterministic: children follow the stored derivation order.
        """
        vertex = self.tuples.get(root)
        if vertex is None:
            return f"(no provenance recorded for {root[:10]})"
        lines: List[str] = []
        expanded: Set[str] = set()

        def visit_tuple(vid: str, prefix: str, tail: bool, depth: int) -> None:
            vertex = self.tuples.get(vid)
            branch = "" if not prefix and not lines else ("`- " if tail else "|- ")
            indent = prefix + branch
            child_prefix = prefix + ("   " if tail else "|  ") if branch else prefix
            if vertex is None:
                lines.append(f"{indent}{vid[:10]} (remote / unknown)")
                return
            marker = " [base]" if vertex.is_base else ""
            label = f"{vertex.label()} @{vertex.location}{marker}"
            if vid in expanded and vertex.derivations:
                lines.append(f"{indent}{label} (see above)")
                return
            expanded.add(vid)
            lines.append(f"{indent}{label}")
            if depth >= max_depth:
                if vertex.derivations:
                    lines.append(f"{child_prefix}`- ... (max depth {max_depth})")
                return
            rules = [rid for rid in vertex.derivations if rid in self.rules]
            for index, rid in enumerate(rules):
                rule = self.rules[rid]
                last = index == len(rules) - 1
                rule_branch = "`- " if last else "|- "
                lines.append(f"{child_prefix}{rule_branch}rule {rule.label()}")
                rule_prefix = child_prefix + ("   " if last else "|  ")
                inputs = list(rule.input_vids)
                for child_index, child in enumerate(inputs):
                    visit_tuple(
                        child,
                        rule_prefix,
                        child_index == len(inputs) - 1,
                        depth + 1,
                    )

        visit_tuple(root, "", True, 0)
        return "\n".join(lines)

    def _subgraph(self, root: str) -> Tuple[Set[str], Set[str]]:
        keep_tuples: Set[str] = set()
        keep_rules: Set[str] = set()
        queue = deque([root])
        while queue:
            current = queue.popleft()
            if current in keep_tuples:
                continue
            vertex = self.tuples.get(current)
            if vertex is None:
                continue
            keep_tuples.add(current)
            for rid in vertex.derivations:
                rule = self.rules.get(rid)
                if rule is None:
                    continue
                keep_rules.add(rid)
                queue.extend(rule.input_vids)
        return keep_tuples, keep_rules

    def __len__(self) -> int:
        return len(self.tuples) + len(self.rules)


def build_global_graph(stores: Iterable[ProvenanceStore]) -> ProvenanceGraph:
    """Assemble the global provenance graph from every node's local tables.

    This is an offline analysis helper (and the centralized baseline's view);
    the distributed query engine never needs the global graph.
    """
    graph = ProvenanceGraph()
    for store in stores:
        for entry in store.all_prov_entries():
            graph.add_prov_entry(entry, fact=store.fact_for_vid(entry.vid))
        for rule_entry in store.all_rule_exec_entries():
            graph.add_rule_exec(rule_entry)
    return graph
