"""Distributed querying of reference-based provenance (Section 5).

The provenance of a tuple is reconstructed by recursively traversing the
distributed ``prov`` / ``ruleExec`` tables: the node storing the tuple looks
up its derivations in ``prov``, asks each rule's location for the rule
execution metadata (``ruleExec``), which in turn resolves the provenance of
the rule's input tuples, until base tuples are reached.  Results flow back
along the reverse path.

The paper expresses this traversal as ten NDlog rules (``edb1``, ``idb1`` –
``idb4``, ``rv1`` – ``rv4``) customized by three user-defined functions —
``f_pEDB``, ``f_pIDB`` and ``f_pRULE``.  This module implements the same
protocol as an explicit distributed service (one
:class:`ProvenanceQueryService` per node exchanging messages over the
simulated network), parameterized by a :class:`QuerySpec` holding the three
UDFs plus the traversal order, threshold, projection filters and caching
policy of Section 6.  Implementing the traversal natively rather than as
NDlog rules keeps the continuation bookkeeping explicit while preserving the
message pattern (and therefore the bandwidth / latency behaviour) of the
paper's rules.

Concurrency model
-----------------
The service is a *concurrent, pipelined* engine: any number of root queries
may be in flight at one node, and their traversals interleave freely on the
event loop.  Three mechanisms keep the multi-querier workload cheap while
staying **result-identical to serial resolution**:

* **In-flight sub-query coalescing** — a traversal reaching a vertex whose
  resolution is already in flight for the same ``(spec, vertex, depth
  budget)`` attaches a *waiter* to the pending resolution instead of
  re-walking the distributed subgraph; every waiter receives the one
  computed result.  Root queries to a remote target coalesce the same way
  on the issuing node, so k concurrent queries for one remote vertex cost
  one ``provQuery`` / ``provResult`` pair.  Resolutions are deterministic
  functions of the local store, the spec and the depth budget (the random
  moonwalk draws from a per-``(spec, node, vertex)`` seeded generator),
  which is what makes a coalesced result bit-identical to a re-issued
  walk.
* **Deterministic aggregation** — a vertex's child results are combined in
  derivation order (and a rule's in input order) via index slots, never in
  message-arrival order, so annotations do not depend on how concurrent
  traversals interleave on the wire.
* **Per-destination batching** — all ``prov`` traffic generated while
  handling one message (or one locally issued query) is flushed through
  the host outbox at the end of the turn: payloads for the same
  destination share a single message envelope (see
  :mod:`repro.net.host`), cutting per-message header overhead for the
  fan-outs the traversal produces.

Depth budgets and the cache interact carefully: every completed resolution
reports the *height* of the subgraph it covered, truncated resolutions
(some descendant ran out of depth) report no height and are **never
cached**, and a cached entry is served only to requesters whose remaining
budget is at least the entry's height — i.e. only when their own traversal
would have produced the identical full value.  Cached values are therefore
independent of the depth budget they were computed under, which keeps
concurrent issuance bit-identical to serial issuance even for
depth-bounded specs.

Cache writes are also guarded against concurrent updates: when a vertex is
invalidated while its resolution is in flight, the resolution is marked
*dirty* — its (point-in-time) result is still delivered to waiters, but it
is not cached, and invalidations are propagated to the waiters' parent
entries so no cache retains a value derived from the pre-update subgraph.

Message kinds exchanged (all under the ``"prov"`` message kind, so query
traffic can be separated from protocol maintenance traffic in the traffic
statistics):

* ``provQuery`` / ``provResult`` — resolve a tuple vertex (rule ``idb2`` /
  ``idb4``);
* ``ruleQuery`` / ``ruleResult`` — resolve a rule execution vertex (rules
  ``rv1`` – ``rv4``);
* ``invalidate`` — cache invalidation flag (Section 6.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..datalog.ast import Fact
from ..net.host import Host
from ..net.message import Message, TRACE_CONTEXT_KEY
from .cache import CacheKey, Dependent, QueryResultCache, vertex_of
from .errors import QueryError
from .rewrite import PROV_TABLE, RULE_EXEC_TABLE
from .storage import ProvenanceStore
from .vid import fact_vid

__all__ = [
    "TraversalOrder",
    "QuerySpec",
    "QueryOutcome",
    "ProvenanceQueryService",
    "PROV_MESSAGE_KIND",
]

PROV_MESSAGE_KIND = "prov"

#: Default bound on recursion depth, guarding against (disallowed) cyclic
#: provenance and runaway traversals.
DEFAULT_MAX_DEPTH = 64


class TraversalOrder(Enum):
    """Order in which alternative derivations of a tuple are explored."""

    BFS = "bfs"
    DFS = "dfs"
    DFS_THRESHOLD = "dfs-threshold"
    RANDOM_MOONWALK = "random-moonwalk"


@dataclass
class QuerySpec:
    """A provenance query customization.

    The three user-defined functions mirror Section 5.2:

    * ``f_edb(vid, fact, node)`` — annotation of a base tuple;
    * ``f_idb(results, vid, node)`` — combine the annotations of a tuple's
      alternative derivations (the ``+`` of the semiring);
    * ``f_rule(results, rule_label, node)`` — combine the annotations of a
      rule execution's inputs (the ``·`` of the semiring).
    """

    name: str
    f_edb: Callable[[str, Optional[Fact], Any], Any]
    f_idb: Callable[[Sequence[Any], str, Any], Any]
    f_rule: Callable[[Sequence[Any], str, Any], Any]
    missing: Callable[[], Any] = lambda: None
    traversal: TraversalOrder = TraversalOrder.BFS
    threshold_met: Optional[Callable[[Any], bool]] = None
    moonwalk_width: int = 1
    node_filter: Optional[Callable[[Any], bool]] = None
    rule_filter: Optional[Callable[[str, Any], bool]] = None
    use_cache: bool = False
    max_depth: int = DEFAULT_MAX_DEPTH
    moonwalk_seed: int = 0

    def allow_node(self, node: Any) -> bool:
        return self.node_filter is None or bool(self.node_filter(node))

    def allow_rule(self, rule_label: str, node: Any) -> bool:
        return self.rule_filter is None or bool(self.rule_filter(rule_label, node))


@dataclass
class QueryOutcome:
    """The completed result of one root provenance query.

    ``partial`` is set when the query's deadline expired before the
    distributed traversal finished: ``result`` then holds the spec's
    ``missing()`` value and ``unresolved`` lists the issuer-local frontier
    — the ``(destination, query kind, vertex)`` triples of every remote
    sub-query still awaiting a reply when the deadline fired.
    """

    query_id: str
    vid: str
    result: Any
    issued_at: float
    completed_at: float
    issuer: Any
    target: Any
    partial: bool = False
    unresolved: Tuple[Tuple[str, ...], ...] = ()

    @property
    def latency(self) -> float:
        return self.completed_at - self.issued_at


#: Height of the resolved subgraph (vid/rule levels below the vertex), or
#: ``None`` when the resolution was truncated by the depth budget.
_Height = Optional[int]

#: A continuation receiving a resolved value plus its subgraph height.
_Continuation = Callable[[Any, _Height], None]

#: A waiter: the (node, parent cache key) that will consume the result —
#: ``None`` for root queries — plus the continuation to invoke with it.
_Waiter = Tuple[Optional[Dependent], _Continuation]


#: A propagated trace context (``(trace_id, parent_span_id)``); shipped on
#: protocol payloads under :data:`~repro.net.message.TRACE_CONTEXT_KEY` so a
#: distributed traversal renders as one causally-linked tree across hosts.
_Tc = Optional[Tuple[str, str]]


def _end_with(span: Any, continuation: _Continuation) -> _Continuation:
    """Wrap *continuation* to close *span* once the resolution completes."""

    def done(result: Any, height: _Height) -> None:
        span.end()
        continuation(result, height)

    return done


def _combine_heights(child_heights: Sequence[_Height]) -> _Height:
    """Height of a vertex above its children; ``None`` taints the parent."""
    tallest = 0
    for height in child_heights:
        if height is None:
            return None
        if height > tallest:
            tallest = height
    return tallest + 1


@dataclass
class _InFlight:
    """One pending vertex resolution that concurrent traversals share."""

    key: CacheKey
    depth: int
    waiters: List[_Waiter] = field(default_factory=list)
    #: Set when the vertex is invalidated mid-resolution: the result is
    #: still delivered but never cached, and consumers are invalidated.
    dirty: bool = False


class _SlotFanIn:
    """Collect indexed child results; fire once every slot is filled.

    Results land in child-index slots, not arrival order, so the combined
    annotation is independent of message interleaving; heights are folded
    alongside (any truncated child taints the aggregate).
    """

    __slots__ = ("slots", "heights", "remaining", "on_all")

    def __init__(self, count: int, on_all: Callable[[List[Any], _Height], None]):
        self.slots: List[Any] = [None] * count
        self.heights: List[_Height] = [None] * count
        self.remaining = count
        self.on_all = on_all

    def collector(self, index: int) -> _Continuation:
        def accept(result: Any, height: _Height) -> None:
            self.slots[index] = result
            self.heights[index] = height
            self.remaining -= 1
            if self.remaining == 0:
                self.on_all(self.slots, _combine_heights(self.heights))

        return accept


class ProvenanceQueryService:
    """The provenance query protocol endpoint running at one node."""

    def __init__(
        self,
        host: Host,
        store: ProvenanceStore,
        clock: Callable[[], float],
        cache_capacity: Optional[int] = None,
        coalesce: bool = True,
        batch: bool = True,
        tracer: Any = None,
    ):
        self.host = host
        self.store = store
        self.node = host.address
        self.clock = clock
        #: Optional :class:`repro.obs.tracer.Tracer`; every resolution then
        #: opens a span linked into its root query's trace, across hosts.
        self.tracer = tracer
        self.cache = (
            QueryResultCache(self.node)
            if cache_capacity is None
            else QueryResultCache(self.node, capacity=cache_capacity)
        )
        self.coalesce = coalesce
        self.batch = batch
        self._specs: Dict[str, QuerySpec] = {}
        # qid -> continuations awaiting the (single) remote result.
        self._continuations: Dict[str, List[_Continuation]] = {}
        # (cache key, depth budget) -> pending local resolution, plus a
        # (kind, identifier) index so invalidation taints matching
        # resolutions without scanning everything in flight.
        self._inflight: Dict[Tuple[CacheKey, int], _InFlight] = {}
        self._inflight_index: Dict[Tuple[str, str], Dict[Tuple[CacheKey, int], None]] = {}
        # (target node, spec, vid) -> qid of the pending remote root query.
        self._remote_roots: Dict[Tuple[Any, str, str], str] = {}
        self._qid_root: Dict[str, Tuple[Any, str, str]] = {}
        # qid -> (destination repr, query kind, vertex) of the pending
        # remote sub-query; the deadline machinery reports this frontier.
        self._continuation_dest: Dict[str, Tuple[str, str, str]] = {}
        self._sequence = 0
        self.queries_started = 0
        self.queries_completed = 0
        self.coalesced_inflight = 0
        self.coalesced_roots = 0
        self.stale_drops = 0
        self.deadline_expirations = 0
        self.late_drops = 0
        #: Optional hook invoked after each root query is issued with the
        #: current id sequence; the fault injector journals it so a
        #: restarted node resumes numbering past every pre-crash query id.
        self.on_root_issued: Optional[Callable[[int], None]] = None
        host.register_handler(PROV_MESSAGE_KIND, self._on_message)

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def register_spec(self, spec: QuerySpec) -> None:
        """Install a query customization (done on every node ahead of time)."""
        self._specs[spec.name] = spec

    def spec(self, name: str) -> QuerySpec:
        try:
            return self._specs[name]
        except KeyError:
            raise QueryError(
                f"node {self.node!r} has no registered query spec {name!r}"
            ) from None

    def spec_names(self) -> List[str]:
        """Names of every registered query spec (sorted; shell completion)."""
        return sorted(self._specs)

    # ------------------------------------------------------------------ #
    # public query API
    # ------------------------------------------------------------------ #
    def query(
        self,
        vid: str,
        target_node: Any,
        spec_name: str,
        on_complete: Callable[[QueryOutcome], None],
        deadline: Optional[float] = None,
    ) -> str:
        """Issue a root query for *vid* stored at *target_node*.

        ``on_complete`` is invoked (at this node) once the provenance result
        has been computed and shipped back.  Any number of root queries may
        be in flight at once.

        ``deadline`` is an optional simulated-time budget: when it elapses
        before the traversal completes, the query finishes *once* with a
        partial :class:`QueryOutcome` (``result`` is the spec's ``missing``
        value, ``unresolved`` names the pending remote frontier) and the
        eventual real result is counted in ``late_drops`` instead of being
        delivered twice.
        """
        spec = self.spec(spec_name)
        query_id = self._fresh_id()
        issued_at = self.clock()
        self.queries_started += 1
        tracer = self.tracer
        root_span = None
        tc: _Tc = None
        if tracer is not None:
            root_span = tracer.begin(
                "query.root",
                cat="query",
                host=self.node,
                trace=(tracer.new_trace(), None),
                vid=vid,
                spec=spec_name,
                target=target_node,
                qid=query_id,
            )
            tc = root_span.context()

        fired = {"done": False, "timer": None}

        def finish_once(
            result: Any,
            partial: bool,
            unresolved: Tuple[Tuple[str, ...], ...],
        ) -> None:
            if fired["done"]:
                self.late_drops += 1
                return
            fired["done"] = True
            timer = fired["timer"]
            if timer is not None:
                timer.cancel()
            self.queries_completed += 1
            if root_span is not None:
                if partial:
                    root_span.add(partial=True, unresolved=len(unresolved))
                root_span.end()
            on_complete(
                QueryOutcome(
                    query_id=query_id,
                    vid=vid,
                    result=result,
                    issued_at=issued_at,
                    completed_at=self.clock(),
                    issuer=self.node,
                    target=target_node,
                    partial=partial,
                    unresolved=unresolved,
                )
            )

        def finish(result: Any, height: _Height) -> None:
            finish_once(result, False, ())

        def expire() -> None:
            if fired["done"]:  # pragma: no cover - timer raced completion
                return
            self.deadline_expirations += 1
            frontier = tuple(sorted(self._continuation_dest.values()))
            finish_once(spec.missing(), True, frontier)

        if deadline is not None:
            fired["timer"] = self.host.network.simulator.schedule(deadline, expire)

        self.host.begin_turn()
        try:
            if target_node == self.node:
                self._resolve_vid(
                    vid, spec, finish, parent=None, depth=spec.max_depth, tc=tc
                )
            else:
                self._ask_remote_root(vid, target_node, spec, query_id, finish, tc=tc)
        finally:
            self.host.end_turn()
        if self.on_root_issued is not None:
            self.on_root_issued(self._sequence)
        return query_id

    def _ask_remote_root(
        self,
        vid: str,
        target_node: Any,
        spec: QuerySpec,
        query_id: str,
        finish: _Continuation,
        tc: _Tc = None,
    ) -> None:
        """Issue (or coalesce onto) a remote root query for *vid*.

        Coalescing (here and for in-flight sub-queries) relies on the
        simulated network's reliable, loss-free delivery: every query gets
        exactly one result, so a pending slot always drains.  A deployment
        with message loss or host failure would need a timeout that
        re-issues the walk and expires the slot.
        """
        root = (target_node, spec.name, vid)
        pending = self._remote_roots.get(root)
        if self.coalesce and pending is not None:
            self._continuations[pending].append(finish)
            self.coalesced_roots += 1
            return
        self._remote_roots[root] = query_id
        self._qid_root[query_id] = root
        self._continuations[query_id] = [finish]
        self._continuation_dest[query_id] = (repr(target_node), "provQuery", vid)
        payload = {
            "type": "provQuery",
            "qid": query_id,
            "vid": vid,
            "spec": spec.name,
            "ret": self.node,
            "parent": None,
            "depth": spec.max_depth,
        }
        if tc is not None:
            payload[TRACE_CONTEXT_KEY] = list(tc)
        self._send(target_node, payload)

    def query_fact(
        self,
        fact: Fact,
        target_node: Any,
        spec_name: str,
        on_complete: Callable[[QueryOutcome], None],
    ) -> str:
        """Convenience wrapper computing the VID of *fact* first."""
        return self.query(fact_vid(fact), target_node, spec_name, on_complete)

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def _send(self, destination: Any, payload: Dict[str, Any]) -> None:
        """Ship one protocol payload, batched per destination when enabled."""
        if self.batch:
            self.host.enqueue(destination, PROV_MESSAGE_KIND, payload)
        else:
            self.host.send(destination, PROV_MESSAGE_KIND, payload)

    def _on_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload.get("type")
        if kind == "provQuery":
            self._handle_prov_query(payload)
        elif kind == "ruleQuery":
            self._handle_rule_query(payload)
        elif kind in ("provResult", "ruleResult"):
            qid = payload["qid"]
            root = self._qid_root.pop(qid, None)
            if root is not None and self._remote_roots.get(root) == qid:
                del self._remote_roots[root]
            self._continuation_dest.pop(qid, None)
            continuations = self._continuations.pop(qid, None)
            for continuation in continuations or ():
                continuation(payload["result"], payload.get("h"))
        elif kind == "invalidate":
            self._invalidate_key(tuple(payload["key"]))
        else:  # pragma: no cover - defensive
            raise QueryError(f"unknown provenance message type {kind!r}")

    @staticmethod
    def _parse_parent(payload: Dict[str, Any]) -> Optional[Dependent]:
        parent = payload.get("parent")
        if parent is None:
            return None
        return (parent[0], tuple(parent[1]))

    @staticmethod
    def _parse_tc(payload: Dict[str, Any]) -> _Tc:
        tc = payload.get(TRACE_CONTEXT_KEY)
        if tc is None:
            return None
        return (tc[0], tc[1])

    def _handle_prov_query(self, payload: Dict[str, Any]) -> None:
        spec = self.spec(payload["spec"])

        def reply(result: Any, height: _Height) -> None:
            self._send(
                payload["ret"],
                {
                    "type": "provResult",
                    "qid": payload["qid"],
                    "vid": payload["vid"],
                    "result": result,
                    "h": height,
                },
            )

        self._resolve_vid(
            payload["vid"],
            spec,
            reply,
            parent=self._parse_parent(payload),
            depth=payload.get("depth", spec.max_depth),
            tc=self._parse_tc(payload),
        )

    def _handle_rule_query(self, payload: Dict[str, Any]) -> None:
        spec = self.spec(payload["spec"])

        def reply(result: Any, height: _Height) -> None:
            self._send(
                payload["ret"],
                {
                    "type": "ruleResult",
                    "qid": payload["qid"],
                    "rid": payload["rid"],
                    "result": result,
                    "h": height,
                },
            )

        self._resolve_rid(
            payload["rid"],
            spec,
            reply,
            parent=self._parse_parent(payload),
            depth=payload.get("depth", spec.max_depth),
            tc=self._parse_tc(payload),
        )

    # ------------------------------------------------------------------ #
    # in-flight resolution bookkeeping
    # ------------------------------------------------------------------ #
    def _attach_or_open(
        self,
        key: CacheKey,
        depth: int,
        parent: Optional[Dependent],
        on_done: _Continuation,
    ) -> Optional[_InFlight]:
        """Coalesce onto a pending resolution, or open a new one.

        Returns the freshly opened record, or ``None`` when the caller
        attached to an existing resolution (nothing further to do).  The
        depth budget is part of the compatibility check: a traversal that
        reaches the vertex with a different remaining depth could explore a
        different frontier when the bound binds, so it resolves separately.
        """
        record = _InFlight(key=key, depth=depth, waiters=[(parent, on_done)])
        if not self.coalesce:
            # Ablation mode: resolutions run independently and are invisible
            # to dirty-marking, reproducing the pre-concurrency engine's
            # message pattern (and its weaker mid-flight update semantics).
            return record
        slot = (key, depth)
        pending = self._inflight.get(slot)
        if pending is not None:
            pending.waiters.append((parent, on_done))
            self.coalesced_inflight += 1
            return None
        self._inflight[slot] = record
        self._inflight_index.setdefault(vertex_of(key), {})[slot] = None
        return record

    def _drop_record(self, record: _InFlight) -> None:
        """Deregister a resolution (completed, or aborted without caching)."""
        slot = (record.key, record.depth)
        if self._inflight.get(slot) is record:
            del self._inflight[slot]
            vertex = vertex_of(record.key)
            slots = self._inflight_index.get(vertex)
            if slots is not None:
                slots.pop(slot, None)
                if not slots:
                    del self._inflight_index[vertex]

    def _finish_resolution(
        self, record: _InFlight, spec: QuerySpec, result: Any, height: _Height
    ) -> None:
        """Complete a resolution: cache (when eligible), fan out to waiters.

        A result is cached only when the resolution is *clean* (no
        invalidation landed mid-flight) and *complete* (``height`` is not
        ``None``: no descendant was truncated by the depth budget, so the
        value is independent of the budget it was computed under).
        """
        self._drop_record(record)
        if spec.use_cache:
            parents = tuple(
                {parent: None for parent, _ in record.waiters if parent is not None}
            )
            if record.dirty:
                # The subgraph changed under this resolution: deliver the
                # point-in-time result but keep it (and anything computed
                # from it) out of every cache.
                self.stale_drops += 1
                self._notify_dependents(parents)
            elif height is not None:
                displaced = self.cache.put(
                    record.key, result, self.clock(), dependents=parents, height=height
                )
                if displaced:
                    self._notify_dependents(displaced)
        for _, on_done in record.waiters:
            on_done(result, height)

    # ------------------------------------------------------------------ #
    # tuple-vertex resolution (rules edb1, idb1-idb4 of the paper)
    # ------------------------------------------------------------------ #
    def _resolve_vid(
        self,
        vid: str,
        spec: QuerySpec,
        on_done: _Continuation,
        parent: Optional[Dependent],
        depth: int,
        tc: _Tc = None,
    ) -> None:
        tracer = self.tracer
        if tracer is not None:
            span = tracer.begin(
                "query.resolve", cat="query", host=self.node, trace=tc, vid=vid, depth=depth
            )
            tc = span.context()
            on_done = _end_with(span, on_done)
        key: CacheKey = ("v", spec.name, vid)
        if spec.use_cache:
            entry = self.cache.get(key, budget=depth)
            if entry is not None:
                if parent is not None:
                    self.cache.add_dependent(key, parent[0], parent[1])
                on_done(entry.result, entry.height)
                return
        if depth <= 0:
            on_done(spec.missing(), None)
            return

        record = self._attach_or_open(key, depth, parent, on_done)
        if record is None:
            return

        entries = self.store.prov_entries(vid)
        if not entries:
            # Unknown vertices are never cached themselves (the tuple may
            # appear later) — but an ancestor embedding this missing answer
            # may be, so keep the reverse pointer: when a prov row for this
            # vertex does arrive, invalidate_vertex finds the dependent and
            # drops the stale ancestor.
            if spec.use_cache and parent is not None:
                self.cache.add_dependent(key, parent[0], parent[1])
            self._drop_record(record)
            on_done(spec.missing(), 1)
            return

        fact = self.store.fact_for_vid(vid)
        initial_results: List[Any] = []
        if any(entry.is_base for entry in entries):
            initial_results.append(spec.f_edb(vid, fact, self.node))
        derivations = [
            entry
            for entry in entries
            if not entry.is_base and spec.allow_node(entry.rule_location)
        ]

        def finish(results: List[Any], height: _Height) -> None:
            self._finish_resolution(
                record, spec, spec.f_idb(list(results), vid, self.node), height
            )

        if not derivations:
            finish(initial_results, 1)
            return

        if spec.traversal is TraversalOrder.RANDOM_MOONWALK:
            width = max(1, min(spec.moonwalk_width, len(derivations)))
            derivations = self._moonwalk_rng(spec, vid).sample(derivations, width)

        if spec.traversal in (TraversalOrder.BFS, TraversalOrder.RANDOM_MOONWALK):
            self._resolve_derivations_parallel(
                key, spec, derivations, initial_results, finish, depth, tc
            )
        else:
            self._resolve_derivations_sequential(
                vid, key, spec, derivations, initial_results, finish, depth, tc
            )

    def _moonwalk_rng(self, spec: QuerySpec, vid: str) -> random.Random:
        """Derivation sampler for the random moonwalk.

        Seeded per ``(spec seed, node, vertex)`` so that the sample drawn at
        a vertex does not depend on how many walks this service ran before —
        the property that makes moonwalk resolutions coalescable and makes
        concurrent issuance bit-identical to serial issuance.
        """
        return random.Random(f"moonwalk-{spec.moonwalk_seed}-{self.node}-{vid}")

    def _resolve_derivations_parallel(
        self,
        parent_key: CacheKey,
        spec: QuerySpec,
        derivations: Sequence[Any],
        initial_results: List[Any],
        finish: Callable[[List[Any], _Height], None],
        depth: int,
        tc: _Tc = None,
    ) -> None:
        fan_in = _SlotFanIn(
            len(derivations),
            lambda slots, height: finish(list(initial_results) + slots, height),
        )
        for index, entry in enumerate(derivations):
            self._ask_rule_vertex(
                entry.rid,
                entry.rule_location,
                spec,
                parent_key,
                fan_in.collector(index),
                depth,
                tc,
            )

    def _resolve_derivations_sequential(
        self,
        vid: str,
        parent_key: CacheKey,
        spec: QuerySpec,
        derivations: Sequence[Any],
        initial_results: List[Any],
        finish: Callable[[List[Any], _Height], None],
        depth: int,
        tc: _Tc = None,
    ) -> None:
        results: List[Any] = list(initial_results)
        heights: List[_Height] = []
        remaining = list(derivations)

        def threshold_reached() -> bool:
            if spec.traversal is not TraversalOrder.DFS_THRESHOLD:
                return False
            if spec.threshold_met is None or not results:
                return False
            partial = spec.f_idb(list(results), vid, self.node)
            return bool(spec.threshold_met(partial))

        def advance() -> None:
            if not remaining or threshold_reached():
                finish(results, _combine_heights(heights))
                return
            entry = remaining.pop(0)

            def on_child(result: Any, height: _Height) -> None:
                results.append(result)
                heights.append(height)
                advance()

            self._ask_rule_vertex(
                entry.rid, entry.rule_location, spec, parent_key, on_child, depth, tc
            )

        advance()

    def _ask_rule_vertex(
        self,
        rid: str,
        rule_location: Any,
        spec: QuerySpec,
        parent_key: CacheKey,
        on_result: _Continuation,
        depth: int,
        tc: _Tc = None,
    ) -> None:
        """Resolve a rule-execution vertex, locally or via a remote query."""
        if rule_location == self.node:
            self._resolve_rid(
                rid,
                spec,
                on_result,
                parent=(self.node, parent_key),
                depth=depth - 1,
                tc=tc,
            )
            return
        query_id = self._fresh_id()
        self._continuations[query_id] = [on_result]
        self._continuation_dest[query_id] = (repr(rule_location), "ruleQuery", rid)
        payload = {
            "type": "ruleQuery",
            "qid": query_id,
            "rid": rid,
            "spec": spec.name,
            "ret": self.node,
            "parent": (self.node, list(parent_key)),
            "depth": depth - 1,
        }
        if tc is not None:
            payload[TRACE_CONTEXT_KEY] = list(tc)
        self._send(rule_location, payload)

    # ------------------------------------------------------------------ #
    # rule-execution-vertex resolution (rules rv1-rv4 of the paper)
    # ------------------------------------------------------------------ #
    def _resolve_rid(
        self,
        rid: str,
        spec: QuerySpec,
        on_done: _Continuation,
        parent: Optional[Dependent],
        depth: int,
        tc: _Tc = None,
    ) -> None:
        tracer = self.tracer
        if tracer is not None:
            span = tracer.begin(
                "query.rule", cat="query", host=self.node, trace=tc, rid=rid, depth=depth
            )
            tc = span.context()
            on_done = _end_with(span, on_done)
        key: CacheKey = ("r", spec.name, rid)
        if spec.use_cache:
            entry = self.cache.get(key, budget=depth)
            if entry is not None:
                if parent is not None:
                    self.cache.add_dependent(key, parent[0], parent[1])
                on_done(entry.result, entry.height)
                return
        if depth <= 0:
            on_done(spec.missing(), None)
            return

        record = self._attach_or_open(key, depth, parent, on_done)
        if record is None:
            return

        rule_entry = self.store.rule_exec(rid)
        if rule_entry is None or not spec.allow_rule(rule_entry.rule_label, self.node):
            # As for unknown tuple vertices: the missing answer itself is
            # not cached, but cached ancestors embedding it must remain
            # reachable by invalidation should the ruleExec row appear.
            if spec.use_cache and parent is not None:
                self.cache.add_dependent(key, parent[0], parent[1])
            self._drop_record(record)
            on_done(spec.missing(), 1)
            return

        children = list(rule_entry.input_vids)

        def finish(results: List[Any], height: _Height) -> None:
            self._finish_resolution(
                record,
                spec,
                spec.f_rule(list(results), rule_entry.rule_label, self.node),
                height,
            )

        if not children:
            finish([], 1)
            return

        fan_in = _SlotFanIn(len(children), finish)
        for index, child_vid in enumerate(children):
            # The rule executed here, so its input tuples are stored here.
            self._resolve_vid(
                child_vid,
                spec,
                fan_in.collector(index),
                parent=(self.node, key),
                depth=depth - 1,
                tc=tc,
            )

    # ------------------------------------------------------------------ #
    # cache invalidation (Section 6.1)
    # ------------------------------------------------------------------ #
    def on_tuple_update(self, fact: Fact) -> None:
        """Called by the runtime whenever a local materialized tuple changes.

        Ordinary tuples invalidate their own vertex.  Changes to the
        ``prov`` / ``ruleExec`` tables invalidate the vertex they *describe*
        instead: an update that adds (or retracts) an alternative derivation
        of a tuple leaves the tuple itself untouched, so without this the
        vertex's cached result would silently keep the old derivation set —
        the stale-dependent hole the invalidation protocol must not have.
        """
        if fact.name == PROV_TABLE:
            kind, identifier = "v", fact.values[1]
        elif fact.name == RULE_EXEC_TABLE:
            kind, identifier = "r", fact.values[1]
        else:
            kind, identifier = "v", fact_vid(fact)
        self.host.begin_turn()
        try:
            self._mark_dirty(kind, identifier)
            self._notify_dependents(self.cache.invalidate_vertex(kind, identifier))
        finally:
            self.host.end_turn()

    def _invalidate_key(self, key: CacheKey) -> None:
        self._mark_dirty(key[0], key[2], only_key=key)
        self._notify_dependents(self.cache.invalidate(key))

    def _mark_dirty(
        self, kind: str, identifier: str, only_key: Optional[CacheKey] = None
    ) -> None:
        """Taint pending resolutions whose vertex was just invalidated."""
        slots = self._inflight_index.get((kind, identifier))
        if not slots:
            return
        for slot in slots:
            if only_key is None or slot[0] == only_key:
                self._inflight[slot].dirty = True

    def _notify_dependents(self, dependents: Sequence[Dependent]) -> None:
        for node, parent_key in dependents:
            if node == self.node:
                self._invalidate_key(parent_key)
            else:
                self._send(node, {"type": "invalidate", "key": list(parent_key)})

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def query_stats(self) -> Dict[str, int]:
        """Counters for this node's query engine (see ``QUERY_COUNTER_KEYS``)."""
        cache = self.cache.stats()
        return {
            "queries_started": self.queries_started,
            "queries_completed": self.queries_completed,
            "coalesced_inflight": self.coalesced_inflight,
            "coalesced_roots": self.coalesced_roots,
            "stale_drops": self.stale_drops,
            "deadline_expirations": self.deadline_expirations,
            "late_drops": self.late_drops,
            "cache_entries": cache["entries"],
            "cache_hits": cache["hits"],
            "cache_misses": cache["misses"],
            "cache_evictions": cache["evictions"],
            "cache_invalidations": cache["invalidations"],
            "batches_sent": self.host.batches_sent,
            "messages_batched": self.host.messages_batched,
        }

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _fresh_id(self) -> str:
        self._sequence += 1
        return f"{self.node}#{self._sequence}"
