"""Distributed querying of reference-based provenance (Section 5).

The provenance of a tuple is reconstructed by recursively traversing the
distributed ``prov`` / ``ruleExec`` tables: the node storing the tuple looks
up its derivations in ``prov``, asks each rule's location for the rule
execution metadata (``ruleExec``), which in turn resolves the provenance of
the rule's input tuples, until base tuples are reached.  Results flow back
along the reverse path.

The paper expresses this traversal as ten NDlog rules (``edb1``, ``idb1`` –
``idb4``, ``rv1`` – ``rv4``) customized by three user-defined functions —
``f_pEDB``, ``f_pIDB`` and ``f_pRULE``.  This module implements the same
protocol as an explicit distributed service (one
:class:`ProvenanceQueryService` per node exchanging messages over the
simulated network), parameterized by a :class:`QuerySpec` holding the three
UDFs plus the traversal order, threshold, projection filters and caching
policy of Section 6.  Implementing the traversal natively rather than as
NDlog rules keeps the continuation bookkeeping explicit while preserving the
message pattern (and therefore the bandwidth / latency behaviour) of the
paper's rules.

Message kinds exchanged (all under the ``"prov"`` message kind, so query
traffic can be separated from protocol maintenance traffic in the traffic
statistics):

* ``provQuery`` / ``provResult`` — resolve a tuple vertex (rule ``idb2`` /
  ``idb4``);
* ``ruleQuery`` / ``ruleResult`` — resolve a rule execution vertex (rules
  ``rv1`` – ``rv4``);
* ``invalidate`` — cache invalidation flag (Section 6.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..datalog.ast import Fact
from ..net.host import Host
from ..net.message import Message
from .cache import CacheKey, QueryResultCache
from .errors import QueryError
from .storage import ProvenanceStore
from .vid import fact_vid

__all__ = [
    "TraversalOrder",
    "QuerySpec",
    "QueryOutcome",
    "ProvenanceQueryService",
    "PROV_MESSAGE_KIND",
]

PROV_MESSAGE_KIND = "prov"

#: Default bound on recursion depth, guarding against (disallowed) cyclic
#: provenance and runaway traversals.
DEFAULT_MAX_DEPTH = 64


class TraversalOrder(Enum):
    """Order in which alternative derivations of a tuple are explored."""

    BFS = "bfs"
    DFS = "dfs"
    DFS_THRESHOLD = "dfs-threshold"
    RANDOM_MOONWALK = "random-moonwalk"


@dataclass
class QuerySpec:
    """A provenance query customization.

    The three user-defined functions mirror Section 5.2:

    * ``f_edb(vid, fact, node)`` — annotation of a base tuple;
    * ``f_idb(results, vid, node)`` — combine the annotations of a tuple's
      alternative derivations (the ``+`` of the semiring);
    * ``f_rule(results, rule_label, node)`` — combine the annotations of a
      rule execution's inputs (the ``·`` of the semiring).
    """

    name: str
    f_edb: Callable[[str, Optional[Fact], Any], Any]
    f_idb: Callable[[Sequence[Any], str, Any], Any]
    f_rule: Callable[[Sequence[Any], str, Any], Any]
    missing: Callable[[], Any] = lambda: None
    traversal: TraversalOrder = TraversalOrder.BFS
    threshold_met: Optional[Callable[[Any], bool]] = None
    moonwalk_width: int = 1
    node_filter: Optional[Callable[[Any], bool]] = None
    rule_filter: Optional[Callable[[str, Any], bool]] = None
    use_cache: bool = False
    max_depth: int = DEFAULT_MAX_DEPTH
    moonwalk_seed: int = 0

    def allow_node(self, node: Any) -> bool:
        return self.node_filter is None or bool(self.node_filter(node))

    def allow_rule(self, rule_label: str, node: Any) -> bool:
        return self.rule_filter is None or bool(self.rule_filter(rule_label, node))


@dataclass
class QueryOutcome:
    """The completed result of one root provenance query."""

    query_id: str
    vid: str
    result: Any
    issued_at: float
    completed_at: float
    issuer: Any
    target: Any

    @property
    def latency(self) -> float:
        return self.completed_at - self.issued_at


@dataclass
class _PendingAggregation:
    """Bookkeeping for an in-progress combination of child results."""

    expected: int
    results: List[Any] = field(default_factory=list)


class ProvenanceQueryService:
    """The provenance query protocol endpoint running at one node."""

    def __init__(
        self,
        host: Host,
        store: ProvenanceStore,
        clock: Callable[[], float],
    ):
        self.host = host
        self.store = store
        self.node = host.address
        self.clock = clock
        self.cache = QueryResultCache(self.node)
        self._specs: Dict[str, QuerySpec] = {}
        self._continuations: Dict[str, Callable[[Any], None]] = {}
        self._sequence = 0
        self._rng = random.Random(f"moonwalk-{self.node}")
        self.queries_started = 0
        self.queries_completed = 0
        host.register_handler(PROV_MESSAGE_KIND, self._on_message)

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def register_spec(self, spec: QuerySpec) -> None:
        """Install a query customization (done on every node ahead of time)."""
        self._specs[spec.name] = spec

    def spec(self, name: str) -> QuerySpec:
        try:
            return self._specs[name]
        except KeyError:
            raise QueryError(
                f"node {self.node!r} has no registered query spec {name!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # public query API
    # ------------------------------------------------------------------ #
    def query(
        self,
        vid: str,
        target_node: Any,
        spec_name: str,
        on_complete: Callable[[QueryOutcome], None],
    ) -> str:
        """Issue a root query for *vid* stored at *target_node*.

        ``on_complete`` is invoked (at this node) once the provenance result
        has been computed and shipped back.
        """
        spec = self.spec(spec_name)
        query_id = self._fresh_id()
        issued_at = self.clock()
        self.queries_started += 1

        def finish(result: Any) -> None:
            self.queries_completed += 1
            on_complete(
                QueryOutcome(
                    query_id=query_id,
                    vid=vid,
                    result=result,
                    issued_at=issued_at,
                    completed_at=self.clock(),
                    issuer=self.node,
                    target=target_node,
                )
            )

        if target_node == self.node:
            self._resolve_vid(vid, spec, finish, parent=None, depth=spec.max_depth)
        else:
            self._continuations[query_id] = finish
            self.host.send(
                target_node,
                PROV_MESSAGE_KIND,
                {
                    "type": "provQuery",
                    "qid": query_id,
                    "vid": vid,
                    "spec": spec_name,
                    "ret": self.node,
                    "parent": None,
                    "depth": spec.max_depth,
                },
            )
        return query_id

    def query_fact(
        self,
        fact: Fact,
        target_node: Any,
        spec_name: str,
        on_complete: Callable[[QueryOutcome], None],
    ) -> str:
        """Convenience wrapper computing the VID of *fact* first."""
        return self.query(fact_vid(fact), target_node, spec_name, on_complete)

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #
    def _on_message(self, message: Message) -> None:
        payload = message.payload
        kind = payload.get("type")
        if kind == "provQuery":
            self._handle_prov_query(payload)
        elif kind == "ruleQuery":
            self._handle_rule_query(payload)
        elif kind in ("provResult", "ruleResult"):
            continuation = self._continuations.pop(payload["qid"], None)
            if continuation is not None:
                continuation(payload["result"])
        elif kind == "invalidate":
            self._invalidate_key(tuple(payload["key"]))
        else:  # pragma: no cover - defensive
            raise QueryError(f"unknown provenance message type {kind!r}")

    def _handle_prov_query(self, payload: Dict[str, Any]) -> None:
        spec = self.spec(payload["spec"])
        parent = payload.get("parent")
        if parent is not None:
            parent = (parent[0], tuple(parent[1]))

        def reply(result: Any) -> None:
            self.host.send(
                payload["ret"],
                PROV_MESSAGE_KIND,
                {
                    "type": "provResult",
                    "qid": payload["qid"],
                    "vid": payload["vid"],
                    "result": result,
                },
            )

        self._resolve_vid(
            payload["vid"], spec, reply, parent=parent, depth=payload.get("depth", spec.max_depth)
        )

    def _handle_rule_query(self, payload: Dict[str, Any]) -> None:
        spec = self.spec(payload["spec"])
        parent = payload.get("parent")
        if parent is not None:
            parent = (parent[0], tuple(parent[1]))

        def reply(result: Any) -> None:
            self.host.send(
                payload["ret"],
                PROV_MESSAGE_KIND,
                {
                    "type": "ruleResult",
                    "qid": payload["qid"],
                    "rid": payload["rid"],
                    "result": result,
                },
            )

        self._resolve_rid(
            payload["rid"], spec, reply, parent=parent, depth=payload.get("depth", spec.max_depth)
        )

    # ------------------------------------------------------------------ #
    # tuple-vertex resolution (rules edb1, idb1-idb4 of the paper)
    # ------------------------------------------------------------------ #
    def _resolve_vid(
        self,
        vid: str,
        spec: QuerySpec,
        on_done: Callable[[Any], None],
        parent: Optional[Tuple[Any, CacheKey]],
        depth: int,
    ) -> None:
        key: CacheKey = ("v", spec.name, vid)
        if spec.use_cache and parent is not None:
            self.cache.add_dependent(key, parent[0], parent[1])
        if spec.use_cache:
            entry = self.cache.get(key)
            if entry is not None:
                on_done(entry.result)
                return
        if depth <= 0:
            on_done(spec.missing())
            return

        entries = self.store.prov_entries(vid)
        if not entries:
            on_done(spec.missing())
            return

        fact = self.store.fact_for_vid(vid)
        initial_results: List[Any] = []
        if any(entry.is_base for entry in entries):
            initial_results.append(spec.f_edb(vid, fact, self.node))
        derivations = [
            entry
            for entry in entries
            if not entry.is_base and spec.allow_node(entry.rule_location)
        ]

        def finish(results: List[Any]) -> None:
            result = spec.f_idb(list(results), vid, self.node)
            if spec.use_cache:
                self.cache.put(key, result, self.clock())
            on_done(result)

        if not derivations:
            finish(initial_results)
            return

        if spec.traversal is TraversalOrder.RANDOM_MOONWALK:
            width = max(1, min(spec.moonwalk_width, len(derivations)))
            derivations = self._rng.sample(derivations, width)

        if spec.traversal in (TraversalOrder.BFS, TraversalOrder.RANDOM_MOONWALK):
            self._resolve_derivations_parallel(
                vid, key, spec, derivations, initial_results, finish, depth
            )
        else:
            self._resolve_derivations_sequential(
                vid, key, spec, derivations, initial_results, finish, depth
            )

    def _resolve_derivations_parallel(
        self,
        vid: str,
        key: CacheKey,
        spec: QuerySpec,
        derivations: Sequence[Any],
        initial_results: List[Any],
        finish: Callable[[List[Any]], None],
        depth: int,
    ) -> None:
        pending = _PendingAggregation(expected=len(derivations), results=list(initial_results))

        def on_child(result: Any) -> None:
            pending.results.append(result)
            pending.expected -= 1
            if pending.expected == 0:
                finish(pending.results)

        for entry in derivations:
            self._ask_rule_vertex(entry.rid, entry.rule_location, spec, key, on_child, depth)

    def _resolve_derivations_sequential(
        self,
        vid: str,
        key: CacheKey,
        spec: QuerySpec,
        derivations: Sequence[Any],
        initial_results: List[Any],
        finish: Callable[[List[Any]], None],
        depth: int,
    ) -> None:
        results: List[Any] = list(initial_results)
        remaining = list(derivations)

        def threshold_reached() -> bool:
            if spec.traversal is not TraversalOrder.DFS_THRESHOLD:
                return False
            if spec.threshold_met is None or not results:
                return False
            partial = spec.f_idb(list(results), vid, self.node)
            return bool(spec.threshold_met(partial))

        def advance() -> None:
            if not remaining or threshold_reached():
                finish(results)
                return
            entry = remaining.pop(0)

            def on_child(result: Any) -> None:
                results.append(result)
                advance()

            self._ask_rule_vertex(
                entry.rid, entry.rule_location, spec, key, on_child, depth
            )

        advance()

    def _ask_rule_vertex(
        self,
        rid: str,
        rule_location: Any,
        spec: QuerySpec,
        parent_key: CacheKey,
        on_result: Callable[[Any], None],
        depth: int,
    ) -> None:
        """Resolve a rule-execution vertex, locally or via a remote query."""
        if rule_location == self.node:
            self._resolve_rid(
                rid, spec, on_result, parent=(self.node, parent_key), depth=depth - 1
            )
            return
        query_id = self._fresh_id()
        self._continuations[query_id] = on_result
        self.host.send(
            rule_location,
            PROV_MESSAGE_KIND,
            {
                "type": "ruleQuery",
                "qid": query_id,
                "rid": rid,
                "spec": spec.name,
                "ret": self.node,
                "parent": (self.node, list(parent_key)),
                "depth": depth - 1,
            },
        )

    # ------------------------------------------------------------------ #
    # rule-execution-vertex resolution (rules rv1-rv4 of the paper)
    # ------------------------------------------------------------------ #
    def _resolve_rid(
        self,
        rid: str,
        spec: QuerySpec,
        on_done: Callable[[Any], None],
        parent: Optional[Tuple[Any, CacheKey]],
        depth: int,
    ) -> None:
        key: CacheKey = ("r", spec.name, rid)
        if spec.use_cache and parent is not None:
            self.cache.add_dependent(key, parent[0], parent[1])
        if spec.use_cache:
            entry = self.cache.get(key)
            if entry is not None:
                on_done(entry.result)
                return
        if depth <= 0:
            on_done(spec.missing())
            return

        rule_entry = self.store.rule_exec(rid)
        if rule_entry is None or not spec.allow_rule(rule_entry.rule_label, self.node):
            on_done(spec.missing())
            return

        children = list(rule_entry.input_vids)

        def finish(results: List[Any]) -> None:
            result = spec.f_rule(list(results), rule_entry.rule_label, self.node)
            if spec.use_cache:
                self.cache.put(key, result, self.clock())
            on_done(result)

        if not children:
            finish([])
            return

        pending = _PendingAggregation(expected=len(children))

        def on_child(result: Any) -> None:
            pending.results.append(result)
            pending.expected -= 1
            if pending.expected == 0:
                finish(pending.results)

        for child_vid in children:
            # The rule executed here, so its input tuples are stored here.
            self._resolve_vid(
                child_vid, spec, on_child, parent=(self.node, key), depth=depth - 1
            )

    # ------------------------------------------------------------------ #
    # cache invalidation (Section 6.1)
    # ------------------------------------------------------------------ #
    def on_tuple_update(self, fact: Fact) -> None:
        """Called by the runtime whenever a local materialized tuple changes."""
        vid = fact_vid(fact)
        self._notify_dependents(self.cache.invalidate_vertex("v", vid))

    def _invalidate_key(self, key: CacheKey) -> None:
        self._notify_dependents(self.cache.invalidate(key))

    def _notify_dependents(self, dependents) -> None:
        for node, parent_key in dependents:
            if node == self.node:
                self._invalidate_key(parent_key)
            else:
                self.host.send(
                    node,
                    PROV_MESSAGE_KIND,
                    {"type": "invalidate", "key": list(parent_key)},
                )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _fresh_id(self) -> str:
        self._sequence += 1
        return f"{self.node}#{self._sequence}"
