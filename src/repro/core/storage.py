"""Per-node access to the provenance tables (the storage model of Section 4.1).

The provenance rewrite maintains two ordinary NDlog tables at every node:

* ``prov(@Loc, VID, RID, RLoc)`` — the tuple vertex ``VID`` stored at
  ``Loc`` is directly derivable from the rule execution ``RID`` residing at
  ``RLoc``; base tuples carry a ``null`` RID;
* ``ruleExec(@RLoc, RID, R, VIDList)`` — the metadata of one rule execution:
  the rule label ``R`` and the VIDs of its input tuples.

:class:`ProvenanceStore` wraps one node's
:class:`~repro.datalog.engine.NDlogEngine` and gives the distributed query
service typed access to these tables, plus the "systems table that maps VIDs
to tuples" the paper assumes (here a lazily-maintained index over the node's
materialized tables).

This is the per-node *view* layer of the pluggable storage engine
(:mod:`repro.storage`): the rows themselves live in the interned-row
:class:`~repro.storage.memory.Table` tier, every network's
:class:`~repro.storage.backend.StorageBackend` receives each node's store
through ``attach_node`` (serving cross-node ``fact_for_vid`` lookups and,
for the sqlite backend, mirroring the same prov/ruleExec rows and VID
index to disk), and checkpoint restore reloads the tables underneath this
view without it noticing — the lazily-built VID index is rebuilt on first
use from whatever the tables then contain.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..datalog.ast import Fact, is_event_predicate
from ..datalog.engine import NDlogEngine
from .rewrite import PROV_TABLE, RULE_EXEC_TABLE
from .vid import fact_vid

__all__ = ["ProvEntry", "RuleExecEntry", "ProvenanceStore"]


class ProvEntry:
    """One row of the ``prov`` table."""

    __slots__ = ("location", "vid", "rid", "rule_location")

    def __init__(self, location: Any, vid: str, rid: Optional[str], rule_location: Any):
        self.location = location
        self.vid = vid
        self.rid = rid
        self.rule_location = rule_location

    @property
    def is_base(self) -> bool:
        """True when this entry marks a base tuple (null RID)."""
        return self.rid is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rid = "null" if self.rid is None else self.rid[:8]
        return f"ProvEntry(loc={self.location}, vid={self.vid[:8]}, rid={rid})"


class RuleExecEntry:
    """One row of the ``ruleExec`` table."""

    __slots__ = ("rule_location", "rid", "rule_label", "input_vids")

    def __init__(
        self, rule_location: Any, rid: str, rule_label: str, input_vids: Sequence[str]
    ):
        self.rule_location = rule_location
        self.rid = rid
        self.rule_label = rule_label
        self.input_vids = tuple(input_vids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RuleExecEntry(rule={self.rule_label}, loc={self.rule_location}, "
            f"inputs={len(self.input_vids)})"
        )


class ProvenanceStore:
    """Typed access to one node's slice of the distributed provenance graph."""

    def __init__(self, engine: NDlogEngine):
        self.engine = engine
        self._vid_index: Dict[str, Tuple[str, Tuple[Any, ...]]] = {}
        # The VID -> tuple index is built lazily on first use and then
        # maintained *incrementally* through the engine's update listener —
        # the old rebuild-the-world-per-miss behaviour was O(all rows) per
        # unresolvable VID, which query workloads hit constantly.  Until the
        # first build the listener is a no-op, so nodes that never resolve a
        # VID pay nothing.
        self._vid_index_built = False
        engine.add_update_listener(self._on_tuple_update)

    @property
    def node(self) -> Any:
        return self.engine.address

    # ------------------------------------------------------------------ #
    # prov table
    # ------------------------------------------------------------------ #
    def prov_entries(self, vid: str) -> List[ProvEntry]:
        """All local derivations of the tuple vertex *vid*."""
        table = self.engine.catalog.table(PROV_TABLE)
        entries: List[ProvEntry] = []
        for row in table.lookup({1: vid}):
            entries.append(ProvEntry(row[0], row[1], row[2], row[3]))
        return entries

    def derivation_count(self, vid: str) -> int:
        """Number of alternative derivations recorded locally for *vid*."""
        return len(self.prov_entries(vid))

    def is_base(self, vid: str) -> bool:
        """True when *vid* has a base-tuple (null RID) prov entry locally."""
        return any(entry.is_base for entry in self.prov_entries(vid))

    def all_prov_entries(self) -> List[ProvEntry]:
        table = self.engine.catalog.table(PROV_TABLE)
        return [ProvEntry(row[0], row[1], row[2], row[3]) for row in table.rows()]

    # ------------------------------------------------------------------ #
    # ruleExec table
    # ------------------------------------------------------------------ #
    def rule_exec(self, rid: str) -> Optional[RuleExecEntry]:
        """Look up the rule execution vertex *rid* stored at this node."""
        table = self.engine.catalog.table(RULE_EXEC_TABLE)
        for row in table.lookup({1: rid}):
            input_vids = row[3] if isinstance(row[3], (list, tuple)) else (row[3],)
            return RuleExecEntry(row[0], row[1], row[2], tuple(input_vids))
        return None

    def all_rule_exec_entries(self) -> List[RuleExecEntry]:
        table = self.engine.catalog.table(RULE_EXEC_TABLE)
        entries = []
        for row in table.rows():
            input_vids = row[3] if isinstance(row[3], (list, tuple)) else (row[3],)
            entries.append(RuleExecEntry(row[0], row[1], row[2], tuple(input_vids)))
        return entries

    # ------------------------------------------------------------------ #
    # VID -> tuple resolution (the "systems table" of Section 5.2.1)
    # ------------------------------------------------------------------ #
    def fact_for_vid(self, vid: str) -> Optional[Fact]:
        """Resolve *vid* back to the locally stored tuple, if any."""
        if not self._vid_index_built:
            self._rebuild_vid_index()
        cached = self._vid_index.get(vid)
        if cached is None:
            return None
        name, row = cached
        return Fact(name, row)

    def _on_tuple_update(self, action: str, fact: Fact) -> None:
        """Engine update listener: keep the VID index consistent once built."""
        if not self._vid_index_built:
            return
        name = fact.name
        if name in (PROV_TABLE, RULE_EXEC_TABLE) or is_event_predicate(name):
            return
        vid = fact_vid(fact)
        if action == "insert":
            self._vid_index[vid] = (name, tuple(fact.values))
        else:
            self._vid_index.pop(vid, None)

    def _rebuild_vid_index(self) -> None:
        self._vid_index.clear()
        for table in self.engine.catalog.tables():
            if table.name in (PROV_TABLE, RULE_EXEC_TABLE):
                continue
            if is_event_predicate(table.name):
                continue
            for row in table.rows():
                vid = fact_vid(Fact(table.name, row))
                self._vid_index[vid] = (table.name, row)
        self._vid_index_built = True

    # ------------------------------------------------------------------ #
    # statistics helpers (used by tests and EXPERIMENTS.md reporting)
    # ------------------------------------------------------------------ #
    def prov_row_count(self) -> int:
        return len(self.engine.catalog.table(PROV_TABLE))

    def rule_exec_row_count(self) -> int:
        return len(self.engine.catalog.table(RULE_EXEC_TABLE))
