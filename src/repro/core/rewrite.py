"""Automatic provenance-maintenance rewrite (Algorithm 1 of the paper).

Given a localized NDlog program, :class:`ProvenanceRewriter` produces a new
program that computes the same derivations *and* maintains the distributed
provenance tables ``prov(@Loc, VID, RID, RLoc)`` and
``ruleExec(@RLoc, RID, R, VIDList)`` (Section 4.1).

For every non-aggregate rule ``rid h(@H1,...,Ho) :- t1(@X,...), ..., cp.``
five rules are generated, exactly mirroring Algorithm 1:

1. a local event ``eProvTmp_rid`` carrying the derived head values plus the
   provenance bookkeeping attributes (RLoc, R, List of input VIDs, RID);
2. ``ruleExec`` insertion at the rule's location;
3. a message event ``eProvMsg_rid`` shipped to the head's location — the
   only cross-node message, carrying just two extra attributes (RID, RLoc);
4. the original head derivation from the message event;
5. the ``prov`` entry at the head's location.

MIN / MAX aggregate rules are handled as described in Section 4.2.2: the
original aggregate rule is kept unchanged and the provenance of the derived
tuple is attributed to the winning input tuple, found by joining the derived
tuple back against the rule body.  Other aggregates raise
:class:`~repro.core.errors.RewriteError`, matching the paper's restriction.

Base (EDB) tuples get ``prov`` entries with a ``null`` RID via one generated
rule per base relation, so the recursive provenance query's base case
(rule ``edb1`` in Section 5.1) terminates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.ast import (
    Assignment,
    Atom,
    Condition,
    Fact,
    Program,
    Rule,
    TableDecl,
    is_event_predicate,
)
from ..datalog.localize import body_location
from ..datalog.terms import (
    AggregateSpec,
    Constant,
    FunctionCall,
    Term,
    Variable,
)
from .errors import RewriteError

__all__ = ["ProvenanceRewriter", "rewrite_program", "PROV_TABLE", "RULE_EXEC_TABLE"]

PROV_TABLE = "prov"
RULE_EXEC_TABLE = "ruleExec"

#: Aggregates the provenance rewrite supports (Section 4.2.2).
_SUPPORTED_AGGREGATES = ("min", "max")


class ProvenanceRewriter:
    """Rewrites an NDlog program to maintain reference-based provenance."""

    def __init__(self, program: Program):
        self.program = program

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def rewrite(self) -> Program:
        """Return the provenance-maintaining version of the input program."""
        output = Program(name=f"{self.program.name}+prov")
        for declaration in self.program.declarations:
            output.add_declaration(declaration)
        output.add_declaration(TableDecl(PROV_TABLE, 4, (1, 2)))
        output.add_declaration(TableDecl(RULE_EXEC_TABLE, 4, (1,)))
        for fact in self.program.facts:
            output.add_fact(fact)

        for rule in self.program.rules:
            if not rule.body_atoms:
                raise RewriteError(
                    f"rule {rule.label} has no body atoms and cannot be rewritten"
                )
            if rule.is_aggregate_rule:
                for generated in self._rewrite_aggregate_rule(rule):
                    output.add_rule(generated)
            else:
                for generated in self._rewrite_regular_rule(rule):
                    output.add_rule(generated)

        for generated in self._edb_prov_rules():
            output.add_rule(generated)
        output.validate()
        return output

    # ------------------------------------------------------------------ #
    # regular rules (Algorithm 1)
    # ------------------------------------------------------------------ #
    def _rewrite_regular_rule(self, rule: Rule) -> List[Rule]:
        used = set(rule.variables())
        fresh = _FreshNames(used)
        head = rule.head
        arity = head.arity

        rloc_var = fresh.make("ProvRLoc")
        rid_var = fresh.make("ProvRID")
        list_var = fresh.make("ProvList")
        rule_name_var = fresh.make("ProvR")
        head_vars = [fresh.make(f"ProvH{index}") for index in range(arity)]

        location_var = self._body_location_variable(rule)

        # --- rule 1: eProvTmp carrying head values + provenance attributes
        tmp_name = _tmp_event_name(rule.label)
        msg_name = _msg_event_name(rule.label)
        pid_assignments, pid_vars = self._pid_assignments(rule, fresh)
        tmp_body: List = list(rule.body)
        tmp_body.append(Assignment(Variable(rloc_var), Variable(location_var)))
        tmp_body.extend(pid_assignments)
        tmp_body.append(
            Assignment(
                Variable(list_var),
                FunctionCall("f_append", [Variable(name) for name in pid_vars]),
            )
        )
        tmp_body.append(
            Assignment(
                Variable(rid_var),
                FunctionCall(
                    "f_sha1",
                    [Constant(rule.label), Variable(rloc_var), Variable(list_var)],
                ),
            )
        )
        tmp_head = Atom(
            tmp_name,
            [Variable(rloc_var), *head.args, Constant(rule.label),
             Variable(rid_var), Variable(list_var)],
            location_index=0,
        )
        rule1 = Rule(f"{rule.label}_ptmp", tmp_head, tmp_body)

        # The event atom as seen by downstream rules (all-fresh variables).
        tmp_atom = Atom(
            tmp_name,
            [Variable(rloc_var), *[Variable(name) for name in head_vars],
             Variable(rule_name_var), Variable(rid_var), Variable(list_var)],
            location_index=0,
        )

        # --- rule 2: ruleExec at the rule's location
        rule2 = Rule(
            f"{rule.label}_pexec",
            Atom(
                RULE_EXEC_TABLE,
                [Variable(rloc_var), Variable(rid_var), Variable(rule_name_var),
                 Variable(list_var)],
                location_index=0,
            ),
            [tmp_atom],
        )

        # --- rule 3: message event to the head location (RID, RLoc piggybacked)
        rule3 = Rule(
            f"{rule.label}_pmsg",
            Atom(
                msg_name,
                [*[Variable(name) for name in head_vars], Variable(rid_var),
                 Variable(rloc_var)],
                location_index=head.location_index,
            ),
            [tmp_atom],
        )

        msg_atom = Atom(
            msg_name,
            [*[Variable(name) for name in head_vars], Variable(rid_var),
             Variable(rloc_var)],
            location_index=head.location_index,
        )

        # --- rule 4: the original derivation
        rule4 = Rule(
            f"{rule.label}_phead",
            Atom(head.name, [Variable(name) for name in head_vars],
                 location_index=head.location_index),
            [msg_atom],
        )

        # --- rule 5: prov entry at the head location
        vid_var = fresh.make("ProvVID")
        rule5 = Rule(
            f"{rule.label}_pprov",
            Atom(
                PROV_TABLE,
                [Variable(head_vars[head.location_index]), Variable(vid_var),
                 Variable(rid_var), Variable(rloc_var)],
                location_index=0,
            ),
            [
                msg_atom,
                Assignment(
                    Variable(vid_var),
                    FunctionCall(
                        "f_sha1",
                        [Constant(head.name)] + [Variable(name) for name in head_vars],
                    ),
                ),
            ],
        )
        return [rule1, rule2, rule3, rule4, rule5]

    # ------------------------------------------------------------------ #
    # aggregate rules (MIN / MAX)
    # ------------------------------------------------------------------ #
    def _rewrite_aggregate_rule(self, rule: Rule) -> List[Rule]:
        position, spec = rule.head.aggregate()
        if spec.func not in _SUPPORTED_AGGREGATES:
            raise RewriteError(
                f"rule {rule.label}: aggregate {spec.func.upper()} is not supported "
                "by the provenance rewrite (only MIN and MAX are, per Section 4.2.2)"
            )
        if len(spec.variables_) != 1:
            raise RewriteError(
                f"rule {rule.label}: MIN/MAX aggregates must aggregate exactly one "
                "variable"
            )
        location_var = self._body_location_variable(rule)
        head = rule.head
        head_location = head.location_term
        if not isinstance(head_location, Variable) or head_location.name != location_var:
            raise RewriteError(
                f"rule {rule.label}: aggregate rules must derive their head at the "
                "body location"
            )

        used = set(rule.variables())
        fresh = _FreshNames(used)
        aggregated_var = spec.variables_[0]

        # The derived tuple's attributes: the head args with the aggregate
        # position replaced by the aggregated variable (the winning value).
        derived_args: List[Term] = []
        for index, arg in enumerate(head.args):
            if index == position:
                derived_args.append(Variable(aggregated_var))
            else:
                derived_args.append(arg)
        derived_atom = Atom(head.name, derived_args, head.location_index)

        rloc_var = fresh.make("ProvRLoc")
        rid_var = fresh.make("ProvRID")
        list_var = fresh.make("ProvList")
        vid_var = fresh.make("ProvVID")
        rule_name_var = fresh.make("ProvR")

        pid_assignments, pid_vars = self._pid_assignments(rule, fresh)
        tmp_name = _tmp_event_name(rule.label)
        tmp_body: List = [derived_atom, *rule.body]
        tmp_body.append(Assignment(Variable(rloc_var), Variable(location_var)))
        tmp_body.extend(pid_assignments)
        tmp_body.append(
            Assignment(
                Variable(list_var),
                FunctionCall("f_append", [Variable(name) for name in pid_vars]),
            )
        )
        tmp_body.append(
            Assignment(
                Variable(rid_var),
                FunctionCall(
                    "f_sha1",
                    [Constant(rule.label), Variable(rloc_var), Variable(list_var)],
                ),
            )
        )
        tmp_head = Atom(
            tmp_name,
            [Variable(rloc_var), *derived_args, Constant(rule.label),
             Variable(rid_var), Variable(list_var)],
            location_index=0,
        )
        rule_tmp = Rule(f"{rule.label}_ptmp", tmp_head, tmp_body)

        # Event atom with fresh variables for downstream rules.
        arity = head.arity
        head_vars = [fresh.make(f"ProvH{index}") for index in range(arity)]
        tmp_atom = Atom(
            tmp_name,
            [Variable(rloc_var), *[Variable(name) for name in head_vars],
             Variable(rule_name_var), Variable(rid_var), Variable(list_var)],
            location_index=0,
        )
        rule_exec = Rule(
            f"{rule.label}_pexec",
            Atom(
                RULE_EXEC_TABLE,
                [Variable(rloc_var), Variable(rid_var), Variable(rule_name_var),
                 Variable(list_var)],
                location_index=0,
            ),
            [tmp_atom],
        )
        rule_prov = Rule(
            f"{rule.label}_pprov",
            Atom(
                PROV_TABLE,
                [Variable(head_vars[head.location_index]), Variable(vid_var),
                 Variable(rid_var), Variable(rloc_var)],
                location_index=0,
            ),
            [
                tmp_atom,
                Assignment(
                    Variable(vid_var),
                    FunctionCall(
                        "f_sha1",
                        [Constant(head.name)] + [Variable(name) for name in head_vars],
                    ),
                ),
            ],
        )
        # The original aggregate rule is kept unchanged (it performs the
        # actual derivation); provenance is attributed to the winning tuple.
        return [rule, rule_tmp, rule_exec, rule_prov]

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _body_location_variable(self, rule: Rule) -> str:
        location = body_location(rule)
        if location is None or location.startswith("<"):
            raise RewriteError(
                f"rule {rule.label}: the provenance rewrite requires a variable "
                "location specifier in the rule body"
            )
        return location

    def _pid_assignments(
        self, rule: Rule, fresh: "_FreshNames"
    ) -> Tuple[List[Assignment], List[str]]:
        """Assignments computing the VID of each body tuple (PID1..PIDn)."""
        assignments: List[Assignment] = []
        names: List[str] = []
        for index, atom in enumerate(rule.body_atoms):
            pid_var = fresh.make(f"ProvPID{index}")
            names.append(pid_var)
            assignments.append(
                Assignment(
                    Variable(pid_var),
                    FunctionCall("f_sha1", [Constant(atom.name), *atom.args]),
                )
            )
        return assignments, names

    def _edb_prov_rules(self) -> List[Rule]:
        """Generate prov entries (RID = null) for every base relation."""
        derived = set(self.program.predicates_derived())
        rules: List[Rule] = []
        seen: Set[str] = set()
        for rule in self.program.rules:
            for atom in rule.body_atoms:
                name = atom.name
                if name in derived or name in seen or is_event_predicate(name):
                    continue
                seen.add(name)
                rules.append(self._edb_prov_rule(name, atom))
        return rules

    def _edb_prov_rule(self, name: str, example_atom: Atom) -> Rule:
        arity = example_atom.arity
        location_index = example_atom.location_index
        variables = [Variable(f"ProvE{index}") for index in range(arity)]
        body_atom = Atom(name, variables, location_index)
        vid_var = Variable("ProvVID")
        return Rule(
            f"edb_{name}_pprov",
            Atom(
                PROV_TABLE,
                [variables[location_index], vid_var, Constant(None),
                 variables[location_index]],
                location_index=0,
            ),
            [
                body_atom,
                Assignment(
                    vid_var,
                    FunctionCall("f_sha1", [Constant(name), *variables]),
                ),
            ],
        )


class _FreshNames:
    """Generates variable names that do not collide with a rule's variables."""

    def __init__(self, used: Set[str]):
        self._used = set(used)

    def make(self, base: str) -> str:
        name = base
        counter = 0
        while name in self._used:
            counter += 1
            name = f"{base}_{counter}"
        self._used.add(name)
        return name


def _tmp_event_name(label: str) -> str:
    return f"eProvTmp_{label}"


def _msg_event_name(label: str) -> str:
    return f"eProvMsg_{label}"


def rewrite_program(program: Program) -> Program:
    """Convenience wrapper: rewrite *program* for provenance maintenance."""
    return ProvenanceRewriter(program).rewrite()
