"""Provenance distribution modes (Section 3, "Distribution").

ExSPAN supports four ways of maintaining provenance for a running protocol:

* :attr:`ProvenanceMode.NONE` — run the original program unchanged (the
  "No Prov." baseline of every figure);
* :attr:`ProvenanceMode.REFERENCE` — the paper's contribution: rewrite the
  program with :mod:`repro.core.rewrite` so every node maintains its slice
  of the ``prov`` / ``ruleExec`` tables and messages carry only a (RID,
  RLoc) pointer pair;
* :attr:`ProvenanceMode.VALUE` — value-based distributed provenance: each
  tuple travels with its full provenance annotation.  Following the paper's
  evaluation ("Value-based Prov. (BDD)") the annotation is a BDD over base
  tuples; a polynomial-carrying policy is also provided for ablations;
* :attr:`ProvenanceMode.CENTRALIZED` — reference-based maintenance plus
  relaying every ``prov`` / ``ruleExec`` entry to a collector node, the
  traditional centralized approach the paper argues against.

:func:`prepare_program` converts a protocol program + mode into the program
actually loaded on every node and an optional per-node
:class:`~repro.datalog.engine.AnnotationPolicy` factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Optional, Sequence, Tuple

from ..datalog.ast import Atom, Program, Rule, TableDecl
from ..datalog.engine import AnnotationPolicy
from ..datalog.ast import Fact
from ..datalog.terms import Constant, Variable
from .bdd import Bdd, BddManager
from .errors import ProvenanceError
from .rewrite import PROV_TABLE, RULE_EXEC_TABLE, rewrite_program
from .semiring import ProvenanceExpression, product_of, sum_of, var
from .vid import fact_vid

__all__ = [
    "ProvenanceMode",
    "BddValuePolicy",
    "PolynomialValuePolicy",
    "PreparedProgram",
    "prepare_program",
    "CENTRAL_PROV_TABLE",
    "CENTRAL_RULE_EXEC_TABLE",
]

CENTRAL_PROV_TABLE = "provCentral"
CENTRAL_RULE_EXEC_TABLE = "ruleExecCentral"


class ProvenanceMode(Enum):
    """How provenance is maintained and distributed."""

    NONE = "none"
    REFERENCE = "reference"
    VALUE = "value"
    CENTRALIZED = "centralized"


class BddValuePolicy(AnnotationPolicy):
    """Value-based provenance carried as BDDs over base-tuple variables.

    All nodes share one :class:`BddManager` — in a real deployment each node
    runs its own BDD library with an agreed variable naming (the VIDs), so a
    shared manager changes nothing observable while keeping the simulation
    simple.
    """

    def __init__(self, manager: Optional[BddManager] = None):
        self.manager = manager if manager is not None else BddManager()

    def base(self, fact: Fact) -> Bdd:
        return self.manager.var(fact_vid(fact))

    def combine(self, rule: Rule, body_annotations: Sequence[Bdd], node: Any) -> Bdd:
        result = self.manager.true()
        for annotation in body_annotations:
            if annotation is None:
                continue
            result = result & annotation
        return result

    def merge(self, existing: Bdd, new: Bdd) -> Bdd:
        return existing | new

    def size(self, annotation: Bdd) -> int:
        return annotation.wire_size() if annotation is not None else 0


class PolynomialValuePolicy(AnnotationPolicy):
    """Value-based provenance carried as uncompressed provenance polynomials.

    This is the naive value-based scheme (no BDD condensation); it is used
    by the ablation benchmark comparing annotation encodings.
    """

    def base(self, fact: Fact) -> ProvenanceExpression:
        return var(fact_vid(fact))

    def combine(
        self, rule: Rule, body_annotations: Sequence[ProvenanceExpression], node: Any
    ) -> ProvenanceExpression:
        factors = [annotation for annotation in body_annotations if annotation is not None]
        return product_of(factors, rule=rule.label, location=str(node))

    def merge(
        self, existing: ProvenanceExpression, new: ProvenanceExpression
    ) -> ProvenanceExpression:
        # Deduplicate alternative derivations so that repeated refreshes of
        # the same provenance converge (the merge is idempotent).
        if new == existing:
            return existing
        from .semiring import Sum  # local import to avoid a cycle at module load

        if isinstance(existing, Sum) and new in existing.terms:
            return existing
        return sum_of([existing, new])

    def size(self, annotation: ProvenanceExpression) -> int:
        return annotation.wire_size() if annotation is not None else 0


@dataclass
class PreparedProgram:
    """The program to load on every node plus per-node annotation policies."""

    program: Program
    mode: ProvenanceMode
    annotation_policy_factory: Optional[Callable[[Any], AnnotationPolicy]] = None
    collector: Optional[Any] = None


def prepare_program(
    program: Program,
    mode: ProvenanceMode,
    collector: Optional[Any] = None,
    value_policy: str = "bdd",
) -> PreparedProgram:
    """Prepare *program* for execution under the given provenance *mode*.

    ``collector`` names the node that receives all provenance entries in
    CENTRALIZED mode.  ``value_policy`` selects ``"bdd"`` (default, matching
    the paper's evaluation) or ``"polynomial"`` annotations for VALUE mode.
    """
    if mode is ProvenanceMode.NONE:
        return PreparedProgram(program=program, mode=mode)

    if mode is ProvenanceMode.REFERENCE:
        return PreparedProgram(program=rewrite_program(program), mode=mode)

    if mode is ProvenanceMode.VALUE:
        if value_policy == "bdd":
            shared_manager = BddManager()

            def bdd_factory(_node: Any) -> AnnotationPolicy:
                return BddValuePolicy(shared_manager)

            factory: Callable[[Any], AnnotationPolicy] = bdd_factory
        elif value_policy == "polynomial":
            def polynomial_factory(_node: Any) -> AnnotationPolicy:
                return PolynomialValuePolicy()

            factory = polynomial_factory
        else:
            raise ProvenanceError(f"unknown value policy {value_policy!r}")
        return PreparedProgram(
            program=program, mode=mode, annotation_policy_factory=factory
        )

    if mode is ProvenanceMode.CENTRALIZED:
        if collector is None:
            raise ProvenanceError(
                "CENTRALIZED provenance requires a collector node address"
            )
        rewritten = rewrite_program(program)
        rewritten.add_declaration(TableDecl(CENTRAL_PROV_TABLE, 5, (1, 2, 3)))
        rewritten.add_declaration(TableDecl(CENTRAL_RULE_EXEC_TABLE, 5, (1, 2)))
        rewritten.add_rule(_central_prov_rule(collector))
        rewritten.add_rule(_central_rule_exec_rule(collector))
        return PreparedProgram(program=rewritten, mode=mode, collector=collector)

    raise ProvenanceError(f"unknown provenance mode {mode!r}")


def _central_prov_rule(collector: Any) -> Rule:
    """``provCentral(@Server, Loc, VID, RID, RLoc) :- prov(@Loc, VID, RID, RLoc).``"""
    return Rule(
        "cent_prov",
        Atom(
            CENTRAL_PROV_TABLE,
            [Constant(collector), Variable("Loc"), Variable("VID"),
             Variable("RID"), Variable("RLoc")],
            location_index=0,
        ),
        [
            Atom(
                PROV_TABLE,
                [Variable("Loc"), Variable("VID"), Variable("RID"), Variable("RLoc")],
                location_index=0,
            )
        ],
    )


def _central_rule_exec_rule(collector: Any) -> Rule:
    """``ruleExecCentral(@Server, RLoc, RID, R, L) :- ruleExec(@RLoc, RID, R, L).``"""
    return Rule(
        "cent_ruleexec",
        Atom(
            CENTRAL_RULE_EXEC_TABLE,
            [Constant(collector), Variable("RLoc"), Variable("RID"),
             Variable("R"), Variable("VIDList")],
            location_index=0,
        ),
        [
            Atom(
                RULE_EXEC_TABLE,
                [Variable("RLoc"), Variable("RID"), Variable("R"), Variable("VIDList")],
                location_index=0,
            )
        ],
    )
