"""Reduced Ordered Binary Decision Diagrams (ROBDDs).

Section 6.3 of the paper condenses algebraic provenance by encoding it as a
boolean expression stored in a BDD ("absorption provenance"): base tuples
become boolean variables, ``+`` becomes OR, ``·`` becomes AND, and the
canonical reduced form of the BDD applies absorption automatically —
``a · (a + b)`` collapses to ``a``.  The prototype used an off-the-shelf BDD
library; this module is a from-scratch pure-Python ROBDD with the standard
unique-table + computed-table construction.

The public entry point is :class:`BddManager`; :class:`Bdd` values are
immutable handles that support ``&``, ``|``, ``~``, restriction, model
counting, satisfiability and conversion back to a minimal DNF.  A
:func:`Bdd.wire_size` estimate feeds the bandwidth accounting of the BDD
provenance-query experiments (Figure 15).

Canonical variable order
------------------------
Variables are ordered lexicographically by *name* (base-tuple VIDs), not by
allocation order.  Two managers that build the same boolean function —
even in different processes, interleaving variable discoveries differently
— therefore produce structurally identical reduced BDDs, with identical
node and wire-size counts.  The sharded engine depends on this: value-mode
annotations cross shard boundaries as exported structures
(:func:`export_bdd` / :func:`import_bdd`) and are re-interned into the
receiving shard's manager bit-identically.

Bounded computed table
----------------------
``_apply`` / ``_negate`` memoize through a *bounded* computed table: when
the table reaches its capacity it is flushed wholesale (the classic BDD
package policy — cheap, deterministic, and result-invariant since the
table is pure memoization).  Long trials that re-walk shared DAG structure
on every apply (fig15's polynomial-vs-BDD sweeps) get the hit rate without
unbounded growth; per-handle ``node_count``/``wire_size`` walks are also
cached per node id (node ids are immutable and never recycled, so these
caches never invalidate).  :meth:`BddManager.cache_stats` and the
process-wide :func:`bdd_cache_stats` report hits / misses / flushes.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "BddManager",
    "Bdd",
    "BDD_NODE_BYTES",
    "APPLY_CACHE_LIMIT",
    "export_bdd",
    "import_bdd",
    "bdd_cache_stats",
]

#: Serialized size charged per BDD node (variable index + two node pointers).
BDD_NODE_BYTES = 6

#: Default computed-table capacity (entries) before a wholesale flush.
APPLY_CACHE_LIMIT = 1 << 18

#: Live managers, so :func:`bdd_cache_stats` can aggregate process-wide.
_MANAGERS: "weakref.WeakSet[BddManager]" = weakref.WeakSet()


@dataclass(frozen=True)
class _Node:
    """An internal BDD node: variable name, low (else) and high (then) ids.

    ``var`` is the variable *name*; the ordering relation between variables
    is plain string comparison, which is what makes reduced forms canonical
    across managers (see module docstring).
    """

    var: str
    low: int
    high: int


class BddManager:
    """Owns the unique table, the computed table and the variable registry."""

    FALSE_ID = 0
    TRUE_ID = 1

    def __init__(self, apply_cache_limit: int = APPLY_CACHE_LIMIT) -> None:
        if apply_cache_limit < 1:
            raise ValueError("apply_cache_limit must be positive")
        # node id -> _Node; ids 0 and 1 are the terminal constants
        self._nodes: Dict[int, _Node] = {}
        self._unique: Dict[Tuple[str, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._apply_cache_limit = apply_cache_limit
        self._next_id = 2
        self._vars: Set[str] = set()
        self._node_count_cache: Dict[int, int] = {}
        self._support_cache: Dict[int, FrozenSet[str]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_flushes = 0
        _MANAGERS.add(self)

    # ------------------------------------------------------------------ #
    # variables and terminals
    # ------------------------------------------------------------------ #
    @property
    def variable_count(self) -> int:
        return len(self._vars)

    def false(self) -> "Bdd":
        return Bdd(self, self.FALSE_ID)

    def true(self) -> "Bdd":
        return Bdd(self, self.TRUE_ID)

    def var(self, name: str) -> "Bdd":
        """Return the BDD for a single variable."""
        self._vars.add(name)
        return Bdd(self, self._make_node(name, self.FALSE_ID, self.TRUE_ID))

    # ------------------------------------------------------------------ #
    # node construction (reduction rules applied here)
    # ------------------------------------------------------------------ #
    def _make_node(self, var: str, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node_id = self._unique.get(key)
        if node_id is None:
            node_id = self._next_id
            self._next_id += 1
            self._nodes[node_id] = _Node(var, low, high)
            self._unique[key] = node_id
        return node_id

    def _node(self, node_id: int) -> _Node:
        return self._nodes[node_id]

    def _is_terminal(self, node_id: int) -> bool:
        return node_id in (self.FALSE_ID, self.TRUE_ID)

    # ------------------------------------------------------------------ #
    # computed table
    # ------------------------------------------------------------------ #
    def _cache_get(self, key: Tuple[str, int, int]) -> Optional[int]:
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        return cached

    def _cache_put(self, key: Tuple[str, int, int], result: int) -> None:
        if len(self._apply_cache) >= self._apply_cache_limit:
            # Wholesale flush: bounded memory, deterministic results (the
            # table is pure memoization), standard BDD-package policy.
            self._apply_cache.clear()
            self.cache_flushes += 1
        self._apply_cache[key] = result

    def cache_stats(self) -> Dict[str, int]:
        """Computed-table and walk-cache counters for this manager."""
        return {
            "apply_cache_hits": self.cache_hits,
            "apply_cache_misses": self.cache_misses,
            "apply_cache_flushes": self.cache_flushes,
            "apply_cache_entries": len(self._apply_cache),
            "node_count_cached": len(self._node_count_cache),
            "support_cached": len(self._support_cache),
        }

    # ------------------------------------------------------------------ #
    # apply
    # ------------------------------------------------------------------ #
    def _apply(self, op: str, left: int, right: int) -> int:
        terminal = self._apply_terminal(op, left, right)
        if terminal is not None:
            return terminal
        key = (op, left, right) if left <= right else (op, right, left)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        left_var = None if self._is_terminal(left) else self._node(left).var
        right_var = None if self._is_terminal(right) else self._node(right).var
        if right_var is None or (left_var is not None and left_var <= right_var):
            top = left_var
        else:
            top = right_var
        left_low, left_high = self._cofactors(left, top)
        right_low, right_high = self._cofactors(right, top)
        low = self._apply(op, left_low, right_low)
        high = self._apply(op, left_high, right_high)
        result = self._make_node(top, low, high)
        self._cache_put(key, result)
        return result

    def _apply_terminal(self, op: str, left: int, right: int) -> Optional[int]:
        if op == "and":
            if left == self.FALSE_ID or right == self.FALSE_ID:
                return self.FALSE_ID
            if left == self.TRUE_ID:
                return right
            if right == self.TRUE_ID:
                return left
            if left == right:
                return left
        elif op == "or":
            if left == self.TRUE_ID or right == self.TRUE_ID:
                return self.TRUE_ID
            if left == self.FALSE_ID:
                return right
            if right == self.FALSE_ID:
                return left
            if left == right:
                return left
        return None

    def _cofactors(self, node_id: int, var: Optional[str]) -> Tuple[int, int]:
        if self._is_terminal(node_id):
            return node_id, node_id
        node = self._node(node_id)
        if var is None or node.var != var:
            return node_id, node_id
        return node.low, node.high

    def _negate(self, node_id: int) -> int:
        if node_id == self.FALSE_ID:
            return self.TRUE_ID
        if node_id == self.TRUE_ID:
            return self.FALSE_ID
        key = ("not", node_id, node_id)
        cached = self._cache_get(key)
        if cached is not None:
            return cached
        node = self._node(node_id)
        result = self._make_node(
            node.var, self._negate(node.low), self._negate(node.high)
        )
        self._cache_put(key, result)
        return result

    def _restrict(self, node_id: int, var: str, value: bool) -> int:
        if self._is_terminal(node_id):
            return node_id
        node = self._node(node_id)
        if node.var > var:
            return node_id
        if node.var == var:
            return node.high if value else node.low
        low = self._restrict(node.low, var, value)
        high = self._restrict(node.high, var, value)
        return self._make_node(node.var, low, high)

    # ------------------------------------------------------------------ #
    # bulk constructors
    # ------------------------------------------------------------------ #
    def from_dnf(self, products: Iterable[Iterable[str]]) -> "Bdd":
        """Build the BDD of a monotone DNF (iterable of products of variables)."""
        result = self.FALSE_ID
        for product in products:
            term = self.TRUE_ID
            for name in product:
                term = self._apply("and", term, self.var(name).node_id)
            result = self._apply("or", result, term)
        return Bdd(self, result)

    def from_expression(self, expression) -> "Bdd":
        """Build the BDD of a provenance polynomial (duck-typed on to_dnf)."""
        return self.from_dnf(expression.to_dnf())


class Bdd:
    """An immutable handle onto a node in a :class:`BddManager`."""

    __slots__ = ("manager", "node_id")

    def __init__(self, manager: BddManager, node_id: int):
        self.manager = manager
        self.node_id = node_id

    # ------------------------------------------------------------------ #
    # boolean algebra
    # ------------------------------------------------------------------ #
    def __and__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        return Bdd(self.manager, self.manager._apply("and", self.node_id, other.node_id))

    def __or__(self, other: "Bdd") -> "Bdd":
        self._check(other)
        return Bdd(self.manager, self.manager._apply("or", self.node_id, other.node_id))

    def __invert__(self) -> "Bdd":
        return Bdd(self.manager, self.manager._negate(self.node_id))

    def _check(self, other: "Bdd") -> None:
        if other.manager is not self.manager:
            raise ValueError("cannot combine BDDs from different managers")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Bdd)
            and other.manager is self.manager
            and other.node_id == self.node_id
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node_id))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def is_false(self) -> bool:
        return self.node_id == BddManager.FALSE_ID

    @property
    def is_true(self) -> bool:
        return self.node_id == BddManager.TRUE_ID

    def restrict(self, assignment: Dict[str, bool]) -> "Bdd":
        """Fix some variables to constants and return the simplified BDD."""
        node_id = self.node_id
        for name, value in assignment.items():
            node_id = self.manager._restrict(node_id, name, value)
        return Bdd(self.manager, node_id)

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a complete assignment (missing variables are False)."""
        node_id = self.node_id
        manager = self.manager
        while not manager._is_terminal(node_id):
            node = manager._node(node_id)
            node_id = node.high if assignment.get(node.var, False) else node.low
        return node_id == BddManager.TRUE_ID

    def support(self) -> FrozenSet[str]:
        """The set of variables this BDD actually depends on (cached)."""
        cached = self.manager._support_cache.get(self.node_id)
        if cached is None:
            cached = frozenset(node.var for node in self._reachable_nodes())
            self.manager._support_cache[self.node_id] = cached
        return cached

    def node_count(self) -> int:
        """Number of internal nodes, excluding the terminals (cached)."""
        cached = self.manager._node_count_cache.get(self.node_id)
        if cached is None:
            cached = sum(1 for _ in self._reachable_nodes())
            self.manager._node_count_cache[self.node_id] = cached
        return cached

    def _reachable_nodes(self) -> Iterable[_Node]:
        seen: Set[int] = set()
        stack = [self.node_id]
        while stack:
            node_id = stack.pop()
            if node_id in seen or self.manager._is_terminal(node_id):
                continue
            seen.add(node_id)
            node = self.manager._node(node_id)
            stack.append(node.low)
            stack.append(node.high)
            yield node

    def satisfying_products(self) -> FrozenSet[FrozenSet[str]]:
        """Return the minimal monotone DNF equivalent to this BDD.

        Only meaningful for monotone functions (which provenance always is);
        each product lists the variables that must be true.
        """
        products: Set[FrozenSet[str]] = set()
        self._collect_products(self.node_id, [], products)
        # absorption: drop any product that is a superset of another
        minimal: List[FrozenSet[str]] = []
        for product in sorted(products, key=len):
            if any(keeper <= product for keeper in minimal):
                continue
            minimal.append(product)
        return frozenset(minimal)

    def _collect_products(
        self, node_id: int, path: List[str], out: Set[FrozenSet[str]]
    ) -> None:
        if node_id == BddManager.FALSE_ID:
            return
        if node_id == BddManager.TRUE_ID:
            out.add(frozenset(path))
            return
        node = self.manager._node(node_id)
        self._collect_products(node.high, path + [node.var], out)
        self._collect_products(node.low, path, out)

    def wire_size(self) -> int:
        """Bytes charged when this BDD is shipped in a message.

        A serialized BDD must carry, besides its node structure, the mapping
        from variable indices to the identifiers they stand for (base-tuple
        VIDs, node ids, ...), so the size grows with both the node count and
        the total length of the variable names in the BDD's support.
        """
        structure = 2 + BDD_NODE_BYTES * self.node_count()
        dictionary = sum(len(name) for name in self.support())
        return structure + dictionary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_false:
            return "Bdd(False)"
        if self.is_true:
            return "Bdd(True)"
        return f"Bdd(nodes={self.node_count()})"


# ---------------------------------------------------------------------- #
# cross-manager transport
# ---------------------------------------------------------------------- #
def export_bdd(bdd: Bdd) -> Tuple[Any, ...]:
    """Serialize a BDD to a manager-independent structure.

    The result is ``(root_ref, ((var, low_ref, high_ref), ...))`` where a
    *ref* is ``False``/``True`` for the terminals or an index into the node
    tuple.  Nodes are listed in deterministic bottom-up order, so equal
    functions export to equal structures regardless of the source manager —
    and the structure is plain picklable data, which is how value-mode
    annotations and their sizes survive a shard boundary.
    """
    manager = bdd.manager
    refs: Dict[int, Any] = {BddManager.FALSE_ID: False, BddManager.TRUE_ID: True}
    nodes: List[Tuple[str, Any, Any]] = []

    def visit(node_id: int) -> Any:
        ref = refs.get(node_id)
        if ref is not None or node_id in refs:
            return refs[node_id]
        node = manager._node(node_id)
        low = visit(node.low)
        high = visit(node.high)
        refs[node_id] = len(nodes)
        nodes.append((node.var, low, high))
        return refs[node_id]

    root = visit(bdd.node_id)
    return (root, tuple(nodes))


def import_bdd(manager: BddManager, data: Tuple[Any, ...]) -> Bdd:
    """Rebuild an exported BDD inside *manager* (see :func:`export_bdd`).

    Because variable order is canonical (lexicographic by name), the
    rebuilt BDD is structurally identical to the exported one: same node
    count, same wire size, same semantics.
    """
    root, nodes = data
    ids: List[int] = []

    def resolve(ref: Any) -> int:
        if ref is False:
            return BddManager.FALSE_ID
        if ref is True:
            return BddManager.TRUE_ID
        return ids[ref]

    for var, low, high in nodes:
        manager._vars.add(var)
        ids.append(manager._make_node(var, resolve(low), resolve(high)))
    return Bdd(manager, resolve(root))


def bdd_cache_stats() -> Dict[str, int]:
    """Aggregate computed-table counters across every live manager."""
    totals: Dict[str, int] = {
        "apply_cache_hits": 0,
        "apply_cache_misses": 0,
        "apply_cache_flushes": 0,
        "apply_cache_entries": 0,
        "node_count_cached": 0,
        "support_cached": 0,
    }
    for manager in list(_MANAGERS):
        for key, value in manager.cache_stats().items():
            totals[key] += value
    return totals
