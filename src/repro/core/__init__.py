"""ExSPAN core: the paper's primary contribution.

Provenance data model and storage (:mod:`repro.core.vid`,
:mod:`repro.core.storage`), the automatic maintenance rewrite
(:mod:`repro.core.rewrite`), provenance distribution modes
(:mod:`repro.core.modes`), the distributed query engine and its
optimizations (:mod:`repro.core.query`, :mod:`repro.core.cache`),
provenance representations (:mod:`repro.core.semiring`,
:mod:`repro.core.bdd`), and the :class:`~repro.core.api.ExspanNetwork`
facade tying everything to the simulated network.
"""

from .api import DELTA_MESSAGE_KIND, ExspanNetwork, ExspanNode
from .bdd import Bdd, BddManager
from .cache import QueryResultCache
from .config import ExspanConfig
from .customizations import (
    bdd_query,
    derivability_query,
    derivation_count_query,
    domain_projection,
    node_set_query,
    polynomial_query,
)
from .errors import (
    ProvenanceError,
    QueryError,
    QueryTimeoutError,
    RewriteError,
    UnknownVertexError,
)
from .granularity import Granularity, GranularitySpec, prefix_domain_map
from .modes import (
    BddValuePolicy,
    PolynomialValuePolicy,
    PreparedProgram,
    ProvenanceMode,
    prepare_program,
)
from .provenance_graph import ProvenanceGraph, RuleVertex, TupleVertex, build_global_graph
from .query import (
    PROV_MESSAGE_KIND,
    ProvenanceQueryService,
    QueryOutcome,
    QuerySpec,
    TraversalOrder,
)
from .requests import QueryRequest, QueryResult, SpecDescriptor
from .rewrite import PROV_TABLE, RULE_EXEC_TABLE, ProvenanceRewriter, rewrite_program
from .semiring import (
    EMPTY,
    Literal,
    Product,
    ProvenanceExpression,
    Sum,
    absorb,
    count_derivations,
    is_derivable,
    node_set,
    product_of,
    sum_of,
    var,
)
from .storage import ProvEntry, ProvenanceStore, RuleExecEntry
from .vid import NULL_RID, fact_vid, rule_rid, tuple_vid

__all__ = [
    "DELTA_MESSAGE_KIND",
    "ExspanConfig",
    "ExspanNetwork",
    "ExspanNode",
    "QueryRequest",
    "QueryResult",
    "SpecDescriptor",
    "Bdd",
    "BddManager",
    "QueryResultCache",
    "bdd_query",
    "derivability_query",
    "derivation_count_query",
    "domain_projection",
    "node_set_query",
    "polynomial_query",
    "ProvenanceError",
    "QueryError",
    "QueryTimeoutError",
    "RewriteError",
    "UnknownVertexError",
    "Granularity",
    "GranularitySpec",
    "prefix_domain_map",
    "BddValuePolicy",
    "PolynomialValuePolicy",
    "PreparedProgram",
    "ProvenanceMode",
    "prepare_program",
    "ProvenanceGraph",
    "RuleVertex",
    "TupleVertex",
    "build_global_graph",
    "PROV_MESSAGE_KIND",
    "ProvenanceQueryService",
    "QueryOutcome",
    "QuerySpec",
    "TraversalOrder",
    "PROV_TABLE",
    "RULE_EXEC_TABLE",
    "ProvenanceRewriter",
    "rewrite_program",
    "EMPTY",
    "Literal",
    "Product",
    "ProvenanceExpression",
    "Sum",
    "absorb",
    "count_derivations",
    "is_derivable",
    "node_set",
    "product_of",
    "sum_of",
    "var",
    "ProvEntry",
    "ProvenanceStore",
    "RuleExecEntry",
    "NULL_RID",
    "fact_vid",
    "rule_rid",
    "tuple_vid",
]
