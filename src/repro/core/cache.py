"""Distributed query-result caching with invalidation (Section 6.1).

Whenever a provenance sub-query completes at a node, the node caches the
result keyed by the vertex it resolved (a tuple VID or a rule-execution
RID) and the query customization it was computed under.  Later queries that
reach the same node and need the same subgraph return the cached result
without further traversal — the paper's "cache(@N, VID, Results)" table.

Cache entries are invalidated when the underlying tuples change: every entry
records which *parent* entries (possibly on other nodes) consumed it, and an
invalidation walks those reverse pointers, sending a small invalidation flag
between nodes rather than re-shipping provenance (Section 6.1, "Cache
invalidation").

The cache is **bounded**: entries live in LRU order and inserting past
``capacity`` evicts the least recently used entry.  Eviction is handled as
a (conservative) invalidation of the evicted entry's dependents — their
cached results are still correct, but once the reverse pointer is dropped
there would be no way to reach them when the underlying tuple *does*
change, so they are recomputed on their next miss instead of risking
staleness.  This is what lets eviction garbage-collect the per-key
dependent bookkeeping outright, keeping memory proportional to the bound.

Two further structural properties:

* a per-vertex key index maps ``(kind, identifier)`` to every cache key
  (across query specs) touching that vertex, so
  :meth:`QueryResultCache.invalidate_vertex` is proportional to the keys it
  actually drops instead of a scan over all entries;
* dependents are kept in insertion order and returned as ordered tuples,
  so the invalidation fan-out (and therefore message ordering) is
  deterministic under any ``PYTHONHASHSEED``.

Generational dependents
-----------------------
``put`` *replaces* the key's dependent set with the consumers of the new
result generation (the ``dependents`` argument).  Re-caching a result after
an invalidation therefore never inherits reverse pointers from the previous
generation — stale dependents used to leak across generations and trigger
spurious cross-node invalidations.  A ``put`` that overwrites a *live*
entry merges instead: with coalescing disabled two resolutions of the same
key can race, and both sets of parents consumed an identical value.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

__all__ = [
    "CacheKey",
    "CacheEntry",
    "Dependent",
    "QueryResultCache",
    "DEFAULT_CACHE_CAPACITY",
    "vertex_of",
]

#: A cache key: ("v" | "r", spec name, VID or RID).
CacheKey = Tuple[str, str, str]

#: A reverse pointer: (node holding the parent entry, the parent's key).
Dependent = Tuple[Any, CacheKey]

#: Default per-node entry bound.  Large enough that the paper's query
#: workloads (Figures 11-15) never evict — the bound is a memory-safety
#: backstop for long-running serving deployments, not a working-set knob.
DEFAULT_CACHE_CAPACITY = 4096


def vertex_of(key: CacheKey) -> Tuple[str, str]:
    """The ``(kind, identifier)`` vertex a cache key refers to.

    Shared by the cache's per-vertex entry index and the query service's
    in-flight index, so both stay in lockstep with the key layout.
    """
    return (key[0], key[2])


@dataclass
class CacheEntry:
    """A cached sub-query result plus bookkeeping for invalidation.

    ``height`` is the height of the provenance subgraph the result covers
    (levels of vid/rule vertices below this one).  Only *complete*
    resolutions are cached, and a lookup serves the entry only when the
    requester's remaining depth budget is at least ``height`` — i.e. when
    the requester's own traversal would have explored the same (full)
    subgraph.  That makes every cached value independent of the depth
    budget it happened to be computed under, which is what keeps
    concurrent resolution bit-identical to serial resolution even for
    depth-bounded query specs.
    """

    key: CacheKey
    result: Any
    cached_at: float
    height: int = 0
    hits: int = 0


class QueryResultCache:
    """Per-node bounded LRU cache of provenance query results."""

    def __init__(self, node: Any, capacity: int = DEFAULT_CACHE_CAPACITY):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.node = node
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        # key -> ordered set (dict keyed by dependent, value unused) of the
        # (parent node, parent key) pairs that consumed this result.
        self._dependents: Dict[CacheKey, Dict[Dependent, None]] = {}
        # (kind, identifier) -> ordered set of keys present in _entries
        # and/or _dependents; replaces invalidate_vertex's O(entries) scan.
        self._by_vertex: Dict[Tuple[str, str], Dict[CacheKey, None]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        # Hits recorded against entries that have since left the cache
        # (evicted, invalidated, overwritten or cleared); keeps the global
        # hit counter reconcilable with the live entries' per-entry hits.
        self.retired_hits = 0

    # ------------------------------------------------------------------ #
    # vertex index maintenance
    # ------------------------------------------------------------------ #
    def _index_add(self, key: CacheKey) -> None:
        self._by_vertex.setdefault(vertex_of(key), {})[key] = None

    def _index_discard(self, key: CacheKey) -> None:
        """Drop *key* from the vertex index once nothing references it."""
        if key in self._entries or key in self._dependents:
            return
        vertex = vertex_of(key)
        keys = self._by_vertex.get(vertex)
        if keys is not None:
            keys.pop(key, None)
            if not keys:
                del self._by_vertex[vertex]

    # ------------------------------------------------------------------ #
    # storage / lookup
    # ------------------------------------------------------------------ #
    def put(
        self,
        key: CacheKey,
        result: Any,
        now: float,
        dependents: Iterable[Dependent] = (),
        height: int = 0,
    ) -> Tuple[Dependent, ...]:
        """Cache *result* under *key*; returns dependents displaced by eviction.

        *dependents* are the consumers of this result generation.  They
        replace any dependents left over from a previous generation of the
        key — unless a live entry is being overwritten, in which case the
        old value is identical (same vertex, same spec, same underlying
        tuples) and the sets merge.

        The caller must forward the returned dependents through the usual
        invalidation fan-out: they belonged to entries evicted to make room
        and their reverse pointers have been garbage-collected.
        """
        existing = self._entries.pop(key, None)
        if existing is not None:
            self.retired_hits += existing.hits
        else:
            # Fresh generation: reverse pointers recorded against any prior
            # (invalidated / evicted) generation must not leak into it.
            self._dependents.pop(key, None)
        fresh = {dependent: None for dependent in dependents}
        if fresh:
            self._dependents.setdefault(key, {}).update(fresh)
        self._entries[key] = CacheEntry(
            key=key, result=result, cached_at=now, height=height
        )
        self._index_add(key)
        displaced: Dict[Dependent, None] = {}
        while len(self._entries) > self.capacity:
            victim_key, victim = self._entries.popitem(last=False)
            self.evictions += 1
            self.retired_hits += victim.hits
            displaced.update(self._dependents.pop(victim_key, {}))
            self._index_discard(victim_key)
        return tuple(displaced)

    def get(self, key: CacheKey, budget: Optional[int] = None) -> Optional[CacheEntry]:
        """Look up *key*; with *budget*, serve only depth-compatible entries.

        An entry whose ``height`` exceeds the requester's remaining depth
        budget counts as a miss: the requester's own traversal would have
        truncated, so serving the (complete) cached value would make the
        answer depend on who populated the cache first.
        """
        entry = self._entries.get(key)
        if entry is None or (budget is not None and budget < entry.height):
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.hits += 1
        return entry

    def contains(self, key: CacheKey) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # dependency tracking
    # ------------------------------------------------------------------ #
    def add_dependent(self, key: CacheKey, parent_node: Any, parent_key: CacheKey) -> None:
        """Record that *parent_key* at *parent_node* was computed from *key*."""
        self._dependents.setdefault(key, {})[(parent_node, parent_key)] = None
        self._index_add(key)

    def dependents_of(self, key: CacheKey) -> Tuple[Dependent, ...]:
        return tuple(self._dependents.get(key, ()))

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate(self, key: CacheKey) -> Tuple[Dependent, ...]:
        """Drop *key* locally and return the dependents that must be notified.

        The caller (the query service) forwards an invalidation message to
        each remote dependent and recurses locally for local dependents.
        """
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.retired_hits += entry.hits
            self.invalidations += 1
        dependents = tuple(self._dependents.pop(key, ()))
        self._index_discard(key)
        return dependents

    def invalidate_vertex(self, kind: str, identifier: str) -> Tuple[Dependent, ...]:
        """Invalidate every cached result for the vertex across all specs."""
        keys = self._by_vertex.get((kind, identifier))
        if not keys:
            return ()
        to_notify: Dict[Dependent, None] = {}
        for key in list(keys):
            to_notify.update((dependent, None) for dependent in self.invalidate(key))
        return tuple(to_notify)

    def clear(self) -> None:
        for entry in self._entries.values():
            self.retired_hits += entry.hits
        self._entries.clear()
        self._dependents.clear()
        self._by_vertex.clear()

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def live_hits(self) -> int:
        """Hits recorded against entries still resident in the cache."""
        return sum(entry.hits for entry in self._entries.values())

    def stats(self) -> Dict[str, int]:
        """Counters; ``hits == live_hits + retired_hits`` always holds."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "live_hits": self.live_hits(),
            "retired_hits": self.retired_hits,
        }
