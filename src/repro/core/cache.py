"""Distributed query-result caching with invalidation (Section 6.1).

Whenever a provenance sub-query completes at a node, the node caches the
result keyed by the vertex it resolved (a tuple VID or a rule-execution
RID) and the query customization it was computed under.  Later queries that
reach the same node and need the same subgraph return the cached result
without further traversal — the paper's "cache(@N, VID, Results)" table.

Cache entries are invalidated when the underlying tuples change: every entry
records which *parent* entries (possibly on other nodes) consumed it, and an
invalidation walks those reverse pointers, sending a small invalidation flag
between nodes rather than re-shipping provenance (Section 6.1, "Cache
invalidation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

__all__ = ["CacheKey", "CacheEntry", "QueryResultCache"]

#: A cache key: ("v" | "r", spec name, VID or RID).
CacheKey = Tuple[str, str, str]


@dataclass
class CacheEntry:
    """A cached sub-query result plus bookkeeping for invalidation."""

    key: CacheKey
    result: Any
    cached_at: float
    hits: int = 0


class QueryResultCache:
    """Per-node cache of provenance query results."""

    def __init__(self, node: Any):
        self.node = node
        self._entries: Dict[CacheKey, CacheEntry] = {}
        # key -> set of (parent node, parent key) that consumed this result
        self._dependents: Dict[CacheKey, Set[Tuple[Any, CacheKey]]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ #
    # storage / lookup
    # ------------------------------------------------------------------ #
    def put(self, key: CacheKey, result: Any, now: float) -> None:
        self._entries[key] = CacheEntry(key=key, result=result, cached_at=now)

    def get(self, key: CacheKey) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        entry.hits += 1
        self.hits += 1
        return entry

    def contains(self, key: CacheKey) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # dependency tracking
    # ------------------------------------------------------------------ #
    def add_dependent(self, key: CacheKey, parent_node: Any, parent_key: CacheKey) -> None:
        """Record that *parent_key* at *parent_node* was computed from *key*."""
        self._dependents.setdefault(key, set()).add((parent_node, parent_key))

    def dependents_of(self, key: CacheKey) -> FrozenSet[Tuple[Any, CacheKey]]:
        return frozenset(self._dependents.get(key, ()))

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #
    def invalidate(self, key: CacheKey) -> FrozenSet[Tuple[Any, CacheKey]]:
        """Drop *key* locally and return the dependents that must be notified.

        The caller (the query service) forwards an invalidation message to
        each remote dependent and recurses locally for local dependents.
        """
        if key in self._entries:
            del self._entries[key]
            self.invalidations += 1
        dependents = self._dependents.pop(key, set())
        return frozenset(dependents)

    def invalidate_vertex(self, kind: str, identifier: str) -> FrozenSet[Tuple[Any, CacheKey]]:
        """Invalidate every cached result for the vertex across all specs."""
        to_notify: Set[Tuple[Any, CacheKey]] = set()
        matching = [
            key for key in list(self._entries) if key[0] == kind and key[2] == identifier
        ]
        matching.extend(
            key
            for key in list(self._dependents)
            if key[0] == kind and key[2] == identifier and key not in matching
        )
        for key in matching:
            to_notify.update(self.invalidate(key))
        return frozenset(to_notify)

    def clear(self) -> None:
        self._entries.clear()
        self._dependents.clear()

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }
