"""The consolidated public query API: typed requests, typed results.

Until this layer existed the provenance engine had three in-process entry
points (``register_query_spec`` / ``issue_query`` / ``query_provenance``)
taking live :class:`~repro.core.query.QuerySpec` objects full of callables —
unusable from outside the interpreter.  This module defines the one
request/response surface everything now shares:

* :class:`SpecDescriptor` — a declarative, JSON-serializable description of
  a query customization (kind + traversal + knobs).  ``build()`` maps it
  onto the :mod:`repro.core.customizations` factories, and its canonical
  name is a pure function of its fields, so the same descriptor denotes the
  same spec on every node, every client and every process.
* :class:`QueryRequest` — one provenance query: the fact, the spec (by
  name, by descriptor, or — for in-process callers only — a live
  ``QuerySpec``), and optional issuer/target overrides.
* :class:`QueryResult` — the completed answer.  Its *body* (vid, spec,
  issuer, target, fact, canonically encoded annotation) is a deterministic
  function of the query and the store — independent of concurrent load,
  wall-clock and scheduling — and :meth:`QueryResult.canonical_bytes`
  serializes exactly that body.  Timing metadata (query id, simulated
  issue/completion instants) travels separately in ``meta``.

The wire protocol (:mod:`repro.service`), the interactive shell
(:mod:`repro.shell`), the experiment trials and plain in-process callers
all consume this layer; ``ExspanNetwork.execute`` is the single entry
point.

Annotation encoding
-------------------
Query results are semiring values: provenance polynomials, BDDs, sets,
counts, booleans.  :func:`encode_annotation` renders each into a canonical
JSON-able dict (``{"kind": ..., ...}``) with deterministic ordering;
:func:`decode_annotation` reconstructs the equivalent in-process value
(polynomials rebuild node-for-node; BDDs re-import into a fresh manager).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from ..datalog.ast import Fact
from .bdd import Bdd, BddManager, export_bdd, import_bdd
from .errors import QueryError
from .query import DEFAULT_MAX_DEPTH, QueryOutcome, QuerySpec, TraversalOrder
from .semiring import EMPTY, Literal, Product, ProvenanceExpression, Sum

__all__ = [
    "SPEC_KINDS",
    "SpecDescriptor",
    "QueryRequest",
    "QueryResult",
    "canonical_json",
    "encode_annotation",
    "decode_annotation",
    "encode_fact",
    "decode_fact",
]

#: Spec kinds a descriptor may name, mapped to their customization factory
#: module attribute (resolved lazily to avoid an import cycle with
#: customizations -> query -> this module's sibling imports).
SPEC_KINDS: Tuple[str, ...] = (
    "polynomial",
    "bdd",
    "nodeset",
    "derivations",
    "derivability",
)

_TRAVERSALS: Dict[str, TraversalOrder] = {order.value: order for order in TraversalOrder}


def canonical_json(payload: Any) -> str:
    """The repo-wide canonical JSON form: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------- #
# facts
# ---------------------------------------------------------------------- #
def encode_fact(fact: Fact) -> Dict[str, Any]:
    """JSON-able form of a ground fact."""
    return {
        "name": fact.name,
        "values": list(fact.values),
        "location_index": fact.location_index,
    }


def decode_fact(payload: Mapping[str, Any]) -> Fact:
    """Inverse of :func:`encode_fact` (tolerates a missing location index)."""
    try:
        name = payload["name"]
        values = payload["values"]
    except (KeyError, TypeError):
        raise QueryError(f"malformed fact payload {payload!r}") from None
    if not isinstance(name, str) or not isinstance(values, (list, tuple)):
        raise QueryError(f"malformed fact payload {payload!r}")
    index = payload.get("location_index", 0)
    if not isinstance(index, int) or isinstance(index, bool) or not values:
        raise QueryError(f"malformed fact payload {payload!r}")
    if not 0 <= index < len(values):
        raise QueryError(f"fact location_index {index} out of range for {payload!r}")
    return Fact(name, tuple(values), location_index=index)


# ---------------------------------------------------------------------- #
# spec descriptors
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SpecDescriptor:
    """A declarative, serializable query-spec description.

    ``kind`` selects the customization family (:data:`SPEC_KINDS`); the
    remaining fields are the orthogonal knobs every factory accepts.  A
    descriptor with ``name=None`` gets a *canonical name* derived from its
    fields, so two independently constructed identical descriptors resolve
    to (and register) the same spec everywhere.
    """

    kind: str
    name: Optional[str] = None
    traversal: str = TraversalOrder.BFS.value
    use_cache: bool = False
    threshold: Optional[int] = None
    moonwalk_width: int = 1
    max_depth: int = DEFAULT_MAX_DEPTH
    trusted: Optional[Tuple[str, ...]] = None
    granularity: str = "tuple"

    def __post_init__(self) -> None:
        if self.kind not in SPEC_KINDS:
            raise QueryError(
                f"unknown spec kind {self.kind!r}; expected one of {list(SPEC_KINDS)}"
            )
        if self.traversal not in _TRAVERSALS:
            raise QueryError(
                f"unknown traversal {self.traversal!r}; expected one of "
                f"{sorted(_TRAVERSALS)}"
            )
        if self.granularity not in ("tuple", "node"):
            raise QueryError(
                f"unknown granularity {self.granularity!r}; expected 'tuple' or 'node'"
            )
        if self.threshold is not None and (
            not isinstance(self.threshold, int)
            or isinstance(self.threshold, bool)
            or self.threshold < 1
        ):
            raise QueryError(f"threshold must be a positive int, got {self.threshold!r}")
        if not isinstance(self.max_depth, int) or self.max_depth < 1:
            raise QueryError(f"max_depth must be a positive int, got {self.max_depth!r}")
        if not isinstance(self.moonwalk_width, int) or self.moonwalk_width < 1:
            raise QueryError(
                f"moonwalk_width must be a positive int, got {self.moonwalk_width!r}"
            )
        if self.trusted is not None:
            object.__setattr__(
                self, "trusted", tuple(sorted(str(item) for item in self.trusted))
            )

    @property
    def canonical_name(self) -> str:
        """The spec name this descriptor registers under.

        Explicit names pass through; anonymous descriptors are named by
        their canonical field rendering, so equal descriptors share one
        spec (and one cache namespace) on every node.
        """
        if self.name is not None:
            return self.name
        knobs: List[str] = [self.kind]
        if self.traversal != TraversalOrder.BFS.value:
            knobs.append(self.traversal)
        if self.use_cache:
            knobs.append("cache")
        if self.threshold is not None:
            knobs.append(f"t{self.threshold}")
        if self.moonwalk_width != 1:
            knobs.append(f"w{self.moonwalk_width}")
        if self.max_depth != DEFAULT_MAX_DEPTH:
            knobs.append(f"d{self.max_depth}")
        if self.granularity != "tuple":
            knobs.append(self.granularity)
        if self.trusted is not None:
            knobs.append("trusted=" + ",".join(self.trusted))
        return ":".join(knobs)

    def build(self) -> QuerySpec:
        """Instantiate the live :class:`QuerySpec` this descriptor denotes."""
        from .customizations import (
            bdd_query,
            derivability_query,
            derivation_count_query,
            node_set_query,
            polynomial_query,
        )
        from .granularity import Granularity, GranularitySpec

        order = _TRAVERSALS[self.traversal]
        name = self.canonical_name
        granularity = (
            GranularitySpec(Granularity.NODE) if self.granularity == "node" else None
        )
        spec: QuerySpec
        if self.kind == "polynomial":
            threshold_met = None
            if self.threshold is not None:
                from .semiring import count_derivations

                bound = self.threshold
                threshold_met = lambda partial: count_derivations(partial) >= bound  # noqa: E731
            spec = polynomial_query(
                name=name,
                traversal=order,
                use_cache=self.use_cache,
                granularity=granularity,
                threshold_met=threshold_met,
                moonwalk_width=self.moonwalk_width,
            )
        elif self.kind == "bdd":
            spec = bdd_query(
                name=name,
                traversal=order,
                use_cache=self.use_cache,
                granularity=granularity,
            )
        elif self.kind == "nodeset":
            spec = node_set_query(
                name=name,
                traversal=order,
                use_cache=self.use_cache,
                threshold=self.threshold,
            )
        elif self.kind == "derivations":
            spec = derivation_count_query(
                name=name,
                traversal=order,
                use_cache=self.use_cache,
                threshold=self.threshold,
                moonwalk_width=self.moonwalk_width,
            )
        else:  # derivability
            spec = derivability_query(
                name=name,
                trusted=self.trusted,
                granularity=granularity,
                traversal=order,
                use_cache=self.use_cache,
            )
        if self.max_depth != DEFAULT_MAX_DEPTH:
            spec.max_depth = self.max_depth
        return spec

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.name is not None:
            payload["name"] = self.name
        if self.traversal != TraversalOrder.BFS.value:
            payload["traversal"] = self.traversal
        if self.use_cache:
            payload["use_cache"] = True
        if self.threshold is not None:
            payload["threshold"] = self.threshold
        if self.moonwalk_width != 1:
            payload["moonwalk_width"] = self.moonwalk_width
        if self.max_depth != DEFAULT_MAX_DEPTH:
            payload["max_depth"] = self.max_depth
        if self.trusted is not None:
            payload["trusted"] = list(self.trusted)
        if self.granularity != "tuple":
            payload["granularity"] = self.granularity
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SpecDescriptor":
        if not isinstance(payload, Mapping):
            raise QueryError(f"malformed spec descriptor {payload!r}")
        known = {
            "kind",
            "name",
            "traversal",
            "use_cache",
            "threshold",
            "moonwalk_width",
            "max_depth",
            "trusted",
            "granularity",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise QueryError(f"unknown spec descriptor keys: {unknown}")
        if "kind" not in payload:
            raise QueryError("spec descriptor is missing 'kind'")
        data = dict(payload)
        if data.get("trusted") is not None:
            data["trusted"] = tuple(data["trusted"])
        return cls(**data)


# ---------------------------------------------------------------------- #
# requests
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryRequest:
    """One provenance query against the network.

    ``spec`` may be a registered spec name, a :class:`SpecDescriptor`
    (registered on demand), or — for in-process callers only — a live
    :class:`QuerySpec`.  ``target`` defaults to the node named by the
    fact's location specifier; ``issuer`` defaults to the target.

    ``deadline`` (simulated seconds from issue) bounds the distributed
    resolution: a query that cannot complete in time degrades into a
    result marked *partial* with an explicit unresolved frontier instead
    of hanging — see ``docs/PROTOCOL.md``.  ``None`` waits forever.
    """

    fact: Fact
    spec: Union[str, SpecDescriptor, QuerySpec]
    issuer: Optional[Any] = None
    target: Optional[Any] = None
    deadline: Optional[float] = None

    @property
    def spec_name(self) -> str:
        if isinstance(self.spec, str):
            return self.spec
        if isinstance(self.spec, SpecDescriptor):
            return self.spec.canonical_name
        return self.spec.name

    def to_dict(self) -> Dict[str, Any]:
        """The wire form.  Live ``QuerySpec`` objects cannot travel."""
        if isinstance(self.spec, str):
            spec: Any = self.spec
        elif isinstance(self.spec, SpecDescriptor):
            spec = self.spec.to_dict()
        else:
            raise QueryError(
                "a QueryRequest holding a live QuerySpec is in-process only; "
                "use a spec name or a SpecDescriptor for the wire"
            )
        payload: Dict[str, Any] = {"fact": encode_fact(self.fact), "spec": spec}
        if self.issuer is not None:
            payload["issuer"] = self.issuer
        if self.target is not None:
            payload["target"] = self.target
        if self.deadline is not None:
            payload["deadline"] = self.deadline
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryRequest":
        if not isinstance(payload, Mapping):
            raise QueryError(f"malformed query request {payload!r}")
        unknown = sorted(
            set(payload) - {"fact", "spec", "issuer", "target", "deadline"}
        )
        if unknown:
            raise QueryError(f"unknown query request keys: {unknown}")
        if "fact" not in payload or "spec" not in payload:
            raise QueryError("query request needs 'fact' and 'spec'")
        raw_spec = payload["spec"]
        spec: Union[str, SpecDescriptor]
        if isinstance(raw_spec, str):
            spec = raw_spec
        else:
            spec = SpecDescriptor.from_dict(raw_spec)
        deadline = payload.get("deadline")
        if deadline is not None and (
            isinstance(deadline, bool) or not isinstance(deadline, (int, float))
        ):
            raise QueryError(f"deadline must be a number, got {deadline!r}")
        return cls(
            fact=decode_fact(payload["fact"]),
            spec=spec,
            issuer=payload.get("issuer"),
            target=payload.get("target"),
            deadline=float(deadline) if deadline is not None else None,
        )


# ---------------------------------------------------------------------- #
# annotation encoding
# ---------------------------------------------------------------------- #
def _encode_expression(expression: ProvenanceExpression) -> Dict[str, Any]:
    if isinstance(expression, Literal):
        return {"op": "lit", "label": expression.label}
    if isinstance(expression, Sum):
        node: Dict[str, Any] = {
            "op": "sum",
            "terms": [_encode_expression(term) for term in expression.terms],
        }
        if expression.location is not None:
            node["loc"] = expression.location
        return node
    if isinstance(expression, Product):
        node = {
            "op": "prod",
            "factors": [_encode_expression(factor) for factor in expression.factors],
        }
        if expression.rule is not None:
            node["rule"] = expression.rule
        if expression.location is not None:
            node["loc"] = expression.location
        return node
    if expression is EMPTY or not expression.children():
        return {"op": "empty"}
    raise QueryError(f"cannot encode provenance expression {expression!r}")


def _decode_expression(payload: Mapping[str, Any]) -> ProvenanceExpression:
    op = payload.get("op")
    if op == "lit":
        return Literal(payload["label"])
    if op == "sum":
        return Sum(
            tuple(_decode_expression(term) for term in payload["terms"]),
            location=payload.get("loc"),
        )
    if op == "prod":
        return Product(
            tuple(_decode_expression(factor) for factor in payload["factors"]),
            rule=payload.get("rule"),
            location=payload.get("loc"),
        )
    if op == "empty":
        return EMPTY
    raise QueryError(f"cannot decode provenance expression node {payload!r}")


def encode_annotation(value: Any) -> Dict[str, Any]:
    """Canonical JSON-able encoding of a query result annotation.

    Deterministic: polynomials keep their derivation order, sets are
    sorted, BDDs export in canonical bottom-up node order — so the encoded
    form is bit-identical for bit-identical results, across processes and
    hash seeds.
    """
    if value is None:
        return {"kind": "none"}
    if isinstance(value, bool):
        return {"kind": "bool", "value": value}
    if isinstance(value, int):
        return {"kind": "int", "value": value}
    if isinstance(value, str):
        return {"kind": "str", "value": value}
    if isinstance(value, ProvenanceExpression):
        return {
            "kind": "polynomial",
            "text": str(value),
            "tree": _encode_expression(value),
            "wire_size": value.wire_size(),
        }
    if isinstance(value, Bdd):
        root, nodes = export_bdd(value)
        return {
            "kind": "bdd",
            "root": root,
            "nodes": [list(node) for node in nodes],
            "node_count": value.node_count(),
            "products": sorted(
                (sorted(product) for product in value.satisfying_products()),
                key=lambda product: (len(product), product),
            ),
        }
    if isinstance(value, (set, frozenset)):
        return {"kind": "set", "values": sorted(value, key=lambda item: (str(item)))}
    if isinstance(value, float):
        return {"kind": "float", "value": value}
    return {"kind": "repr", "value": repr(value)}


def decode_annotation(payload: Mapping[str, Any]) -> Any:
    """Reconstruct the in-process value of an encoded annotation.

    BDDs are imported into a private fresh manager; everything else
    round-trips exactly.
    """
    kind = payload.get("kind")
    if kind == "none":
        return None
    if kind in ("bool", "int", "str", "float", "repr"):
        return payload["value"]
    if kind == "polynomial":
        return _decode_expression(payload["tree"])
    if kind == "set":
        return frozenset(payload["values"])
    if kind == "bdd":
        nodes = tuple(tuple(node) for node in payload["nodes"])
        return import_bdd(BddManager(), (payload["root"], nodes))
    raise QueryError(f"cannot decode annotation {payload!r}")


# ---------------------------------------------------------------------- #
# results
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QueryResult:
    """The completed answer to one :class:`QueryRequest`.

    ``annotation`` is the canonical encoded form; ``result`` the live
    in-process value (decoded from the annotation when the result crossed
    a wire).  The *body* — everything except query id and timing — is a
    deterministic function of the store and the request, which is what the
    service equivalence gate compares byte-for-byte.
    """

    vid: str
    spec: str
    issuer: Any
    target: Any
    fact: Dict[str, Any]
    annotation: Dict[str, Any]
    query_id: str = ""
    issued_at: float = 0.0
    completed_at: float = 0.0
    result: Any = field(default=None, compare=False)
    #: True when the query hit its deadline before the distributed
    #: resolution finished; ``annotation``/``result`` then hold the spec's
    #: missing-value and ``unresolved`` lists the issuer's outstanding
    #: remote sub-queries (the unresolved frontier) at expiry.
    partial: bool = False
    unresolved: Tuple[Tuple[str, ...], ...] = ()

    @property
    def latency(self) -> float:
        return self.completed_at - self.issued_at

    def body_dict(self) -> Dict[str, Any]:
        """The deterministic result content (no ids, no timestamps).

        The ``partial`` / ``unresolved`` keys appear only on degraded
        results, so complete results keep the exact pre-deadline wire
        bytes (golden-transcript byte identity).
        """
        payload = {
            "vid": self.vid,
            "spec": self.spec,
            "issuer": self.issuer,
            "target": self.target,
            "fact": dict(self.fact),
            "annotation": self.annotation,
        }
        if self.partial:
            payload["partial"] = True
            payload["unresolved"] = [list(entry) for entry in self.unresolved]
        return payload

    def canonical_bytes(self) -> bytes:
        """Canonical JSON bytes of the body — the equivalence-gate currency."""
        return canonical_json(self.body_dict()).encode("utf-8")

    def to_dict(self) -> Dict[str, Any]:
        payload = self.body_dict()
        payload["meta"] = {
            "query_id": self.query_id,
            "issued_at": self.issued_at,
            "completed_at": self.completed_at,
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryResult":
        try:
            meta = payload.get("meta", {})
            return cls(
                vid=payload["vid"],
                spec=payload["spec"],
                issuer=payload["issuer"],
                target=payload["target"],
                fact=dict(payload["fact"]),
                annotation=dict(payload["annotation"]),
                query_id=meta.get("query_id", ""),
                issued_at=meta.get("issued_at", 0.0),
                completed_at=meta.get("completed_at", 0.0),
                result=decode_annotation(payload["annotation"]),
                partial=bool(payload.get("partial", False)),
                unresolved=tuple(
                    tuple(str(part) for part in entry)
                    for entry in payload.get("unresolved", ())
                ),
            )
        except (KeyError, TypeError):
            raise QueryError(f"malformed query result {payload!r}") from None

    @classmethod
    def from_outcome(
        cls, outcome: QueryOutcome, request: QueryRequest, spec_name: str
    ) -> "QueryResult":
        """Wrap a raw :class:`QueryOutcome` produced by the query engine."""
        return cls(
            vid=outcome.vid,
            spec=spec_name,
            issuer=outcome.issuer,
            target=outcome.target,
            fact=encode_fact(request.fact),
            annotation=encode_annotation(outcome.result),
            query_id=outcome.query_id,
            issued_at=outcome.issued_at,
            completed_at=outcome.completed_at,
            result=outcome.result,
            partial=outcome.partial,
            unresolved=tuple(
                tuple(str(part) for part in entry) for entry in outcome.unresolved
            ),
        )
