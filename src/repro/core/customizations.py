"""Ready-made provenance query customizations (Section 5.2).

Each factory returns a :class:`~repro.core.query.QuerySpec` implementing one
of the customizations described in the paper:

* :func:`polynomial_query` — provenance polynomials (Section 5.2.1), the
  POLYNOMIAL query of the evaluation;
* :func:`bdd_query` — the same provenance condensed into a BDD (absorption
  provenance, Section 6.3), the BDD query of the evaluation;
* :func:`node_set_query` — the set of nodes participating in any derivation
  (Table 3, "Node Set");
* :func:`derivation_count_query` — the number of alternative derivations
  (Table 3, "# of Derivations"), used by the #DERIVATION experiments;
* :func:`derivability_query` — derivability test (Table 3), optionally
  restricted to a trusted set of base tuples / nodes;
* :func:`domain_projection` — a node filter restricting traversal to rule
  executions inside a trust domain (the graph-projection example).

All factories accept the traversal order, caching flag and granularity
(tuple / node / trust-domain level) so the experiment harness can sweep
them orthogonally.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Iterable, Optional, Sequence, Set

from ..datalog.ast import Fact
from .bdd import Bdd, BddManager
from .granularity import Granularity, GranularitySpec
from .query import QuerySpec, TraversalOrder
from .semiring import EMPTY, ProvenanceExpression, product_of, sum_of, var

__all__ = [
    "polynomial_query",
    "bdd_query",
    "node_set_query",
    "derivation_count_query",
    "derivability_query",
    "domain_projection",
]


def polynomial_query(
    name: str = "polynomial",
    traversal: TraversalOrder = TraversalOrder.BFS,
    use_cache: bool = False,
    granularity: Optional[GranularitySpec] = None,
    threshold_met: Optional[Callable[[ProvenanceExpression], bool]] = None,
    moonwalk_width: int = 1,
    node_filter: Optional[Callable[[Any], bool]] = None,
) -> QuerySpec:
    """Provenance polynomials: ``+`` across derivations, ``·`` across inputs.

    The result of a query is a
    :class:`~repro.core.semiring.ProvenanceExpression` whose leaves are
    chosen by *granularity* (default: the base tuples themselves).
    """
    spec_granularity = granularity or GranularitySpec(Granularity.TUPLE)

    def f_edb(vid: str, fact: Optional[Fact], node: Any) -> ProvenanceExpression:
        return var(spec_granularity.leaf_label(fact, vid, node))

    def f_idb(results: Sequence[ProvenanceExpression], vid: str, node: Any):
        return sum_of([result for result in results if result is not None],
                      location=str(node))

    def f_rule(results: Sequence[ProvenanceExpression], rule_label: str, node: Any):
        factors = [result for result in results if result is not None]
        if spec_granularity.level is not Granularity.TUPLE:
            # Node / trust-domain provenance tracks the nodes *involved* in a
            # derivation, which includes where each rule executed — this is
            # what makes the paper's example come out as <a + a*b>.
            factors.append(var(spec_granularity.leaf_label(None, "", node)))
        return product_of(factors, rule=rule_label, location=str(node))

    return QuerySpec(
        name=name,
        f_edb=f_edb,
        f_idb=f_idb,
        f_rule=f_rule,
        missing=lambda: EMPTY,
        traversal=traversal,
        threshold_met=threshold_met,
        moonwalk_width=moonwalk_width,
        node_filter=node_filter,
        use_cache=use_cache,
    )


def bdd_query(
    name: str = "bdd",
    manager: Optional[BddManager] = None,
    traversal: TraversalOrder = TraversalOrder.BFS,
    use_cache: bool = False,
    granularity: Optional[GranularitySpec] = None,
    node_filter: Optional[Callable[[Any], bool]] = None,
) -> QuerySpec:
    """Condensed (absorption) provenance carried as BDDs.

    Results returned between nodes are BDD handles; their wire size is the
    BDD node count, which is what makes the BDD query cheaper on bandwidth
    than POLYNOMIAL (Figure 15) at the cost of losing the rule / location
    annotations (lossy compression, Section 6.3).
    """
    bdd_manager = manager if manager is not None else BddManager()
    spec_granularity = granularity or GranularitySpec(Granularity.TUPLE)

    def f_edb(vid: str, fact: Optional[Fact], node: Any) -> Bdd:
        return bdd_manager.var(spec_granularity.leaf_label(fact, vid, node))

    def f_idb(results: Sequence[Bdd], vid: str, node: Any) -> Bdd:
        combined = bdd_manager.false()
        for result in results:
            if result is None:
                continue
            combined = combined | result
        return combined

    def f_rule(results: Sequence[Bdd], rule_label: str, node: Any) -> Bdd:
        combined = bdd_manager.true()
        for result in results:
            if result is None:
                return bdd_manager.false()
            combined = combined & result
        if spec_granularity.level is not Granularity.TUPLE:
            # As for polynomials: the executing node is involved in the
            # derivation at node / trust-domain granularity.
            combined = combined & bdd_manager.var(
                spec_granularity.leaf_label(None, "", node)
            )
        return combined

    return QuerySpec(
        name=name,
        f_edb=f_edb,
        f_idb=f_idb,
        f_rule=f_rule,
        missing=bdd_manager.false,
        traversal=traversal,
        node_filter=node_filter,
        use_cache=use_cache,
    )


def node_set_query(
    name: str = "nodeset",
    traversal: TraversalOrder = TraversalOrder.BFS,
    use_cache: bool = False,
    threshold: Optional[int] = None,
    node_filter: Optional[Callable[[Any], bool]] = None,
) -> QuerySpec:
    """The set of nodes participating in the derivation (Table 3, NodeSet).

    With *threshold* set and a DFS_THRESHOLD traversal, the query terminates
    as soon as at least ``threshold`` unique nodes have been discovered
    ("do fewer than T' unique nodes participate in the derivation").
    """

    def f_edb(vid: str, fact: Optional[Fact], node: Any) -> FrozenSet[Any]:
        return frozenset({node})

    def f_idb(results: Sequence[FrozenSet[Any]], vid: str, node: Any) -> FrozenSet[Any]:
        combined: Set[Any] = {node}
        for result in results:
            if result:
                combined.update(result)
        return frozenset(combined)

    def f_rule(results: Sequence[FrozenSet[Any]], rule_label: str, node: Any):
        combined: Set[Any] = {node}
        for result in results:
            if result:
                combined.update(result)
        return frozenset(combined)

    threshold_met = None
    if threshold is not None:
        threshold_met = lambda partial: len(partial) >= threshold  # noqa: E731

    return QuerySpec(
        name=name,
        f_edb=f_edb,
        f_idb=f_idb,
        f_rule=f_rule,
        missing=frozenset,
        traversal=traversal,
        threshold_met=threshold_met,
        node_filter=node_filter,
        use_cache=use_cache,
    )


def derivation_count_query(
    name: str = "derivations",
    traversal: TraversalOrder = TraversalOrder.BFS,
    use_cache: bool = False,
    threshold: Optional[int] = None,
    moonwalk_width: int = 1,
    node_filter: Optional[Callable[[Any], bool]] = None,
) -> QuerySpec:
    """Number of alternative derivations (Table 3, "# of Derivations").

    ``f_edb`` evaluates to 1, ``f_idb`` sums across alternative derivations
    and ``f_rule`` multiplies across rule inputs.  With *threshold* and the
    DFS_THRESHOLD traversal this becomes the paper's threshold query "does
    the tuple have more than T derivations", which can stop early
    (Figure 13 / 14, DFS-THRESHOLD).
    """

    def f_edb(vid: str, fact: Optional[Fact], node: Any) -> int:
        return 1

    def f_idb(results: Sequence[int], vid: str, node: Any) -> int:
        return sum(result for result in results if result)

    def f_rule(results: Sequence[int], rule_label: str, node: Any) -> int:
        product = 1
        for result in results:
            product *= result if result else 0
        return product

    threshold_met = None
    if threshold is not None:
        threshold_met = lambda partial: partial >= threshold  # noqa: E731

    return QuerySpec(
        name=name,
        f_edb=f_edb,
        f_idb=f_idb,
        f_rule=f_rule,
        missing=lambda: 0,
        traversal=traversal,
        threshold_met=threshold_met,
        moonwalk_width=moonwalk_width,
        node_filter=node_filter,
        use_cache=use_cache,
    )


def derivability_query(
    name: str = "derivability",
    trusted: Optional[Iterable[str]] = None,
    granularity: Optional[GranularitySpec] = None,
    traversal: TraversalOrder = TraversalOrder.BFS,
    use_cache: bool = False,
    node_filter: Optional[Callable[[Any], bool]] = None,
) -> QuerySpec:
    """Derivability test (Table 3): OR across derivations, AND across inputs.

    With *trusted* given, a base tuple only counts as available when its
    leaf label (at the selected granularity — tuple, node or domain) is in
    the trusted set; this is the paper's trust-management use case.
    """
    spec_granularity = granularity or GranularitySpec(Granularity.TUPLE)
    trusted_set = None if trusted is None else {str(item) for item in trusted}

    def f_edb(vid: str, fact: Optional[Fact], node: Any) -> bool:
        if trusted_set is None:
            return True
        return spec_granularity.leaf_label(fact, vid, node) in trusted_set

    def f_idb(results: Sequence[bool], vid: str, node: Any) -> bool:
        return any(bool(result) for result in results)

    def f_rule(results: Sequence[bool], rule_label: str, node: Any) -> bool:
        derivable = all(bool(result) for result in results) and bool(results)
        if (
            derivable
            and trusted_set is not None
            and spec_granularity.level is not Granularity.TUPLE
        ):
            # The executing node is involved, so it must be trusted too.
            derivable = spec_granularity.leaf_label(None, "", node) in trusted_set
        return derivable

    return QuerySpec(
        name=name,
        f_edb=f_edb,
        f_idb=f_idb,
        f_rule=f_rule,
        missing=lambda: False,
        traversal=traversal,
        threshold_met=(lambda partial: bool(partial))
        if traversal is TraversalOrder.DFS_THRESHOLD
        else None,
        node_filter=node_filter,
        use_cache=use_cache,
    )


def domain_projection(
    allowed_domains: Iterable[str], domain_of: Callable[[Any], str]
) -> Callable[[Any], bool]:
    """Node filter restricting traversal to rule executions inside trusted domains.

    Pass the result as ``node_filter`` to any query factory to obtain the
    graph-projection behaviour sketched at the end of Section 5.2.2.
    """
    allowed = {str(domain) for domain in allowed_domains}

    def allow(node: Any) -> bool:
        return str(domain_of(node)) in allowed

    return allow
