"""The MINCOST protocol (Figure 1 of the paper).

MINCOST computes the best (least-cost) path cost between every pair of
nodes.  Rule ``sp1`` seeds one-hop path costs from the ``link`` relation,
``sp2`` extends paths through neighbours, and ``sp3`` keeps the minimum cost
per (source, destination) pair.

The paper fixes link costs at 1, so MINCOST effectively measures hop count.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from ..datalog.ast import Fact, Program, TableDecl
from ..datalog.parser import parse_program

__all__ = ["MINCOST_SOURCE", "MINCOST_BOUNDED_SOURCE", "mincost_program", "link_facts"]

MINCOST_SOURCE = """
    // MINCOST: best path cost between all pairs of nodes (Figure 1).
    sp1 pathCost(@S,D,C) :- link(@S,D,C).
    sp2 pathCost(@S,D,C) :- link(@Z,S,C1), bestPathCost(@Z,D,C2), C=C1+C2, S!=D.
    sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
"""

# Variant with a maximum path cost, substituted into the template below.
MINCOST_BOUNDED_SOURCE = """
    // MINCOST with a RIP-style maximum cost ("infinity"), which bounds the
    // count-to-infinity behaviour of distance-vector recomputation when a
    // link deletion disconnects part of the network.
    sp1 pathCost(@S,D,C) :- link(@S,D,C).
    sp2 pathCost(@S,D,C) :- link(@Z,S,C1), bestPathCost(@Z,D,C2), C=C1+C2, S!=D,
                            C<{max_cost}.
    sp3 bestPathCost(@S,D,min<C>) :- pathCost(@S,D,C).
"""


def mincost_program(max_cost: Optional[int] = None) -> Program:
    """Return the MINCOST program as an AST, with table declarations.

    ``link`` is keyed on (source, destination): re-inserting a link with a
    different cost replaces the old tuple.  ``pathCost`` uses full-tuple
    (multiset) semantics because a given cost may be derivable several ways,
    while ``bestPathCost`` is keyed on (source, destination).

    ``max_cost`` optionally bounds path costs (like RIP's infinity of 16).
    Plain MINCOST, exactly as in Figure 1 of the paper, counts to infinity
    when a deletion disconnects a destination; the churn experiments
    therefore run the bounded variant, as any deployed distance-vector
    protocol would.
    """
    if max_cost is None:
        source = MINCOST_SOURCE
    else:
        source = MINCOST_BOUNDED_SOURCE.format(max_cost=int(max_cost))
    program = parse_program(source, name="mincost")
    program.add_declaration(TableDecl("link", 3, (0, 1)))
    program.add_declaration(TableDecl("pathCost", 3))
    program.add_declaration(TableDecl("bestPathCost", 3, (0, 1)))
    return program


def link_facts(links: Iterable[Tuple[Any, Any, int]]) -> List[Fact]:
    """Convert ``(src, dst, cost)`` triples into ``link`` facts."""
    return [Fact("link", (src, dst, cost)) for src, dst, cost in links]
