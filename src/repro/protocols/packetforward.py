"""The PACKETFORWARD protocol (Figure 2 of the paper).

PACKETFORWARD operates on the data plane: a packet event received at a node
is forwarded to the next hop along the previously-computed best path until
it reaches its destination.  The paper evaluates it with 1024-byte payloads
sent at 100 tuples/second per node (Figure 8).

``ePacket`` is an event predicate (transient, never materialized);
``recvPacket`` materializes packets that arrived at their destination so the
experiment harness can verify delivery.
"""

from __future__ import annotations

from typing import Any

from ..datalog.ast import Fact, Program, TableDecl
from ..datalog.parser import parse_program

__all__ = ["PACKETFORWARD_SOURCE", "packetforward_program", "packet_event"]

PACKETFORWARD_SOURCE = """
    // PACKETFORWARD: relay data packets along best-path next hops (Figure 2).
    f1 ePacket(@Next,Src,Dst,Payload) :- ePacket(@N,Src,Dst,Payload),
                                         bestHop(@N,Dst,Next), N!=Dst.
    f2 recvPacket(@N,Src,Dst,Payload) :- ePacket(@N,Src,Dst,Payload), N==Dst.
"""


def packetforward_program() -> Program:
    """Return the PACKETFORWARD program with table declarations."""
    program = parse_program(PACKETFORWARD_SOURCE, name="packetforward")
    program.add_declaration(TableDecl("bestHop", 3, (0, 1)))
    program.add_declaration(TableDecl("recvPacket", 4))
    return program


def packet_event(at: Any, source: Any, destination: Any, payload: str) -> Fact:
    """Build an ``ePacket`` event injected at node *at*."""
    return Fact("ePacket", (at, source, destination, payload))
