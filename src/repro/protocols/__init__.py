"""NDlog application programs used by the paper's evaluation.

* :mod:`repro.protocols.mincost` — best path cost between all node pairs.
* :mod:`repro.protocols.pathvector` — best path discovery (path-vector).
* :mod:`repro.protocols.packetforward` — data-plane packet forwarding.
"""

from .mincost import MINCOST_SOURCE, link_facts, mincost_program
from .packetforward import PACKETFORWARD_SOURCE, packet_event, packetforward_program
from .pathvector import PATHVECTOR_SOURCE, pathvector_program

__all__ = [
    "MINCOST_SOURCE",
    "link_facts",
    "mincost_program",
    "PACKETFORWARD_SOURCE",
    "packet_event",
    "packetforward_program",
    "PATHVECTOR_SOURCE",
    "pathvector_program",
]
