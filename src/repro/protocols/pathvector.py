"""The PATHVECTOR protocol.

PATHVECTOR extends MINCOST so that each node discovers the actual best path
(a vector of node identifiers) to every destination, like the path-vector
routing protocols (BGP) the paper motivates.  Compared with MINCOST, derived
``bestPath`` tuples have a single derivation (one winning path), which is
why value-based provenance is relatively cheaper for PATHVECTOR (Figure 7)
than for MINCOST (Figure 6).

The path is built with the ``f_append`` / ``f_concat`` builtins and a
``f_member`` check prevents loops.
"""

from __future__ import annotations

from ..datalog.ast import Program, TableDecl
from ..datalog.parser import parse_program

__all__ = ["PATHVECTOR_SOURCE", "pathvector_program"]

PATHVECTOR_SOURCE = """
    // PATHVECTOR: discover the best path (as a vector of nodes).
    pv1 path(@S,D,C,P) :- link(@S,D,C), P=f_append(S,D).
    pv2 path(@S,D,C,P) :- link(@Z,S,C1), bestPath(@Z,D,C2,P2), C=C1+C2,
                          f_member(P2,S)==false, P=f_concat(S,P2).
    pv3 bestPathCost(@S,D,min<C>) :- path(@S,D,C,P).
    pv4 bestPath(@S,D,C,P) :- bestPathCost(@S,D,C), path(@S,D,C,P).
    pv5 bestHop(@S,D,N) :- bestPath(@S,D,C,P), N=f_item(P,1).
"""


def pathvector_program() -> Program:
    """Return the PATHVECTOR program with its table declarations.

    ``bestPath`` and ``bestHop`` are keyed on (source, destination) so that a
    cost tie does not leave two alternative best paths installed — RapidNet's
    ``materialize`` update semantics, which the paper relies on when it notes
    PATHVECTOR tuples have a single derivation.
    """
    program = parse_program(PATHVECTOR_SOURCE, name="pathvector")
    program.add_declaration(TableDecl("link", 3, (0, 1)))
    program.add_declaration(TableDecl("path", 4))
    program.add_declaration(TableDecl("bestPathCost", 3, (0, 1)))
    program.add_declaration(TableDecl("bestPath", 4, (0, 1)))
    program.add_declaration(TableDecl("bestHop", 3, (0, 1)))
    return program
