"""A small synchronous client for the provenance query service.

:class:`ServiceClient` wraps one TCP connection: it reads the server
greeting, performs the versioned ``hello`` handshake, and then exposes
request/response as :meth:`call`.  Server-side failures surface as
:class:`ServiceError` carrying the structured wire error code; transport
and framing failures raise :class:`~repro.service.protocol.FrameError`.

Resilience
----------
Connection establishment retries with bounded exponential backoff
(``connect_attempts`` / ``connect_backoff``), riding out a server that
is still binding its socket.  Every request carries a stable ``client``
id plus a per-client request id; if the connection dies mid-request the
client reconnects, re-handshakes and *retransmits the same request id*.
The server's idempotent response cache replays the recorded response
when the original request did execute, so a retransmitted mutation is
applied exactly once (see ``ServiceServer``).

The client is deliberately synchronous — it serves tests, the shell, and
scripted drivers, none of which need concurrency inside one connection.
Concurrency across connections is the server's job.
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Any, Dict, Optional

from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    recv_frame,
    send_frame,
)

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A structured error frame returned by the server."""

    def __init__(
        self, code: str, message: str, details: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        #: Machine-readable context (e.g. the unknown node's address);
        #: empty for errors that carry none.
        self.details: Dict[str, Any] = details or {}


class ServiceClient:
    """One handshaked connection to a :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 60.0,
        max_frame: int = MAX_FRAME_BYTES,
        connect_attempts: int = 3,
        connect_backoff: float = 0.05,
        call_retries: int = 1,
        client_id: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        self.connect_attempts = max(1, int(connect_attempts))
        self.connect_backoff = connect_backoff
        self.call_retries = max(0, int(call_retries))
        #: Stable across reconnects: the idempotency key prefix the server
        #: caches responses under.
        self.client_id = client_id or f"c-{uuid.uuid4().hex[:12]}"
        self.reconnects = 0
        self._next_id = 0
        self._sock: Optional[socket.socket] = None
        self._connect()

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #
    def _connect(self) -> None:
        """Dial, read the greeting, handshake — with bounded retry/backoff."""
        last_error: Optional[Exception] = None
        for attempt in range(self.connect_attempts):
            if attempt:
                time.sleep(self.connect_backoff * (2 ** (attempt - 1)))
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            except OSError as exc:
                last_error = exc
                continue
            try:
                self.greeting = self._recv()
                self.hello = self._request_once(
                    self._request("hello", {"protocol": PROTOCOL_VERSION})
                )
                return
            except BaseException:
                self._sock.close()
                self._sock = None
                raise
        raise ConnectionError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.connect_attempts} attempts"
        ) from last_error

    def _reconnect(self) -> None:
        self.reconnects += 1
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._connect()

    # ------------------------------------------------------------------ #
    # request/response
    # ------------------------------------------------------------------ #
    def _request(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        self._next_id += 1
        return {
            "id": self._next_id,
            "client": self.client_id,
            "op": op,
            "params": params,
        }

    def call(self, op: str, **params: Any) -> Any:
        """Issue one request and return the ``result`` payload.

        Raises :class:`ServiceError` on an error frame.  A connection
        that breaks mid-exchange is re-dialed and the *same* request
        (same client and request id) retransmitted up to ``call_retries``
        times — safe because the server replays cached responses for ids
        it already executed; only then does :class:`FrameError` (or the
        underlying ``OSError``) escape.
        """
        request = self._request(op, params)
        retries_left = self.call_retries
        while True:
            try:
                return self._request_once(request)
            except (FrameError, OSError):
                if retries_left <= 0:
                    raise
                retries_left -= 1
                self._reconnect()

    def _request_once(self, request: Dict[str, Any]) -> Any:
        assert self._sock is not None, "client is closed"
        send_frame(self._sock, request, max_frame=self.max_frame)
        response = self._recv()
        if response.get("id") != request["id"]:
            raise FrameError(
                "bad-frame",
                f"response id {response.get('id')!r} does not match "
                f"request {request['id']}",
            )
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("code", "internal")),
            str(error.get("message", "unknown error")),
            details=error.get("details"),
        )

    def _recv(self) -> Dict[str, Any]:
        assert self._sock is not None, "client is closed"
        frame = recv_frame(self._sock, max_frame=self.max_frame)
        if frame is None:
            raise FrameError("bad-frame", "server closed the connection")
        return frame

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown_server(self) -> Any:
        """Ask the server to drain and stop."""
        return self.call("shutdown")

    def close(self) -> None:
        if self._sock is None:
            return
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
