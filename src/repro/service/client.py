"""A small synchronous client for the provenance query service.

:class:`ServiceClient` wraps one TCP connection: it reads the server
greeting, performs the versioned ``hello`` handshake, and then exposes
request/response as :meth:`call`.  Server-side failures surface as
:class:`ServiceError` carrying the structured wire error code; transport
and framing failures raise :class:`~repro.service.protocol.FrameError`.

The client is deliberately synchronous — it serves tests, the shell, and
scripted drivers, none of which need concurrency inside one connection.
Concurrency across connections is the server's job.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    recv_frame,
    send_frame,
)

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """A structured error frame returned by the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServiceClient:
    """One handshaked connection to a :class:`~repro.service.server.ServiceServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 60.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        self.max_frame = max_frame
        self._next_id = 0
        self._sock = socket.create_connection((host, port), timeout=timeout)
        try:
            self.greeting = self._recv()
            self.hello = self.call("hello", protocol=PROTOCOL_VERSION)
        except BaseException:
            self._sock.close()
            raise

    # ------------------------------------------------------------------ #
    # request/response
    # ------------------------------------------------------------------ #
    def call(self, op: str, **params: Any) -> Any:
        """Issue one request and return the ``result`` payload.

        Raises :class:`ServiceError` on an error frame and
        :class:`FrameError` if the connection breaks mid-exchange.
        """
        self._next_id += 1
        request_id = self._next_id
        send_frame(
            self._sock,
            {"id": request_id, "op": op, "params": params},
            max_frame=self.max_frame,
        )
        response = self._recv()
        if response.get("id") != request_id:
            raise FrameError(
                "bad-frame",
                f"response id {response.get('id')!r} does not match request {request_id}",
            )
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("code", "internal")), str(error.get("message", "unknown error"))
        )

    def _recv(self) -> Dict[str, Any]:
        frame = recv_frame(self._sock, max_frame=self.max_frame)
        if frame is None:
            raise FrameError("bad-frame", "server closed the connection")
        return frame

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown_server(self) -> Any:
        """Ask the server to drain and stop."""
        return self.call("shutdown")

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
