"""Wire protocol: length-prefixed canonical-JSON frames.

Every message on the socket — in either direction — is one *frame*:

* a 4-byte big-endian unsigned length ``N``;
* ``N`` bytes of UTF-8 canonical JSON (sorted keys, compact separators —
  the same canonical form :mod:`repro.core.requests` uses, so a frame's
  bytes are a deterministic function of its payload).

Requests are ``{"id": ..., "op": ..., "params": {...}}``; responses echo
the id as ``{"id": ..., "ok": true, "result": ...}`` or
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``.
The full op catalogue and error-code table live in ``docs/PROTOCOL.md``.

The server opens every connection with a greeting frame
(``{"type": "greeting", "protocol": N, ...}``) and requires the first
request to be a ``hello`` carrying a matching protocol number — version
skew fails fast at the handshake instead of mid-session.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ERROR_CODES",
    "ProtocolError",
    "FrameError",
    "canonical_payload_bytes",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "send_frame",
    "recv_frame",
]

#: Version carried in the greeting and required in the client hello.
PROTOCOL_VERSION = 1

#: Hard cap on a single frame's payload size, both directions.  Large
#: enough for any realistic query result, small enough that a corrupt or
#: hostile length prefix cannot make the server buffer gigabytes.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LENGTH = struct.Struct(">I")

#: Structured error codes, with the human meaning documented once here
#: (and in docs/PROTOCOL.md) rather than improvised per call site.
ERROR_CODES: Dict[str, str] = {
    "bad-frame": "frame payload is not a JSON object",
    "frame-too-large": "frame length exceeds the server's maximum",
    "bad-request": "request is missing id/op or has invalid params",
    "unsupported-protocol": "client hello carries an unsupported protocol version",
    "handshake-required": "first request on a connection must be 'hello'",
    "unknown-op": "request op is not in the server's catalogue",
    "query-error": "the provenance engine rejected the request",
    "timeout": "the query did not complete within the event budget",
    "unknown-node": "a request addressed a node that does not exist",
    "no-route": "the named nodes are not connected by any path",
    "simulation-error": "the simulator rejected a scheduling operation",
    "network-error": "a network-substrate failure not covered above",
    "shutting-down": "the server is draining and no longer accepts requests",
    "internal": "unexpected server-side failure",
}


class ProtocolError(Exception):
    """A structured protocol-level failure with a wire error code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message


class FrameError(ProtocolError):
    """A framing failure; the connection is unusable afterwards."""


def canonical_payload_bytes(payload: Any) -> bytes:
    """Canonical JSON bytes of *payload* (sorted keys, compact separators)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def encode_frame(payload: Any, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """One wire frame: length prefix + canonical JSON payload."""
    body = canonical_payload_bytes(payload)
    if len(body) > max_frame:
        raise FrameError(
            "frame-too-large",
            f"frame payload is {len(body)} bytes (max {max_frame})",
        )
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict[str, Any]:
    """Decode one frame payload; must be a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError("bad-frame", f"undecodable frame payload: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            "bad-frame", f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


async def read_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    Raises :class:`FrameError` on an oversized length prefix or an
    undecodable payload, and ``asyncio.IncompleteReadError`` when the
    peer disconnects mid-frame.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between frames
        raise
    (length,) = _LENGTH.unpack(prefix)
    if length > max_frame:
        raise FrameError("frame-too-large", f"incoming frame of {length} bytes (max {max_frame})")
    body = await reader.readexactly(length)
    return decode_payload(body)


# ---------------------------------------------------------------------- #
# synchronous (client-side) framing
# ---------------------------------------------------------------------- #
def send_frame(sock: socket.socket, payload: Any, max_frame: int = MAX_FRAME_BYTES) -> None:
    sock.sendall(encode_frame(payload, max_frame=max_frame))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise FrameError("bad-frame", "connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    sock: socket.socket, max_frame: int = MAX_FRAME_BYTES
) -> Optional[Dict[str, Any]]:
    """Blocking read of one frame; ``None`` on clean EOF."""
    first = sock.recv(1)
    if not first:
        return None
    prefix = first + _recv_exactly(sock, _LENGTH.size - 1)
    (length,) = _LENGTH.unpack(prefix)
    if length > max_frame:
        raise FrameError("frame-too-large", f"incoming frame of {length} bytes (max {max_frame})")
    return decode_payload(_recv_exactly(sock, length))
