"""Build a ready-to-serve :class:`ExspanNetwork` from string specs.

The service CLI and the shell's embedded mode share this tiny grammar so
``python -m repro.service --topology ring:6`` and
``python -m repro.shell --topology ring:6`` mean the same thing:

* topology — ``ring:N``, ``line:N``, ``grid:RxC``, ``transit-stub:D``
  (D domains), or ``cluster:CxN`` (C clusters of N nodes);
* program — ``mincost``, ``mincost:MAXCOST`` (bounded), ``pathvector``,
  or ``packetforward``;
* mode — any spelling :func:`repro.core.config.coerce_mode` accepts
  (``none`` / ``ref`` / ``reference`` / ``value`` / ``centralized``).

The returned network is seeded with the topology's link facts and run to
fixpoint, so the first client query sees a converged protocol state.
"""

from __future__ import annotations

from typing import Optional

from ..core.api import ExspanNetwork
from ..core.config import ExspanConfig
from ..core.errors import ProvenanceError
from ..net.topology import (
    Topology,
    cluster_topology,
    grid_topology,
    line_topology,
    ring_topology,
    transit_stub_topology,
)
from ..protocols.mincost import mincost_program
from ..protocols.packetforward import packetforward_program
from ..protocols.pathvector import pathvector_program

__all__ = ["build_topology", "build_program", "build_network"]


def _int_arg(spec: str, arg: str, what: str) -> int:
    try:
        value = int(arg)
    except ValueError:
        raise ProvenanceError(f"bad {what} in topology spec {spec!r}") from None
    if value <= 0:
        raise ProvenanceError(f"{what} must be positive in topology spec {spec!r}")
    return value


def build_topology(spec: str, seed: int = 0) -> Topology:
    """Parse a ``kind:size`` topology spec (see module docstring)."""
    kind, _, arg = spec.partition(":")
    kind = kind.strip().lower()
    if kind == "ring":
        return ring_topology(_int_arg(spec, arg, "node count"), seed=seed)
    if kind == "line":
        return line_topology(_int_arg(spec, arg, "node count"))
    if kind == "grid":
        rows_text, _, columns_text = arg.partition("x")
        rows = _int_arg(spec, rows_text, "row count")
        columns = _int_arg(spec, columns_text, "column count")
        return grid_topology(rows, columns)
    if kind == "transit-stub":
        return transit_stub_topology(domains=_int_arg(spec, arg, "domain count"), seed=seed)
    if kind == "cluster":
        clusters_text, _, per_cluster_text = arg.partition("x")
        clusters = _int_arg(spec, clusters_text, "cluster count")
        per_cluster = _int_arg(spec, per_cluster_text, "nodes per cluster")
        return cluster_topology(clusters, per_cluster, seed=seed)
    raise ProvenanceError(
        f"unknown topology spec {spec!r} "
        "(expected ring:N, line:N, grid:RxC, transit-stub:D, or cluster:CxN)"
    )


def build_program(spec: str):
    """Parse a program spec (see module docstring)."""
    kind, _, arg = spec.partition(":")
    kind = kind.strip().lower()
    if kind == "mincost":
        max_cost = int(arg) if arg else None
        return mincost_program(max_cost=max_cost)
    if kind == "pathvector":
        return pathvector_program()
    if kind == "packetforward":
        return packetforward_program()
    raise ProvenanceError(
        f"unknown program spec {spec!r} (expected mincost[:MAXCOST], "
        "pathvector, or packetforward)"
    )


def build_network(
    topology_spec: str = "ring:6",
    program_spec: str = "mincost",
    mode: str = "ref",
    seed: int = 0,
    config: Optional[ExspanConfig] = None,
    converge: bool = True,
) -> ExspanNetwork:
    """Build, seed, and (by default) converge a network from string specs."""
    if config is None:
        # greedy planning so the service's EXPLAIN op has plans to render
        config = ExspanConfig(mode=mode, seed=seed, planner="greedy")
    network = ExspanNetwork(
        build_topology(topology_spec, seed=seed),
        build_program(program_spec),
        config=config,
    )
    if converge:
        network.seed_links()
        network.run_to_fixpoint()
    return network
