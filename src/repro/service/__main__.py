"""Stand-alone service entry point: ``python -m repro.service``.

Builds a network from string specs (see :mod:`repro.service.bootstrap`),
binds the socket server, prints ``LISTENING <host> <port>`` on stdout
(and optionally writes the port to ``--port-file`` for scripted
harnesses), then serves until a client sends ``shutdown`` or the
process receives SIGINT/SIGTERM.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
from typing import List, Optional

from .bootstrap import build_network
from .server import ExspanService, ServiceServer


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a live ExspanNetwork over the wire protocol.",
    )
    parser.add_argument("--topology", default="ring:6", help="ring:N, line:N, grid:RxC, ...")
    parser.add_argument(
        "--program", default="mincost", help="mincost[:MAXCOST], pathvector, packetforward"
    )
    parser.add_argument("--mode", default="ref", help="provenance mode (none/ref/value/...)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument(
        "--port-file", default=None, help="write the bound port here once listening"
    )
    parser.add_argument(
        "--no-converge",
        action="store_true",
        help="skip seeding links and running to fixpoint before serving",
    )
    return parser


async def _amain(args: argparse.Namespace) -> int:
    network = build_network(
        topology_spec=args.topology,
        program_spec=args.program,
        mode=args.mode,
        seed=args.seed,
        converge=not args.no_converge,
    )
    server = ServiceServer(ExspanService(network), host=args.host, port=args.port)
    await server.start()
    host, port = server.address
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{port}\n")
    print(f"LISTENING {host} {port}", flush=True)

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, lambda: asyncio.ensure_future(server.stop()))
    await server.serve_until_stopped()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
