"""The always-on query service: an asyncio server around one ExspanNetwork.

Concurrency model
-----------------
The simulation engine is single-threaded and deterministic; the server
keeps it that way.  Each client connection gets its own reader coroutine,
but every request executes under one ``asyncio.Lock`` in arrival order —
concurrent clients interleave at request granularity, never inside the
engine.  Because query resolutions are pure functions of the store, the
spec and the depth bound, results served to N interleaved clients are
byte-identical to the same requests issued serially in-process (the
service equivalence gate in ``tests/test_service_session.py``).

Graceful shutdown
-----------------
``shutdown`` (the op, or :meth:`ServiceServer.stop`) stops accepting new
connections, lets every in-flight request finish — each query request
drains its distributed resolution to completion before replying — and
runs the simulator to idle so no half-delivered protocol messages are
abandoned.

Embedding
---------
:class:`ServiceThread` runs the server on a background thread for tests
and the shell's ``--serve`` mode; ``python -m repro.service`` is the
stand-alone entry point.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.api import ExspanNetwork
from ..core.config import MODE_NAMES
from ..core.errors import ProvenanceError, QueryError, QueryTimeoutError
from ..net.errors import NetworkError
from ..core.requests import (
    QueryRequest,
    SpecDescriptor,
    decode_fact,
    encode_fact,
)
from ..core.vid import fact_vid
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    ProtocolError,
    encode_frame,
    read_frame,
)

__all__ = ["ExspanService", "ServiceServer", "ServiceThread", "serve"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError("bad-request", message)


class ExspanService:
    """Op dispatch for one hosted network (transport-independent).

    Every public protocol op maps to one ``op_*`` method taking the
    params dict and returning a JSON-able result.  The transport layer
    (:class:`ServiceServer`) is responsible for serializing calls; this
    class assumes single-threaded access to the engine.
    """

    def __init__(self, network: ExspanNetwork, description: str = "exspan") -> None:
        self.network = network
        self.description = description
        self._ops: Dict[str, Callable[[Dict[str, Any]], Any]] = {
            name[3:]: getattr(self, name) for name in dir(self) if name.startswith("op_")
        }

    def ops(self) -> List[str]:
        return sorted(self._ops)

    def dispatch(self, op: str, params: Dict[str, Any]) -> Any:
        handler = self._ops.get(op)
        if handler is None:
            raise ProtocolError("unknown-op", f"unknown op {op!r}")
        tracer = self.network.tracer
        if tracer is None:
            return handler(params)
        with tracer.request(f"service.{op}", op=op):
            return handler(params)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def greeting(self) -> Dict[str, Any]:
        return {
            "type": "greeting",
            "protocol": PROTOCOL_VERSION,
            "service": self.description,
            "network": self.op_info({}),
        }

    def op_hello(self, params: Dict[str, Any]) -> Dict[str, Any]:
        protocol = params.get("protocol")
        if protocol != PROTOCOL_VERSION:
            raise ProtocolError(
                "unsupported-protocol",
                f"server speaks protocol {PROTOCOL_VERSION}, client sent {protocol!r}",
            )
        return {"protocol": PROTOCOL_VERSION, "service": self.description, "ops": self.ops()}

    def op_info(self, params: Dict[str, Any]) -> Dict[str, Any]:
        network = self.network
        return {
            "topology": getattr(network.topology, "name", None),
            "node_count": network.node_count,
            "mode": MODE_NAMES[network.mode],
            "config": network.config.to_dict(),
            "now": network.now,
            "events_executed": network.simulator.events_executed,
        }

    def op_ping(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self._clock()

    def op_nodes(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"nodes": [str(address) for address in self.network.addresses()]}

    def op_tables(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"tables": self.network.predicates()}

    def op_specs(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return {"specs": self.network.spec_names()}

    def op_tuples(self, params: Dict[str, Any]) -> Dict[str, Any]:
        table = params.get("table")
        _require(isinstance(table, str), "tuples requires a 'table' name")
        # catalog.table() auto-creates on first use; validate first so a
        # typo surfaces as an error instead of minting an empty table.
        if table not in self.network.predicates():
            raise ProtocolError("query-error", f"unknown table {table!r}")
        rows = self.network.tuples(table)
        return {
            "table": table,
            "rows": [[str(node), list(values)] for node, values in rows],
        }

    # ------------------------------------------------------------------ #
    # query specs and queries
    # ------------------------------------------------------------------ #
    def op_register_spec(self, params: Dict[str, Any]) -> Dict[str, Any]:
        spec = params.get("spec")
        _require(isinstance(spec, dict), "register_spec requires a 'spec' descriptor object")
        descriptor = SpecDescriptor.from_dict(spec)
        return {"name": self.network.register_spec(descriptor)}

    def op_query(self, params: Dict[str, Any]) -> Dict[str, Any]:
        payload = {
            key: params[key] for key in ("fact", "spec", "issuer", "target") if key in params
        }
        request = QueryRequest.from_dict(payload)
        max_events = params.get("max_events")
        _require(
            max_events is None or (isinstance(max_events, int) and max_events > 0),
            "max_events must be a positive int",
        )
        result = self.network.execute(request, max_events=max_events)
        return result.to_dict()

    # ------------------------------------------------------------------ #
    # fact and time mutation
    # ------------------------------------------------------------------ #
    def _fact(self, params: Dict[str, Any]) -> Any:
        _require("fact" in params, "missing 'fact'")
        return decode_fact(params["fact"])

    def _clock(self) -> Dict[str, Any]:
        return {
            "now": self.network.now,
            "events_executed": self.network.simulator.events_executed,
        }

    def op_insert(self, params: Dict[str, Any]) -> Dict[str, Any]:
        self.network.insert_fact(self._fact(params), process=bool(params.get("process", True)))
        return self._clock()

    def op_delete(self, params: Dict[str, Any]) -> Dict[str, Any]:
        self.network.delete_fact(self._fact(params), process=bool(params.get("process", True)))
        return self._clock()

    def op_run(self, params: Dict[str, Any]) -> Dict[str, Any]:
        duration = params.get("duration")
        _require(
            isinstance(duration, (int, float)) and duration >= 0,
            "run requires a non-negative 'duration'",
        )
        self.network.run_for(float(duration))
        return self._clock()

    def op_run_until_idle(self, params: Dict[str, Any]) -> Dict[str, Any]:
        max_events = params.get("max_events")
        _require(
            max_events is None or (isinstance(max_events, int) and max_events > 0),
            "max_events must be a positive int",
        )
        executed = self.network.simulator.run_until_idle(max_events=max_events)
        return {**self._clock(), "executed": executed}

    def op_seed_links(self, params: Dict[str, Any]) -> Dict[str, Any]:
        inserted = self.network.seed_links()
        return {**self._clock(), "inserted": inserted}

    def op_fixpoint(self, params: Dict[str, Any]) -> Dict[str, Any]:
        fixpoint_time = self.network.run_to_fixpoint()
        return {**self._clock(), "fixpoint_time": fixpoint_time}

    def op_snapshot(self, params: Dict[str, Any]) -> Dict[str, Any]:
        path = params.get("path")
        _require(
            isinstance(path, str) and bool(path),
            "snapshot requires a non-empty 'path'",
        )
        # checkpoint() quiesces the network first (a checkpoint of a
        # mid-flight simulation cannot carry the scheduled closures).
        summary = self.network.checkpoint(path)
        return {**self._clock(), **summary, "storage": self.network.storage_stats()}

    # ------------------------------------------------------------------ #
    # statistics and explanations
    # ------------------------------------------------------------------ #
    def op_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.network.stats_snapshot()

    def op_metrics(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return self.network.metrics_snapshot()

    def op_query_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        return dict(self.network.query_service_stats())

    def op_explain(self, params: Dict[str, Any]) -> Dict[str, Any]:
        rule = params.get("rule")
        _require(isinstance(rule, str), "explain requires a 'rule' label")
        address = params.get("address")
        try:
            text = self.network.explain(rule, address=address)
        except KeyError:
            raise ProtocolError("query-error", f"unknown rule {rule!r}") from None
        return {"rule": rule, "text": text}

    def op_faults(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Install a fault plan and/or report the injector's state.

        ``plan`` (optional) is a fault-spec string for
        :func:`repro.faults.plan.parse_fault_spec`; an empty plan installs
        nothing.  ``digest`` (optional bool) additionally computes the
        convergence digest of the current network state — the oracle the
        chaos gate compares against a fault-free run.
        """
        plan = params.get("plan")
        if plan is not None:
            _require(isinstance(plan, str), "faults 'plan' must be a spec string")
            self.network.install_faults(plan)
        injector = self.network.fault_injector
        result: Dict[str, Any] = {
            "installed": injector is not None,
            "plan": injector.plan.describe() if injector is not None else None,
            "stats": injector.stats() if injector is not None else {},
        }
        if params.get("digest"):
            from ..faults.oracle import convergence_digest

            result["convergence"] = convergence_digest(self.network)
        return result

    def op_prov(self, params: Dict[str, Any]) -> Dict[str, Any]:
        fact = self._fact(params)
        depth = params.get("depth", 8)
        _require(isinstance(depth, int) and depth > 0, "depth must be a positive int")
        graph = self.network.provenance_graph()
        vid = fact_vid(fact)
        return {
            "fact": encode_fact(fact),
            "vid": vid,
            "tree": graph.to_text_tree(vid, max_depth=depth),
        }


class ServiceServer:
    """The asyncio socket front of an :class:`ExspanService`."""

    def __init__(
        self,
        service: ExspanService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self._server: Optional[asyncio.base_events.Server] = None
        self._engine_lock = asyncio.Lock()
        self._stopping = asyncio.Event()
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        # Bounded (client, request id) -> response cache making request
        # retransmission idempotent: a client that lost the connection
        # after the server executed (but before the reply arrived) can
        # resend the same id and get the recorded response instead of
        # re-running the mutation.  Only requests carrying a "client"
        # field participate; only successful responses are recorded
        # (failures never mutated, so re-execution is already safe).
        self._response_cache: Dict[Tuple[Any, Any], Dict[str, Any]] = {}
        self._response_cache_cap = 512
        self.idempotent_replays = 0

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)

    async def serve_until_stopped(self) -> None:
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        await self._drain()

    async def stop(self) -> None:
        self._stopping.set()

    async def _drain(self) -> None:
        """Stop accepting, let in-flight requests finish, quiesce the sim."""
        assert self._server is not None
        self._server.close()
        await self._idle.wait()
        async with self._engine_lock:
            self.service.network.simulator.run_until_idle()
        await self._server.wait_closed()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            writer.write(encode_frame(self.service.greeting(), max_frame=self.max_frame))
            await writer.drain()
            greeted = False
            while not self._stopping.is_set():
                try:
                    request = await read_frame(reader, max_frame=self.max_frame)
                except FrameError as exc:
                    # The stream is unframed from here on; report and close.
                    await self._send(writer, self._error_frame(None, exc))
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # peer vanished mid-frame
                if request is None:
                    return  # clean disconnect
                response = await self._handle_request(request, greeted)
                if request.get("op") == "hello" and response.get("ok"):
                    greeted = True
                try:
                    await self._send(writer, response)
                except (ConnectionError, BrokenPipeError):
                    return
                if request.get("op") == "shutdown" and response.get("ok"):
                    self._stopping.set()
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: Dict[str, Any]) -> None:
        try:
            frame = encode_frame(payload, max_frame=self.max_frame)
        except FrameError as exc:
            frame = encode_frame(
                self._error_frame(payload.get("id"), exc), max_frame=self.max_frame
            )
        writer.write(frame)
        await writer.drain()

    @staticmethod
    def _error_frame(
        request_id: Any,
        error: ProtocolError,
        details: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "id": request_id,
            "ok": False,
            "error": {"code": error.code, "message": error.message},
        }
        if details:
            payload["error"]["details"] = details
        return payload

    async def _handle_request(
        self, request: Dict[str, Any], greeted: bool
    ) -> Dict[str, Any]:
        request_id = request.get("id")
        op = request.get("op")
        if request_id is None or not isinstance(op, str):
            return self._error_frame(
                request_id,
                ProtocolError("bad-request", "request needs an 'id' and a string 'op'"),
            )
        params = request.get("params", {})
        if not isinstance(params, dict):
            return self._error_frame(
                request_id, ProtocolError("bad-request", "'params' must be an object")
            )
        if not greeted and op not in ("hello", "shutdown"):
            return self._error_frame(
                request_id,
                ProtocolError("handshake-required", "send 'hello' before other requests"),
            )
        if self._stopping.is_set():
            return self._error_frame(
                request_id, ProtocolError("shutting-down", "server is draining")
            )
        if op == "shutdown":
            return {"id": request_id, "ok": True, "result": {"stopping": True}}
        client = request.get("client")
        cache_key = (client, request_id) if client is not None else None
        if cache_key is not None:
            cached = self._response_cache.get(cache_key)
            if cached is not None:
                self.idempotent_replays += 1
                return cached
        self._inflight += 1
        self._idle.clear()
        try:
            async with self._engine_lock:
                result = self.service.dispatch(op, params)
            response = {"id": request_id, "ok": True, "result": result}
            if cache_key is not None:
                if len(self._response_cache) >= self._response_cache_cap:
                    self._response_cache.pop(next(iter(self._response_cache)))
                self._response_cache[cache_key] = response
            return response
        except ProtocolError as exc:
            return self._error_frame(request_id, exc)
        except QueryTimeoutError as exc:
            return self._error_frame(request_id, ProtocolError("timeout", str(exc)))
        except NetworkError as exc:
            # Structured network/simulation failures keep their own code
            # (unknown-node, no-route, simulation-error, network-error)
            # and machine-readable details instead of a catch-all.
            return self._error_frame(
                request_id, ProtocolError(exc.code, str(exc)), details=exc.details()
            )
        except (QueryError, ProvenanceError, ValueError) as exc:
            return self._error_frame(request_id, ProtocolError("query-error", str(exc)))
        except Exception as exc:  # pragma: no cover - defensive
            return self._error_frame(
                request_id,
                ProtocolError("internal", f"{type(exc).__name__}: {exc}"),
            )
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()


async def serve(
    network: ExspanNetwork,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[Callable[[Tuple[str, int]], None]] = None,
) -> None:
    """Serve *network* until a client sends ``shutdown`` (or cancellation)."""
    server = ServiceServer(ExspanService(network), host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server.address)
    await server.serve_until_stopped()


class ServiceThread:
    """An embedded server on a daemon thread (tests, shell embedded mode).

    The hosted network must not be touched by the embedding thread while
    the service is running — the service owns it until :meth:`stop`.
    """

    def __init__(self, network: ExspanNetwork, host: str = "127.0.0.1", port: int = 0):
        self.network = network
        self._host = host
        self._port = port
        self._address: Optional[Tuple[str, int]] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[ServiceServer] = None
        self._thread = threading.Thread(target=self._run, name="exspan-service", daemon=True)
        self._failure: Optional[BaseException] = None

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = ServiceServer(ExspanService(self.network), host=self._host, port=self._port)
        await self._server.start()
        self._address = self._server.address
        self._ready.set()
        await self._server.serve_until_stopped()

    def start(self) -> Tuple[str, int]:
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._failure is not None:
            raise RuntimeError("service thread failed to start") from self._failure
        assert self._address is not None, "service thread did not come up"
        return self._address

    @property
    def address(self) -> Tuple[str, int]:
        assert self._address is not None, "service thread not started"
        return self._address

    def stop(self, timeout: float = 30.0) -> None:
        loop, server = self._loop, self._server
        if loop is not None and server is not None and self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(server.stop(), loop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
