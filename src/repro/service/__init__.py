"""Always-on provenance query service.

This package turns an in-process :class:`~repro.core.api.ExspanNetwork`
into a long-running network service: a small asyncio socket server
(:mod:`repro.service.server`) speaks a length-prefixed canonical-JSON
protocol (:mod:`repro.service.protocol`, specified in
``docs/PROTOCOL.md``) and serves concurrent clients — registering query
specs, issuing provenance queries, mutating facts, advancing simulated
time, and fetching stats / metrics / EXPLAIN output.

Everything the wire exposes goes through the typed
:class:`~repro.core.requests.QueryRequest` /
:class:`~repro.core.requests.QueryResult` layer, so socket clients see
byte-identical results to in-process callers.  The interactive operator
console (``python -m repro.shell``) is one such client.
"""

from .bootstrap import build_network, build_program, build_topology
from .client import ServiceClient, ServiceError
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameError,
    ProtocolError,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
)
from .server import ExspanService, ServiceServer, ServiceThread, serve

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "FrameError",
    "ProtocolError",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
    "ServiceClient",
    "ServiceError",
    "ExspanService",
    "ServiceServer",
    "ServiceThread",
    "serve",
    "build_network",
    "build_program",
    "build_topology",
]
