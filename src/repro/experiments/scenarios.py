"""Declarative scenario registry for the evaluation suite.

A :class:`Scenario` describes one experiment sweep — which figure it
reproduces (if any), the axes it sweeps (topology sizes, provenance modes,
churn/query parameters), and its parameters at two scales: ``quick`` (CI /
laptop defaults) and ``paper`` (the paper's own sweep sizes).  Each
scenario expands into an ordered list of independent :class:`TrialSpec`
units that :mod:`repro.experiments.orchestrator` can run serially or fan
out across a process pool; :func:`assemble_figure` folds the trial results
back into the :class:`~repro.experiments.metrics.FigureResult` the
reporting layer and shape checks consume.

Adding an experiment means registering a scenario here — no new script:
the two registry-only scenarios at the bottom (a churn-intensity sweep
sized for the paper's 200-node networks, and a planner ablation) are the
proof.  Every figure 6-17 of the paper is registered; registry completeness
is enforced by ``tests/test_orchestrator.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from .metrics import FigureResult
from .trials import MAINTENANCE_MODES, TRIAL_FUNCTIONS

__all__ = [
    "TrialSpec",
    "Scenario",
    "SCENARIOS",
    "register",
    "unregister",
    "get_scenario",
    "scenario_for_figure",
    "figure_scenarios",
    "resolve_scenarios",
    "run_trial_spec",
    "assemble_figure",
    "run_figure",
]


@dataclass(frozen=True)
class TrialSpec:
    """One independently runnable trial: a function name plus JSON kwargs."""

    scenario: str
    trial_id: str
    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Scenario:
    """One registered experiment sweep (usually: one figure of the paper)."""

    name: str
    title: str
    x_label: str
    y_label: str
    expand: Callable[[Mapping[str, Any]], List[TrialSpec]]
    figure: Optional[str] = None
    description: str = ""
    quick: Mapping[str, Any] = field(default_factory=dict)
    paper: Mapping[str, Any] = field(default_factory=dict)

    def params(
        self, scale: str = "quick", overrides: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """Effective parameters at *scale*, with explicit *overrides* on top.

        Unknown override keys raise ``TypeError`` (so a typo cannot
        silently run an experiment with default parameters); a ``None``
        value means "use the scale's default".  Beyond the scenario's own
        parameters, only the extra keys its expansion actually consumes
        are accepted (``modes``/``planner``, advertised via the expansion
        function's ``override_keys`` attribute).
        """
        if scale not in ("quick", "paper"):
            raise ValueError(f"unknown scale {scale!r} (expected 'quick' or 'paper')")
        params = dict(self.quick)
        if scale == "paper":
            params.update(self.paper)
        if overrides:
            allowed = (
                set(self.quick)
                | set(self.paper)
                | set(getattr(self.expand, "override_keys", ()))
            )
            unknown = sorted(set(overrides) - allowed)
            if unknown:
                raise TypeError(
                    f"scenario {self.name!r} got unknown parameter(s) "
                    f"{', '.join(unknown)}; known: {', '.join(sorted(allowed))}"
                )
            params.update(
                (key, value) for key, value in overrides.items() if value is not None
            )
        return params

    def trials(
        self, scale: str = "quick", overrides: Optional[Mapping[str, Any]] = None
    ) -> List[TrialSpec]:
        """Expand this scenario into its ordered, independent trial specs."""
        return self.expand(self.params(scale, overrides))


#: The global registry, in registration (= figure) order.
SCENARIOS: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add *scenario* to the registry (name must be unused)."""
    if scenario.name in SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    for spec in scenario.trials("quick"):
        if spec.fn not in TRIAL_FUNCTIONS:
            raise ValueError(
                f"scenario {scenario.name!r} references unknown trial fn {spec.fn!r}"
            )
    SCENARIOS[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    """Remove a scenario (used by tests that register temporary scenarios)."""
    SCENARIOS.pop(name, None)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}"
        ) from None


def scenario_for_figure(figure_id: str) -> Scenario:
    """The scenario reproducing paper figure *figure_id* (e.g. ``"6"``)."""
    wanted = str(figure_id)
    for scenario in SCENARIOS.values():
        if scenario.figure == wanted:
            return scenario
    raise KeyError(f"no scenario registered for figure {figure_id!r}")


def figure_scenarios() -> List[Scenario]:
    """All scenarios that reproduce a paper figure, in figure order."""
    return [scenario for scenario in SCENARIOS.values() if scenario.figure is not None]


def resolve_scenarios(names: Optional[Sequence[str]] = None) -> List[Scenario]:
    """Map user-facing selectors to scenarios.

    *names* may mix scenario names and bare figure numbers; ``None`` (or
    ``["all"]``) selects the whole registry in registration order.
    """
    if not names or list(names) == ["all"]:
        return list(SCENARIOS.values())
    selected: List[Scenario] = []
    for name in names:
        scenario = (
            SCENARIOS.get(str(name))
            if str(name) in SCENARIOS
            else scenario_for_figure(str(name))
        )
        if scenario not in selected:
            selected.append(scenario)
    return selected


# ---------------------------------------------------------------------- #
# execution and assembly
# ---------------------------------------------------------------------- #
def run_trial_spec(spec: TrialSpec) -> Dict[str, Any]:
    """Execute one trial in the current process (workers call this too)."""
    return TRIAL_FUNCTIONS[spec.fn](**spec.kwargs)


def assemble_figure(
    scenario: Scenario, results: Sequence[Mapping[str, Any]]
) -> FigureResult:
    """Fold ordered trial results into one :class:`FigureResult`.

    Series and notes are merged in trial order, which reproduces the exact
    series/point ordering the pre-registry monolithic runners emitted.
    """
    figure = FigureResult(
        figure_id=f"Figure {scenario.figure}" if scenario.figure else scenario.name,
        title=scenario.title,
        x_label=scenario.x_label,
        y_label=scenario.y_label,
    )
    for result in results:
        for label, points in result["series"].items():
            for x, y in points:
                figure.add_point(label, x, y)
        figure.notes.update(result["notes"])
    return figure


def run_figure(name: str, scale: str = "quick", **overrides: Any) -> FigureResult:
    """Run one scenario serially in-process and return its figure result.

    This is the thin path the ``figure_XX`` wrappers and the benchmark
    suite use; the orchestrator uses the same expansion and assembly but
    executes the trial specs across a process pool.
    """
    scenario = get_scenario(name)
    specs = scenario.trials(scale, overrides)
    return assemble_figure(scenario, [run_trial_spec(spec) for spec in specs])


# ---------------------------------------------------------------------- #
# expansion helpers
# ---------------------------------------------------------------------- #
def _modes(params: Mapping[str, Any]) -> Sequence[str]:
    return tuple(params.get("modes", MAINTENANCE_MODES))


def _pick(params: Mapping[str, Any], *keys: str) -> Dict[str, Any]:
    return {key: params[key] for key in keys if key in params}


def _expand_size_mode(fn: str, *extra_keys: str):
    """Sweep (size, mode): Figures 6, 7 and 17."""

    def expand(params: Mapping[str, Any]) -> List[TrialSpec]:
        fixed = _pick(params, "seed", "planner", *extra_keys)
        return [
            TrialSpec(
                scenario=params["_scenario"],
                trial_id=f"size={size}/mode={mode}",
                fn=fn,
                kwargs={"size": size, "mode": mode, **fixed},
            )
            for size in params["sizes"]
            for mode in _modes(params)
        ]

    expand.override_keys = ("modes", "planner")
    return expand


def _expand_mode(fn: str, *extra_keys: str):
    """Sweep provenance modes at one size: Figures 8, 9, 10 and 16."""

    def expand(params: Mapping[str, Any]) -> List[TrialSpec]:
        fixed = _pick(params, "size", "seed", "planner", *extra_keys)
        return [
            TrialSpec(
                scenario=params["_scenario"],
                trial_id=f"mode={mode}",
                fn=fn,
                kwargs={"mode": mode, **fixed},
            )
            for mode in _modes(params)
        ]

    expand.override_keys = ("modes", "planner")
    return expand


def _expand_variants(fn: str, axis: str, values_key: str, *extra_keys: str):
    """Sweep one categorical axis (cache on/off, traversal, representation).

    These query-workload trials run on a fixed reference-provenance
    network, so there is no ``modes``/``planner`` knob to pass through.
    """

    def expand(params: Mapping[str, Any]) -> List[TrialSpec]:
        fixed = _pick(params, "seed", *extra_keys)
        return [
            TrialSpec(
                scenario=params["_scenario"],
                trial_id=f"{axis}={value}",
                fn=fn,
                kwargs={axis: value, **fixed},
            )
            for value in params[values_key]
        ]

    return expand


def _with_name(name: str, expand):
    """Bind the scenario name into the params seen by the expansion fn."""

    def bound(params: Mapping[str, Any]) -> List[TrialSpec]:
        return expand({**params, "_scenario": name})

    bound.override_keys = tuple(getattr(expand, "override_keys", ()))
    return bound


def _scenario(
    name: str,
    expand,
    **kwargs: Any,
) -> Scenario:
    return register(Scenario(name=name, expand=_with_name(name, expand), **kwargs))


# ---------------------------------------------------------------------- #
# the registered evaluation suite (Figures 6-17 of the paper)
# ---------------------------------------------------------------------- #
_scenario(
    "fig06_mincost_comm",
    _expand_size_mode("comm_cost", "program"),
    figure="6",
    title="Average communication cost for MINCOST",
    x_label="Number of Nodes",
    y_label="Average Comm. Cost (MB)",
    description="Per-node communication cost to fixpoint vs network size (MINCOST).",
    quick={"program": "mincost", "sizes": (16, 32, 48, 64), "seed": 0},
    paper={"sizes": (100, 200, 300, 400, 500)},
)

_scenario(
    "fig07_pathvector_comm",
    _expand_size_mode("comm_cost", "program"),
    figure="7",
    title="Average communication cost for PATHVECTOR",
    x_label="Number of Nodes",
    y_label="Average Comm. Cost (MB)",
    description="Per-node communication cost to fixpoint vs network size (PATHVECTOR).",
    quick={"program": "pathvector", "sizes": (16, 32, 48), "seed": 0},
    paper={"sizes": (100, 200, 300, 400, 500)},
)

_scenario(
    "fig08_packetforward_bandwidth",
    _expand_mode(
        "packet_bandwidth", "packets_per_second", "payload_bytes", "duration", "bucket"
    ),
    figure="8",
    title="Average bandwidth for PACKETFORWARD (data plane)",
    x_label="Time (seconds)",
    y_label="Average Bandwidth (MBps)",
    description="Data-plane bandwidth over time while forwarding payload packets.",
    quick={
        "size": 24,
        "packets_per_second": 20.0,
        "payload_bytes": 1024,
        "duration": 2.0,
        "bucket": 0.25,
        "seed": 0,
    },
    paper={"size": 200, "packets_per_second": 100.0, "duration": 4.5},
)

_scenario(
    "fig09_mincost_churn",
    _expand_mode(
        "churn", "program", "rounds", "links_per_round", "interval", "bucket", "max_cost"
    ),
    figure="9",
    title="Average bandwidth for MINCOST under churn",
    x_label="Time (seconds)",
    y_label="Average Bandwidth (MBps)",
    description=(
        "Maintenance bandwidth under stub-link churn; MINCOST runs with a "
        "RIP-style maximum cost to bound count-to-infinity recomputation."
    ),
    quick={
        "program": "mincost",
        "size": 36,
        "rounds": 4,
        "links_per_round": 4,
        "interval": 0.5,
        "bucket": 0.25,
        "seed": 0,
        "max_cost": 16,
    },
    paper={"size": 200, "rounds": 5, "links_per_round": 10},
)

_scenario(
    "fig10_pathvector_churn",
    _expand_mode("churn", "program", "rounds", "links_per_round", "interval", "bucket"),
    figure="10",
    title="Average bandwidth for PATHVECTOR under churn",
    x_label="Time (seconds)",
    y_label="Average Bandwidth (MBps)",
    description="Maintenance bandwidth under stub-link churn (PATHVECTOR).",
    quick={
        "program": "pathvector",
        "size": 36,
        "rounds": 4,
        "links_per_round": 4,
        "interval": 0.5,
        "bucket": 0.25,
        "seed": 0,
    },
    paper={"size": 200, "rounds": 5, "links_per_round": 10},
)

_scenario(
    "fig11_caching_bandwidth",
    _expand_variants(
        "caching_bandwidth", "use_cache", "caches", "size", "queries_per_second",
        "duration", "bucket",
    ),
    figure="11",
    title="Provenance query bandwidth with and without caching",
    x_label="Time (seconds)",
    y_label="Average Bandwidth (KBps)",
    description="Query bandwidth with and without query-result caching.",
    quick={
        "size": 48,
        "caches": (False, True),
        "queries_per_second": 5.0,
        "duration": 2.0,
        "bucket": 0.25,
        "seed": 0,
    },
    paper={"size": 100, "duration": 6.0},
)

_scenario(
    "fig12_caching_latency",
    _expand_variants(
        "caching_latency", "use_cache", "caches", "size", "queries_per_second",
        "duration", "cdf_samples",
    ),
    figure="12",
    title="Query completion latency CDF with and without caching",
    x_label="Query Completion Time (seconds)",
    y_label="Cumulative Fraction",
    description="Query completion-latency CDF with and without caching.",
    quick={
        "size": 48,
        "caches": (True, False),
        "queries_per_second": 5.0,
        "duration": 2.0,
        "cdf_samples": 20,
        "seed": 0,
    },
    paper={"size": 100, "duration": 6.0},
)

_scenario(
    "fig13_traversal_bandwidth",
    _expand_variants(
        "traversal_bandwidth", "traversal", "traversals", "grid_side",
        "queries_per_second", "duration", "bucket", "threshold",
    ),
    figure="13",
    title="Query bandwidth for different traversal orders",
    x_label="Time (seconds)",
    y_label="Average Bandwidth (KBps)",
    description="#DERIVATION query bandwidth under BFS / DFS / DFS-threshold.",
    quick={
        "grid_side": 5,
        "traversals": ("BFS", "DFS", "DFS-Threshold"),
        "queries_per_second": 5.0,
        "duration": 2.0,
        "bucket": 0.25,
        "threshold": 3,
        "seed": 0,
    },
    paper={"grid_side": 10, "duration": 6.0},
)

_scenario(
    "fig14_traversal_latency",
    _expand_variants(
        "traversal_latency", "traversal", "traversals", "grid_side",
        "queries_per_second", "duration", "cdf_samples", "threshold",
    ),
    figure="14",
    title="Query completion latency CDF for different traversal orders",
    x_label="Query Completion Latency (seconds)",
    y_label="Cumulative Fraction",
    description="#DERIVATION query latency CDF under BFS / DFS / DFS-threshold.",
    quick={
        "grid_side": 5,
        "traversals": ("BFS", "DFS", "DFS-Threshold"),
        "queries_per_second": 5.0,
        "duration": 2.0,
        "cdf_samples": 20,
        "threshold": 3,
        "seed": 0,
    },
    paper={"grid_side": 10, "duration": 6.0},
)

_scenario(
    "fig15_polynomial_vs_bdd",
    _expand_variants(
        "representation", "representation", "representations", "size",
        "queries_per_second", "duration", "bucket",
    ),
    figure="15",
    title="Query bandwidth for POLYNOMIAL vs BDD",
    x_label="Time (seconds)",
    y_label="Average Bandwidth (KBps)",
    description="Query bandwidth for polynomial vs BDD provenance encodings.",
    quick={
        "size": 48,
        "representations": ("Polynomial", "BDD"),
        "queries_per_second": 5.0,
        "duration": 2.0,
        "bucket": 0.25,
        "seed": 0,
    },
    paper={"size": 100, "duration": 6.0},
)

_scenario(
    "fig16_testbed_bandwidth",
    _expand_mode("testbed_bandwidth", "bucket"),
    figure="16",
    title="PATHVECTOR bandwidth on the testbed topology",
    x_label="Time (seconds)",
    y_label="Average Bandwidth (KBps)",
    description="PATHVECTOR bandwidth over time on the ring testbed topology.",
    quick={"size": 40, "bucket": 0.002, "seed": 0},
    paper={"size": 40},
)

_scenario(
    "fig17_testbed_fixpoint",
    _expand_size_mode("testbed_fixpoint"),
    figure="17",
    title="PATHVECTOR fixpoint latency on the testbed topology",
    x_label="Number of Nodes",
    y_label="Fixpoint Latency (seconds)",
    description="PATHVECTOR fixpoint latency vs testbed (ring) network size.",
    quick={"sizes": (10, 20, 30, 40), "seed": 0},
    paper={"sizes": (5, 10, 15, 20, 25, 30, 35, 40)},
)


# ---------------------------------------------------------------------- #
# registry-only scenarios: no script, no figure — just an entry here
# ---------------------------------------------------------------------- #
def _expand_churn_intensity(params: Mapping[str, Any]) -> List[TrialSpec]:
    fixed = _pick(
        params, "program", "size", "rounds", "interval", "bucket", "seed",
        "max_cost", "planner",
    )
    return [
        TrialSpec(
            scenario=params["_scenario"],
            trial_id=f"links={links}/mode={mode}",
            fn="churn_intensity",
            kwargs={"links_per_round": links, "mode": mode, **fixed},
        )
        for links in params["intensities"]
        for mode in _modes(params)
    ]


_expand_churn_intensity.override_keys = ("modes", "planner")


_scenario(
    "churn_intensity",
    _expand_churn_intensity,
    title="PATHVECTOR maintenance bandwidth vs churn intensity",
    x_label="Links Changed per Round",
    y_label="Mean Bandwidth (MBps)",
    description=(
        "Registry-only sweep: mean maintenance bandwidth as churn intensity "
        "grows; paper scale runs the paper's 200-node transit-stub networks."
    ),
    quick={
        "program": "pathvector",
        "size": 36,
        "intensities": (2, 4, 8),
        "rounds": 2,
        "interval": 0.5,
        "bucket": 0.25,
        "seed": 0,
    },
    paper={"size": 200, "intensities": (5, 10, 20), "rounds": 5},
)


def _expand_query_concurrency(params: Mapping[str, Any]) -> List[TrialSpec]:
    fixed = _pick(
        params, "queries_per_querier", "hot_tuples", "waves", "threshold", "seed",
    )
    sizes = {"ring": params["ring_size"], "grid": params["grid_side"]}
    return [
        TrialSpec(
            scenario=params["_scenario"],
            trial_id=(
                f"topo={topology}/k={k}/traversal={traversal}/cache={use_cache}"
            ),
            fn="query_concurrency",
            kwargs={
                "topology": topology,
                "size": sizes[topology],
                "k": k,
                "traversal": traversal,
                "use_cache": use_cache,
                **fixed,
            },
        )
        for topology in params["topologies"]
        for traversal, use_cache in params["variants"]
        for k in params["ks"]
    ]


_scenario(
    "query_concurrency",
    _expand_query_concurrency,
    title="Prov-query traffic vs number of simultaneous queriers",
    x_label="Simultaneous Queriers (k)",
    y_label="Query Traffic (KB)",
    description=(
        "Registry-only sweep: k querier nodes fire bursts of #DERIVATION "
        "queries at the same instant against a shared hot set on ring and "
        "grid MINCOST networks; measures how in-flight sub-query "
        "coalescing, result caching and per-destination batching bend the "
        "prov-kind traffic curve as concurrency grows."
    ),
    quick={
        "topologies": ("ring", "grid"),
        "ring_size": 24,
        "grid_side": 5,
        "ks": (1, 2, 4, 8),
        "variants": (
            ("BFS", False),
            ("BFS", True),
            ("DFS", False),
            ("DFS-Threshold", True),
        ),
        "queries_per_querier": 4,
        "hot_tuples": 4,
        "waves": 2,
        "threshold": 3,
        "seed": 0,
    },
    paper={
        "ring_size": 48,
        "grid_side": 7,
        "ks": (2, 4, 8, 16, 32),
        "queries_per_querier": 5,
    },
)


def _expand_scale_sweep(params: Mapping[str, Any]) -> List[TrialSpec]:
    fixed = _pick(params, "mode", "seed", "planner")
    return [
        TrialSpec(
            scenario=params["_scenario"],
            trial_id=f"program={program}/size={size}/shards={shards}",
            fn="scale_fixpoint",
            kwargs={"program": program, "size": size, "shards": shards, **fixed},
        )
        for program in params["programs"]
        for size in params["sizes"]
        for shards in params["shards"]
    ]


_expand_scale_sweep.override_keys = ("planner",)


_scenario(
    "scale_sweep",
    _expand_scale_sweep,
    title="Paper-scale fixpoints on the sharded engine",
    x_label="Number of Nodes",
    y_label="Average Comm. Cost (MB)",
    description=(
        "Registry-only sweep: PATHVECTOR and MINCOST fixpoints on large "
        "clustered topologies, swept over worker-shard counts.  Every "
        "counter is identical across shard counts (the determinism "
        "guarantee of the sharded engine — gated in CI); the advisory "
        "wall_seconds column shows the wall-clock scaling on multi-core "
        "machines.  Paper scale covers 256/512/1024-node topologies at "
        "shards of 1/2/4/8."
    ),
    quick={
        "programs": ("pathvector", "mincost"),
        "sizes": (64,),
        "shards": (1, 2),
        "mode": "ref",
        "seed": 0,
    },
    paper={
        "sizes": (256, 512, 1024),
        "shards": (1, 2, 4, 8),
    },
)


def _expand_planner_ablation(params: Mapping[str, Any]) -> List[TrialSpec]:
    fixed = _pick(params, "seed")
    return [
        TrialSpec(
            scenario=params["_scenario"],
            trial_id=f"program={program}/size={size}/planner={planner}",
            fn="planner_fixpoint",
            kwargs={"program": program, "size": size, "planner": planner, **fixed},
        )
        for program in params["programs"]
        for size in params["sizes"]
        for planner in params["planners"]
    ]


def _expand_chaos(params: Mapping[str, Any]) -> List[TrialSpec]:
    fixed = _pick(params, "size", "mode", "seed")
    return [
        TrialSpec(
            scenario=params["_scenario"],
            trial_id=f"program={program}/plan={name}/shards={shards}",
            fn="chaos_convergence",
            kwargs={"program": program, "faults": spec, "shards": shards, **fixed},
        )
        for program in params["programs"]
        for name, spec in params["plans"]
        for shards in params["shards"]
    ]


_scenario(
    "chaos_convergence",
    _expand_chaos,
    title="Fault-plan convergence vs the fault-free digest",
    x_label="Number of Nodes",
    y_label="Converged (1 = digest match)",
    description=(
        "Registry-only sweep: MINCOST and PATHVECTOR fixpoints under "
        "injected faults (message drops, duplicates + delays, node "
        "crash/restart, link flaps), serial and sharded with worker "
        "supervision.  Every point must sit at 1.0: a quiescing fault "
        "plan yields final protocol tables digest-identical to the "
        "fault-free run — the fault subsystem's headline oracle, which "
        "the CI chaos gate enforces."
    ),
    quick={
        "programs": ("mincost", "pathvector", "packetforward"),
        "plans": (
            ("drops", "seed=3; attempts=8; drop:*->*:p=0.2,n=20"),
            ("dup-delay", "seed=5; dup:*->*:p=0.15,n=12; delay:*->*:p=0.2,d=0.004"),
            ("crash", "attempts=8; crash:n1@0.001:restart=0.01"),
            ("flap", "attempts=8; flap:n0-n1@0.001:up=0.008"),
        ),
        "shards": (1, 2),
        "size": 8,
        "mode": "ref",
        "seed": 0,
    },
    paper={
        "size": 16,
        "plans": (
            ("drops", "seed=3; attempts=10; drop:*->*:p=0.3,n=60"),
            ("dup-delay", "seed=5; dup:*->*:p=0.2,n=40; delay:*->*:p=0.3,d=0.004"),
            ("crash", "attempts=10; crash:n1@0.001:restart=0.02"),
            ("flap", "attempts=10; flap:n0-n1@0.001:up=0.01"),
        ),
        "shards": (1, 2, 4),
    },
)


_scenario(
    "planner_ablation",
    _expand_planner_ablation,
    title="Evaluation work vs planner strategy (ring fixpoint)",
    x_label="Number of Nodes",
    y_label="Tuples Scanned",
    description=(
        "Registry-only sweep: tuples scanned to fixpoint under the naive "
        "left-to-right strategy vs the cost-based greedy planner."
    ),
    quick={
        "programs": ("pathvector", "mincost"),
        "sizes": (8, 12),
        "planners": ("naive", "greedy"),
        "seed": 1,
    },
    paper={"sizes": (16, 24, 32)},
)
