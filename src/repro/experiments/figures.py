"""Per-figure experiment runners (thin wrappers over the scenario registry).

Each ``figure_XX`` function reproduces one figure of the paper's evaluation
(Section 7) and returns a :class:`~repro.experiments.metrics.FigureResult`
whose series mirror the curves of the original plot.  Since the scenario
registry refactor, these functions are one-liners: the sweep axes and
default parameters live in :mod:`repro.experiments.scenarios` (``quick``
scale = the laptop-sized defaults below, ``paper`` scale = the paper's own
100-500 node sweeps), the per-trial measurement code in
:mod:`repro.experiments.trials`, and the parallel runner with its artifact
store in :mod:`repro.experiments.orchestrator`.

Keyword arguments override the scenario's quick-scale parameters, e.g.
``figure_17_testbed_fixpoint(sizes=(6, 10))`` or
``figure_13_traversal_bandwidth(grid_side=3, duration=0.5)``.

The provenance-mode labels follow the figures: ``"No Prov."``,
``"Ref-based Prov."`` and ``"Value-based Prov. (BDD)"``.
"""

from __future__ import annotations

from typing import Any, List

from .metrics import FigureResult
from .scenarios import figure_scenarios, run_figure
from .trials import MODE_LABELS, build_network, size_topology

__all__ = [
    "MODE_LABELS",
    "build_network",
    "size_topology",
    "figure_06_mincost_communication",
    "figure_07_pathvector_communication",
    "figure_08_packetforward_bandwidth",
    "figure_09_mincost_churn",
    "figure_10_pathvector_churn",
    "figure_11_caching_bandwidth",
    "figure_12_caching_latency",
    "figure_13_traversal_bandwidth",
    "figure_14_traversal_latency",
    "figure_15_polynomial_vs_bdd",
    "figure_16_testbed_bandwidth",
    "figure_17_testbed_fixpoint",
    "all_figures",
]

#: Backwards-compatible alias (pre-registry name, used by existing tests).
_size_topology = size_topology


def figure_06_mincost_communication(**overrides: Any) -> FigureResult:
    """Figure 6: average per-node communication cost (MB) for MINCOST."""
    return run_figure("fig06_mincost_comm", **overrides)


def figure_07_pathvector_communication(**overrides: Any) -> FigureResult:
    """Figure 7: average per-node communication cost (MB) for PATHVECTOR."""
    return run_figure("fig07_pathvector_comm", **overrides)


def figure_08_packetforward_bandwidth(**overrides: Any) -> FigureResult:
    """Figure 8: average bandwidth (MBps) for PACKETFORWARD over time."""
    return run_figure("fig08_packetforward_bandwidth", **overrides)


def figure_09_mincost_churn(**overrides: Any) -> FigureResult:
    """Figure 9: MINCOST maintenance bandwidth under stub-link churn.

    The churn workload can temporarily disconnect destinations, so MINCOST
    runs with a RIP-style maximum cost (``max_cost``) to bound the
    count-to-infinity recomputation a plain distance-vector suffers.
    """
    return run_figure("fig09_mincost_churn", **overrides)


def figure_10_pathvector_churn(**overrides: Any) -> FigureResult:
    """Figure 10: PATHVECTOR maintenance bandwidth under stub-link churn."""
    return run_figure("fig10_pathvector_churn", **overrides)


def figure_11_caching_bandwidth(**overrides: Any) -> FigureResult:
    """Figure 11: per-node query bandwidth with and without result caching."""
    return run_figure("fig11_caching_bandwidth", **overrides)


def figure_12_caching_latency(**overrides: Any) -> FigureResult:
    """Figure 12: CDF of query completion latency with and without caching."""
    return run_figure("fig12_caching_latency", **overrides)


def figure_13_traversal_bandwidth(**overrides: Any) -> FigureResult:
    """Figure 13: #DERIVATION query bandwidth under BFS / DFS / DFS-threshold."""
    return run_figure("fig13_traversal_bandwidth", **overrides)


def figure_14_traversal_latency(**overrides: Any) -> FigureResult:
    """Figure 14: CDF of query latency under BFS / DFS / DFS-threshold."""
    return run_figure("fig14_traversal_latency", **overrides)


def figure_15_polynomial_vs_bdd(**overrides: Any) -> FigureResult:
    """Figure 15: query bandwidth for POLYNOMIAL vs BDD provenance encoding."""
    return run_figure("fig15_polynomial_vs_bdd", **overrides)


def figure_16_testbed_bandwidth(**overrides: Any) -> FigureResult:
    """Figure 16: PATHVECTOR bandwidth over time on the testbed topology."""
    return run_figure("fig16_testbed_bandwidth", **overrides)


def figure_17_testbed_fixpoint(**overrides: Any) -> FigureResult:
    """Figure 17: PATHVECTOR fixpoint latency vs testbed network size."""
    return run_figure("fig17_testbed_fixpoint", **overrides)


def all_figures(fast: bool = True) -> List[FigureResult]:
    """Run every figure scenario serially and return the results."""
    scale = "quick" if fast else "paper"
    return [run_figure(scenario.name, scale=scale) for scenario in figure_scenarios()]
