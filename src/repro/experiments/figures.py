"""Per-figure experiment runners.

Each ``figure_XX`` function reproduces one figure of the paper's evaluation
(Section 7) and returns a :class:`~repro.experiments.metrics.FigureResult`
whose series mirror the curves of the original plot.  Default parameters are
scaled down from the paper's 100-500 node simulations so the whole suite
runs in minutes of wall-clock time on a laptop; every runner accepts the
paper's sizes through its arguments, and EXPERIMENTS.md records the
configuration actually used together with the paper-vs-measured comparison.

The provenance-mode labels follow the figures: ``"No Prov."``,
``"Ref-based Prov."`` and ``"Value-based Prov. (BDD)"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.api import DELTA_MESSAGE_KIND, ExspanNetwork
from ..core.customizations import (
    bdd_query,
    derivation_count_query,
    polynomial_query,
)
from ..core.modes import ProvenanceMode
from ..core.query import TraversalOrder
from ..datalog.ast import Program
from ..net.stats import cdf_points
from ..net.topology import Topology, grid_topology, ring_topology, transit_stub_topology
from ..protocols.mincost import mincost_program
from ..protocols.packetforward import packetforward_program
from ..protocols.pathvector import pathvector_program
from .metrics import FigureResult
from .workloads import PacketWorkload, QueryWorkload, make_churn

__all__ = [
    "MODE_LABELS",
    "build_network",
    "figure_06_mincost_communication",
    "figure_07_pathvector_communication",
    "figure_08_packetforward_bandwidth",
    "figure_09_mincost_churn",
    "figure_10_pathvector_churn",
    "figure_11_caching_bandwidth",
    "figure_12_caching_latency",
    "figure_13_traversal_bandwidth",
    "figure_14_traversal_latency",
    "figure_15_polynomial_vs_bdd",
    "figure_16_testbed_bandwidth",
    "figure_17_testbed_fixpoint",
    "all_figures",
]

#: Figure legend labels, in the order the paper lists them.
MODE_LABELS: Dict[ProvenanceMode, str] = {
    ProvenanceMode.VALUE: "Value-based Prov. (BDD)",
    ProvenanceMode.REFERENCE: "Ref-based Prov.",
    ProvenanceMode.NONE: "No Prov.",
}

#: The three curves shown in the maintenance-overhead figures.
_MAINTENANCE_MODES = (
    ProvenanceMode.VALUE,
    ProvenanceMode.REFERENCE,
    ProvenanceMode.NONE,
)


def build_network(
    topology: Topology,
    program: Program,
    mode: ProvenanceMode,
    seed: int = 0,
    run_to_fixpoint: bool = True,
    planner: Optional[str] = None,
) -> ExspanNetwork:
    """Build, seed and (optionally) fixpoint an :class:`ExspanNetwork`.

    ``planner`` selects the per-node evaluation strategy (``"greedy"`` /
    ``"naive"``); ``None`` uses the process-wide default, which
    ``repro.experiments.runner --planner`` controls.
    """
    network = ExspanNetwork(topology, program, mode=mode, seed=seed, planner=planner)
    network.seed_links()
    if run_to_fixpoint:
        network.run_to_fixpoint()
    return network


def _sweep_sizes(sizes: Optional[Sequence[int]], default: Sequence[int]) -> List[int]:
    return list(sizes) if sizes is not None else list(default)


def _size_topology(size: int, seed: int) -> Topology:
    """A connected topology of roughly *size* nodes in the transit-stub style.

    For sizes below 100 (one GT-ITM domain) the generator is scaled down by
    shrinking the per-stub node count so that small benchmark runs keep the
    transit/stub structure; at 100 nodes and above the paper's exact
    parameters are used and the size is swept by adding domains.
    """
    if size >= 100:
        domains = max(1, round(size / 100))
        return transit_stub_topology(domains=domains, seed=seed)
    nodes_per_stub = max(2, round(size / 12))
    return transit_stub_topology(
        domains=1,
        transit_per_domain=4,
        stubs_per_transit=3,
        nodes_per_stub=nodes_per_stub,
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# Figures 6 and 7: communication cost to fixpoint vs network size
# ---------------------------------------------------------------------- #
def _communication_figure(
    figure_id: str,
    title: str,
    program_factory: Callable[[], Program],
    sizes: Sequence[int],
    seed: int,
) -> FigureResult:
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="Number of Nodes",
        y_label="Average Comm. Cost (MB)",
    )
    for size in sizes:
        for mode in _MAINTENANCE_MODES:
            topology = _size_topology(size, seed)
            network = build_network(topology, program_factory(), mode, seed=seed)
            per_node_mb = network.average_maintenance_bytes_per_node() / 1e6
            result.add_point(MODE_LABELS[mode], topology.node_count(), per_node_mb)
    return result


def figure_06_mincost_communication(
    sizes: Optional[Sequence[int]] = None, seed: int = 0
) -> FigureResult:
    """Figure 6: average per-node communication cost (MB) for MINCOST."""
    return _communication_figure(
        "Figure 6",
        "Average communication cost for MINCOST",
        mincost_program,
        _sweep_sizes(sizes, (16, 32, 48, 64)),
        seed,
    )


def figure_07_pathvector_communication(
    sizes: Optional[Sequence[int]] = None, seed: int = 0
) -> FigureResult:
    """Figure 7: average per-node communication cost (MB) for PATHVECTOR."""
    return _communication_figure(
        "Figure 7",
        "Average communication cost for PATHVECTOR",
        pathvector_program,
        _sweep_sizes(sizes, (16, 32, 48)),
        seed,
    )


# ---------------------------------------------------------------------- #
# Figure 8: data-plane bandwidth over time (PACKETFORWARD)
# ---------------------------------------------------------------------- #
def figure_08_packetforward_bandwidth(
    size: int = 24,
    packets_per_second: float = 20.0,
    payload_bytes: int = 1024,
    duration: float = 2.0,
    bucket: float = 0.25,
    seed: int = 0,
) -> FigureResult:
    """Figure 8: average bandwidth (MBps) for PACKETFORWARD over time."""
    result = FigureResult(
        figure_id="Figure 8",
        title="Average bandwidth for PACKETFORWARD (data plane)",
        x_label="Time (seconds)",
        y_label="Average Bandwidth (MBps)",
    )
    for mode in _MAINTENANCE_MODES:
        topology = _size_topology(size, seed)
        program = pathvector_program().extended(packetforward_program(), "pv+fwd")
        network = build_network(topology, program, mode, seed=seed)
        control_plane_end = network.now
        network.stats.reset()
        workload = PacketWorkload(
            network,
            payload_bytes=payload_bytes,
            packets_per_second=packets_per_second,
            duration=duration,
            seed=seed,
        )
        workload.run()
        series = network.stats.bandwidth_timeseries(
            bucket,
            network.node_count,
            start=control_plane_end,
            end=control_plane_end + duration,
            kinds=[DELTA_MESSAGE_KIND],
        )
        for time, bytes_per_second in series:
            result.add_point(
                MODE_LABELS[mode], round(time - control_plane_end, 6), bytes_per_second / 1e6
            )
        result.notes[f"{MODE_LABELS[mode]} delivered"] = workload.delivered()
    return result


# ---------------------------------------------------------------------- #
# Figures 9 and 10: maintenance bandwidth under churn
# ---------------------------------------------------------------------- #
def _churn_figure(
    figure_id: str,
    title: str,
    program_factory: Callable[[], Program],
    size: int,
    rounds: int,
    links_per_round: int,
    interval: float,
    bucket: float,
    seed: int,
) -> FigureResult:
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label="Time (seconds)",
        y_label="Average Bandwidth (MBps)",
    )
    for mode in _MAINTENANCE_MODES:
        topology = _size_topology(size, seed)
        network = build_network(topology, program_factory(), mode, seed=seed)
        start = network.now
        network.stats.reset()
        churn = make_churn(
            network, links_per_round=links_per_round, interval=interval, seed=seed
        )
        churn.start(rounds=rounds, first_delay=interval)
        network.simulator.run_until_idle()
        duration = rounds * interval + interval
        series = network.stats.bandwidth_timeseries(
            bucket,
            network.node_count,
            start=start,
            end=start + duration,
            kinds=[DELTA_MESSAGE_KIND],
        )
        for time, bytes_per_second in series:
            result.add_point(MODE_LABELS[mode], round(time - start, 6), bytes_per_second / 1e6)
        result.notes[f"{MODE_LABELS[mode]} churn events"] = len(churn.events)
    return result


def figure_09_mincost_churn(
    size: int = 36,
    rounds: int = 4,
    links_per_round: int = 4,
    interval: float = 0.5,
    bucket: float = 0.25,
    seed: int = 0,
    max_cost: int = 16,
) -> FigureResult:
    """Figure 9: MINCOST maintenance bandwidth under stub-link churn.

    The churn workload can temporarily disconnect destinations, so MINCOST
    runs with a RIP-style maximum cost (``max_cost``) to bound the
    count-to-infinity recomputation a plain distance-vector suffers.
    """
    return _churn_figure(
        "Figure 9",
        "Average bandwidth for MINCOST under churn",
        lambda: mincost_program(max_cost=max_cost),
        size,
        rounds,
        links_per_round,
        interval,
        bucket,
        seed,
    )


def figure_10_pathvector_churn(
    size: int = 36,
    rounds: int = 4,
    links_per_round: int = 4,
    interval: float = 0.5,
    bucket: float = 0.25,
    seed: int = 0,
) -> FigureResult:
    """Figure 10: PATHVECTOR maintenance bandwidth under stub-link churn."""
    return _churn_figure(
        "Figure 10",
        "Average bandwidth for PATHVECTOR under churn",
        pathvector_program,
        size,
        rounds,
        links_per_round,
        interval,
        bucket,
        seed,
    )


# ---------------------------------------------------------------------- #
# Figures 11 and 12: query-result caching
# ---------------------------------------------------------------------- #
def _query_network(size: int, seed: int) -> ExspanNetwork:
    """A reference-provenance MINCOST network used by the query experiments.

    The evaluation strategy follows the process-wide planner default, which
    ``repro.experiments.runner --planner`` controls.
    """
    topology = _size_topology(size, seed)
    return build_network(topology, mincost_program(), ProvenanceMode.REFERENCE, seed=seed)


def _grid_query_network(side: int, seed: int) -> ExspanNetwork:
    """A grid-topology MINCOST network with abundant equal-cost multipaths.

    The paper's 100-node transit-stub networks give ``bestPathCost`` tuples
    roughly three alternative derivations on average; our scaled-down
    transit-stub defaults are too sparse for that, so the traversal-order
    experiments (Figures 13 / 14) run MINCOST on a grid, where equal-cost
    shortest paths make multi-derivation tuples the common case.
    """
    topology = grid_topology(side, side)
    return build_network(topology, mincost_program(), ProvenanceMode.REFERENCE, seed=seed)


def _run_query_workload(
    network: ExspanNetwork,
    spec,
    queries_per_second: float,
    duration: float,
    seed: int,
) -> QueryWorkload:
    network.stats.reset()
    workload = QueryWorkload(
        network,
        spec,
        queries_per_second=queries_per_second,
        duration=duration,
        seed=seed,
    )
    workload.run()
    return workload


def figure_11_caching_bandwidth(
    size: int = 48,
    queries_per_second: float = 5.0,
    duration: float = 2.0,
    bucket: float = 0.25,
    seed: int = 0,
) -> FigureResult:
    """Figure 11: per-node query bandwidth with and without result caching."""
    result = FigureResult(
        figure_id="Figure 11",
        title="Provenance query bandwidth with and without caching",
        x_label="Time (seconds)",
        y_label="Average Bandwidth (KBps)",
    )
    for label, spec_name, use_cache in (
        ("Without caching", "polync", False),
        ("With caching", "polywc", True),
    ):
        network = _query_network(size, seed)
        spec = polynomial_query(name=spec_name, use_cache=use_cache)
        workload = _run_query_workload(network, spec, queries_per_second, duration, seed)
        series = network.stats.bandwidth_timeseries(
            bucket, network.node_count, start=0.0, end=duration, kinds=["prov"]
        )
        for time, bytes_per_second in series:
            result.add_point(label, time, bytes_per_second / 1e3)
        result.notes[f"{label} queries"] = len(workload.outcomes)
        result.notes[f"{label} cache"] = network.cache_stats()
    return result


def figure_12_caching_latency(
    size: int = 48,
    queries_per_second: float = 5.0,
    duration: float = 2.0,
    cdf_samples: int = 20,
    seed: int = 0,
) -> FigureResult:
    """Figure 12: CDF of query completion latency with and without caching."""
    result = FigureResult(
        figure_id="Figure 12",
        title="Query completion latency CDF with and without caching",
        x_label="Query Completion Time (seconds)",
        y_label="Cumulative Fraction",
    )
    for label, spec_name, use_cache in (
        ("With caching", "polywc", True),
        ("Without caching", "polync", False),
    ):
        network = _query_network(size, seed)
        spec = polynomial_query(name=spec_name, use_cache=use_cache)
        workload = _run_query_workload(network, spec, queries_per_second, duration, seed)
        latencies = [outcome.latency for outcome in workload.outcomes]
        for value, fraction in cdf_points(latencies, cdf_samples):
            result.add_point(label, round(value, 6), fraction)
        stats = workload.latency_stats()
        result.notes[f"{label} median (s)"] = round(stats.percentile(0.5), 6)
        result.notes[f"{label} p80 (s)"] = round(stats.percentile(0.8), 6)
    return result


# ---------------------------------------------------------------------- #
# Figures 13 and 14: query traversal orders
# ---------------------------------------------------------------------- #
def _traversal_specs(threshold: int):
    # Equal-length spec names so that message-size accounting is identical
    # across traversal strategies (the spec name travels in each query).
    return (
        ("BFS", derivation_count_query(name="dcbfs", traversal=TraversalOrder.BFS)),
        ("DFS", derivation_count_query(name="dcdfs", traversal=TraversalOrder.DFS)),
        (
            "DFS-Threshold",
            derivation_count_query(
                name="dcthr",
                traversal=TraversalOrder.DFS_THRESHOLD,
                threshold=threshold,
            ),
        ),
    )


def figure_13_traversal_bandwidth(
    grid_side: int = 5,
    queries_per_second: float = 5.0,
    duration: float = 2.0,
    bucket: float = 0.25,
    threshold: int = 3,
    seed: int = 0,
) -> FigureResult:
    """Figure 13: #DERIVATION query bandwidth under BFS / DFS / DFS-threshold."""
    result = FigureResult(
        figure_id="Figure 13",
        title="Query bandwidth for different traversal orders",
        x_label="Time (seconds)",
        y_label="Average Bandwidth (KBps)",
    )
    for label, spec in _traversal_specs(threshold):
        network = _grid_query_network(grid_side, seed)
        workload = _run_query_workload(network, spec, queries_per_second, duration, seed)
        series = network.stats.bandwidth_timeseries(
            bucket, network.node_count, start=0.0, end=duration, kinds=["prov"]
        )
        for time, bytes_per_second in series:
            result.add_point(label, time, bytes_per_second / 1e3)
        result.notes[f"{label} total KB"] = round(network.query_bytes() / 1e3, 3)
        result.notes[f"{label} queries"] = len(workload.outcomes)
    return result


def figure_14_traversal_latency(
    grid_side: int = 5,
    queries_per_second: float = 5.0,
    duration: float = 2.0,
    cdf_samples: int = 20,
    threshold: int = 3,
    seed: int = 0,
) -> FigureResult:
    """Figure 14: CDF of query latency under BFS / DFS / DFS-threshold."""
    result = FigureResult(
        figure_id="Figure 14",
        title="Query completion latency CDF for different traversal orders",
        x_label="Query Completion Latency (seconds)",
        y_label="Cumulative Fraction",
    )
    for label, spec in _traversal_specs(threshold):
        network = _grid_query_network(grid_side, seed)
        workload = _run_query_workload(network, spec, queries_per_second, duration, seed)
        latencies = [outcome.latency for outcome in workload.outcomes]
        for value, fraction in cdf_points(latencies, cdf_samples):
            result.add_point(label, round(value, 6), fraction)
        stats = workload.latency_stats()
        result.notes[f"{label} p80 (s)"] = round(stats.percentile(0.8), 6)
    return result


# ---------------------------------------------------------------------- #
# Figure 15: polynomial vs BDD query representations
# ---------------------------------------------------------------------- #
def figure_15_polynomial_vs_bdd(
    size: int = 48,
    queries_per_second: float = 5.0,
    duration: float = 2.0,
    bucket: float = 0.25,
    seed: int = 0,
) -> FigureResult:
    """Figure 15: query bandwidth for POLYNOMIAL vs BDD provenance encoding."""
    result = FigureResult(
        figure_id="Figure 15",
        title="Query bandwidth for POLYNOMIAL vs BDD",
        x_label="Time (seconds)",
        y_label="Average Bandwidth (KBps)",
    )
    # Equal-length spec names keep the per-message framing identical.
    specs = (
        ("Polynomial", polynomial_query(name="f15poly")),
        ("BDD", bdd_query(name="f15bddq")),
    )
    for label, spec in specs:
        network = _query_network(size, seed)
        workload = _run_query_workload(network, spec, queries_per_second, duration, seed)
        series = network.stats.bandwidth_timeseries(
            bucket, network.node_count, start=0.0, end=duration, kinds=["prov"]
        )
        for time, bytes_per_second in series:
            result.add_point(label, time, bytes_per_second / 1e3)
        result.notes[f"{label} total KB"] = round(network.query_bytes() / 1e3, 3)
        result.notes[f"{label} mean latency (s)"] = round(
            workload.latency_stats().mean(), 6
        )
    return result


# ---------------------------------------------------------------------- #
# Figures 16 and 17: "testbed" deployment (ring + random peer)
# ---------------------------------------------------------------------- #
def figure_16_testbed_bandwidth(
    size: int = 40,
    bucket: float = 0.002,
    seed: int = 0,
) -> FigureResult:
    """Figure 16: PATHVECTOR bandwidth over time on the testbed topology."""
    result = FigureResult(
        figure_id="Figure 16",
        title="PATHVECTOR bandwidth on the testbed topology",
        x_label="Time (seconds)",
        y_label="Average Bandwidth (KBps)",
    )
    for mode in _MAINTENANCE_MODES:
        topology = ring_topology(size, seed=seed)
        network = build_network(topology, pathvector_program(), mode, seed=seed)
        end = max(network.now, bucket)
        series = network.stats.bandwidth_timeseries(
            bucket, network.node_count, start=0.0, end=end, kinds=[DELTA_MESSAGE_KIND]
        )
        for time, bytes_per_second in series:
            result.add_point(MODE_LABELS[mode], round(time, 6), bytes_per_second / 1e3)
        result.notes[f"{MODE_LABELS[mode]} total KB per node"] = round(
            network.average_maintenance_bytes_per_node() / 1e3, 3
        )
    return result


def figure_17_testbed_fixpoint(
    sizes: Optional[Sequence[int]] = None, seed: int = 0
) -> FigureResult:
    """Figure 17: PATHVECTOR fixpoint latency vs testbed network size."""
    result = FigureResult(
        figure_id="Figure 17",
        title="PATHVECTOR fixpoint latency on the testbed topology",
        x_label="Number of Nodes",
        y_label="Fixpoint Latency (seconds)",
    )
    for size in _sweep_sizes(sizes, (10, 20, 30, 40)):
        for mode in _MAINTENANCE_MODES:
            topology = ring_topology(size, seed=seed)
            network = build_network(topology, pathvector_program(), mode, seed=seed)
            result.add_point(MODE_LABELS[mode], size, network.now)
    return result


def all_figures(fast: bool = True) -> List[FigureResult]:
    """Run every figure with (fast) default parameters and return the results."""
    runners: List[Callable[[], FigureResult]] = [
        figure_06_mincost_communication,
        figure_07_pathvector_communication,
        figure_08_packetforward_bandwidth,
        figure_09_mincost_churn,
        figure_10_pathvector_churn,
        figure_11_caching_bandwidth,
        figure_12_caching_latency,
        figure_13_traversal_bandwidth,
        figure_14_traversal_latency,
        figure_15_polynomial_vs_bdd,
        figure_16_testbed_bandwidth,
        figure_17_testbed_fixpoint,
    ]
    return [runner() for runner in runners]
