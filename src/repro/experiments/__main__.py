"""``python -m repro.experiments`` — the experiment orchestrator CLI.

Subcommands::

    python -m repro.experiments list                    # registered scenarios
    python -m repro.experiments run --all --quick --workers 4
    python -m repro.experiments run 6 7 planner_ablation --paper
    python -m repro.experiments run 13 --trace traces   # + Chrome traces
    python -m repro.experiments compare benchmarks/baselines results
    python -m repro.experiments trace traces/TRACE_*.json

``run`` writes one schema-versioned artifact per scenario
(``results/BENCH_<scenario>.json``); re-runs reuse trials whose stored
fingerprint still matches (``--no-resume`` forces re-execution).  A run is
deterministic: any ``--workers`` value produces byte-identical artifacts —
and so does ``--trace``, which additionally writes one Perfetto-loadable
Chrome trace per executed trial plus advisory per-trial phase breakdowns.

``compare`` diffs two artifact directories on the planner/traffic counters
and exits non-zero on regressions beyond ``--threshold`` — the CI bench
job runs it against the committed baselines under ``benchmarks/baselines/``.

``trace`` validates captured trace files against the Chrome trace-event
schema and prints their flamegraph-style phase summaries.

The legacy per-figure report (tables plus the paper's qualitative shape
checks) remains available as ``python -m repro.experiments.runner``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..datalog.engine import PIPELINES, PLANNERS
from ..obs.export import (
    load_trace,
    phase_summary,
    summarize_trace_events,
    validate_chrome_trace,
)
from .orchestrator import (
    DEFAULT_RESULTS_DIR,
    compare,
    run,
    strict_compare,
    wall_clock_report,
)
from .scenarios import SCENARIOS

__all__ = ["main"]


def _cmd_list(arguments: argparse.Namespace) -> int:
    scale = "paper" if arguments.paper else "quick"
    print(f"{len(SCENARIOS)} registered scenario(s) ({scale} scale):")
    for scenario in SCENARIOS.values():
        figure = f"Figure {scenario.figure}" if scenario.figure else "registry-only"
        trial_count = len(scenario.trials(scale))
        print(f"  {scenario.name:<28} {figure:<14} {trial_count:>3} trial(s)")
        if arguments.verbose and scenario.description:
            print(f"      {scenario.description}")
    return 0


def _cmd_run(arguments: argparse.Namespace) -> int:
    names = arguments.scenarios or None
    if arguments.all:
        names = None
    elif not names:
        print("run: select scenarios (names or figure numbers) or pass --all")
        return 2
    try:
        report = run(
            names,
            scale="paper" if arguments.paper else "quick",
            workers=arguments.workers,
            results_dir=arguments.results_dir,
            resume=not arguments.no_resume,
            planner=arguments.planner,
            shards=arguments.shards,
            pipeline=arguments.pipeline,
            verbose=arguments.verbose,
            trace_dir=arguments.trace,
            storage=arguments.storage,
            faults=arguments.faults,
        )
    except KeyError as error:
        # Unknown scenario name / figure number: an error line, not a trace.
        print(f"run: error: {error.args[0] if error.args else error}")
        return 2
    print(report.render())
    return 0


def _cmd_trace(arguments: argparse.Namespace) -> int:
    status = 0
    for path in arguments.files:
        try:
            payload = load_trace(path)
        except (OSError, ValueError) as error:
            print(f"{path}: unreadable trace: {error}")
            status = 1
            continue
        errors = validate_chrome_trace(payload)
        if errors:
            print(f"{path}: INVALID ({len(errors)} error(s)):")
            for line in errors[: arguments.max_errors]:
                print(f"  {line}")
            status = 1
            continue
        events = payload["traceEvents"]
        spans = [event for event in events if event.get("ph") == "X"]
        print(f"{path}: valid Chrome trace ({len(spans)} span(s))")
        print(phase_summary(summarize_trace_events(events)))
        if arguments.top:
            slowest = sorted(
                spans,
                key=lambda event: -(event.get("args", {}).get("wall_us", 0.0)),
            )[: arguments.top]
            print(f"  top {len(slowest)} span(s) by advisory wall time:")
            for event in slowest:
                args = event.get("args", {})
                print(
                    f"    {event['name']:<18} ts={event.get('ts', 0):>12.1f}us "
                    f"wall={args.get('wall_us', 0.0):>10.1f}us "
                    f"span={args.get('span_id', '?')}"
                )
    return status


def _cmd_compare(arguments: argparse.Namespace) -> int:
    if arguments.wall_clock_only:
        # Advisory view only: never gates, always exits 0 (the CI bench job
        # prints this into the job summary after the real gate ran).
        print(wall_clock_report(arguments.baseline, arguments.candidate))
        return 0
    report = compare(
        arguments.baseline,
        arguments.candidate,
        threshold=arguments.threshold,
    )
    print(report.render())
    status = 0 if report.ok else 1
    if arguments.wall_clock:
        print(wall_clock_report(arguments.baseline, arguments.candidate))
    if arguments.strict:
        mismatched = strict_compare(arguments.baseline, arguments.candidate)
        if mismatched:
            print(f"  STRICT: {len(mismatched)} artifact(s) not byte-identical:")
            for name in mismatched:
                print(f"    {name}")
            status = 1
        else:
            print("  STRICT: all artifacts byte-identical")
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser("list", help="list registered scenarios")
    list_parser.add_argument("--paper", action="store_true", help="paper-scale counts")
    list_parser.add_argument("--verbose", action="store_true", help="show descriptions")
    list_parser.set_defaults(handler=_cmd_list)

    run_parser = commands.add_parser("run", help="run scenarios, write artifacts")
    run_parser.add_argument(
        "scenarios", nargs="*",
        help="scenario names or figure numbers (e.g. fig09_mincost_churn, 6, 17)",
    )
    run_parser.add_argument("--all", action="store_true", help="run every scenario")
    scale = run_parser.add_mutually_exclusive_group()
    scale.add_argument(
        "--quick", action="store_true", help="CI/laptop parameters (default)"
    )
    scale.add_argument(
        "--paper", action="store_true", help="the paper's sweep sizes (slow)"
    )
    run_parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size (default 1; any value is byte-identical)",
    )
    run_parser.add_argument(
        "--results-dir", default=DEFAULT_RESULTS_DIR,
        help=f"artifact directory (default: {DEFAULT_RESULTS_DIR}/)",
    )
    run_parser.add_argument(
        "--no-resume", action="store_true",
        help="re-execute trials even when a fresh artifact exists",
    )
    run_parser.add_argument(
        "--planner", choices=PLANNERS, default=None,
        help="force an NDlog evaluation strategy into every trial",
    )
    run_parser.add_argument(
        "--shards", type=int, default=None,
        help="default worker-shard count for shard-capable trials (the "
        "sharded engine is bit-identical to serial, so artifacts are "
        "byte-identical for any value — CI exploits that as a gate)",
    )
    run_parser.add_argument(
        "--pipeline", choices=PIPELINES, default=None,
        help="default delta-evaluation pipeline for every trial (delta, "
        "batched or columnar; all three are bit-identical by contract, so "
        "artifacts are byte-identical for any choice — the CI columnar "
        "gate strict-compares them against committed baselines)",
    )
    run_parser.add_argument(
        "--storage", default=None, metavar="SPEC",
        help="default storage backend for every trial (memory, sqlite or "
        "sqlite:<path>; every backend is byte-identical by contract, so "
        "artifacts match the committed baselines under any choice — the "
        "CI durability gate strict-compares a sqlite run against them)",
    )
    run_parser.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="inject a fault plan (parse_fault_spec grammar, e.g. "
        "'seed=3; drop:*->*:p=0.2,n=20') into every trial network; "
        "final protocol tables still converge, but traffic counters are "
        "perturbed, so never compare faulted artifacts against the "
        "committed baselines — the CI chaos gate checks convergence "
        "digests instead (benchmarks/chaos_gate.py)",
    )
    run_parser.add_argument(
        "--trace", nargs="?", const="traces", default=None, metavar="DIR",
        help="capture span traces: one Chrome trace-event JSON per executed "
        "trial under DIR (default: traces/) plus advisory per-trial phase "
        "breakdowns; artifacts stay byte-identical to an untraced run",
    )
    run_parser.add_argument("--verbose", action="store_true")
    run_parser.set_defaults(handler=_cmd_run)

    trace_parser = commands.add_parser(
        "trace", help="validate captured traces, print phase summaries"
    )
    trace_parser.add_argument("files", nargs="+", help="TRACE_*.json files")
    trace_parser.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="also list the N slowest spans by advisory wall time",
    )
    trace_parser.add_argument(
        "--max-errors", type=int, default=10,
        help="schema errors to print per invalid file (default 10)",
    )
    trace_parser.set_defaults(handler=_cmd_trace)

    compare_parser = commands.add_parser(
        "compare", help="diff two artifact directories; exit 1 on regressions"
    )
    compare_parser.add_argument("baseline", help="baseline artifact directory")
    compare_parser.add_argument("candidate", help="candidate artifact directory")
    compare_parser.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative regression threshold (default 0.05 = 5%%)",
    )
    compare_parser.add_argument(
        "--strict", action="store_true",
        help="also require byte-identical artifacts (determinism check; "
        "advisory wall_seconds fields are excluded)",
    )
    compare_parser.add_argument(
        "--wall-clock", action="store_true",
        help="also print advisory per-scenario wall-clock deltas (not gated)",
    )
    compare_parser.add_argument(
        "--wall-clock-only", action="store_true",
        help="print only the advisory wall-clock deltas and exit 0",
    )
    compare_parser.set_defaults(handler=_cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = build_parser().parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
