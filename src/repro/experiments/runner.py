"""Command-line entry point for the experiment harness.

Run all figures (or a selection) and print the reproduced series together
with the qualitative shape checks against the paper::

    python -m repro.experiments.runner                 # all figures, fast sizes
    python -m repro.experiments.runner --figure 6 7    # just Figures 6 and 7
    python -m repro.experiments.runner --paper-scale   # paper-sized sweeps (slow)

The same runners back the pytest-benchmark suite in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..datalog.engine import PLANNERS, set_default_planner
from .figures import (
    figure_06_mincost_communication,
    figure_07_pathvector_communication,
    figure_08_packetforward_bandwidth,
    figure_09_mincost_churn,
    figure_10_pathvector_churn,
    figure_11_caching_bandwidth,
    figure_12_caching_latency,
    figure_13_traversal_bandwidth,
    figure_14_traversal_latency,
    figure_15_polynomial_vs_bdd,
    figure_16_testbed_bandwidth,
    figure_17_testbed_fixpoint,
)
from .metrics import FigureResult
from .reporting import check_shape, render_report

__all__ = ["FIGURE_RUNNERS", "run_figures", "main"]

FIGURE_RUNNERS: Dict[str, Callable[..., FigureResult]] = {
    "6": figure_06_mincost_communication,
    "7": figure_07_pathvector_communication,
    "8": figure_08_packetforward_bandwidth,
    "9": figure_09_mincost_churn,
    "10": figure_10_pathvector_churn,
    "11": figure_11_caching_bandwidth,
    "12": figure_12_caching_latency,
    "13": figure_13_traversal_bandwidth,
    "14": figure_14_traversal_latency,
    "15": figure_15_polynomial_vs_bdd,
    "16": figure_16_testbed_bandwidth,
    "17": figure_17_testbed_fixpoint,
}

#: Overrides used with ``--paper-scale`` (the paper's own sweep parameters).
PAPER_SCALE_KWARGS: Dict[str, dict] = {
    "6": {"sizes": (100, 200, 300, 400, 500)},
    "7": {"sizes": (100, 200, 300, 400, 500)},
    "8": {"size": 200, "packets_per_second": 100.0, "duration": 4.5},
    "9": {"size": 200, "rounds": 5, "links_per_round": 10},
    "10": {"size": 200, "rounds": 5, "links_per_round": 10},
    "11": {"size": 100, "duration": 6.0},
    "12": {"size": 100, "duration": 6.0},
    "13": {"grid_side": 10, "duration": 6.0},
    "14": {"grid_side": 10, "duration": 6.0},
    "15": {"size": 100, "duration": 6.0},
    "16": {"size": 40},
    "17": {"sizes": (5, 10, 15, 20, 25, 30, 35, 40)},
}


def run_figures(
    figure_ids: Optional[Sequence[str]] = None,
    paper_scale: bool = False,
    verbose: bool = True,
) -> List[FigureResult]:
    """Run the selected figures (all by default) and return their results."""
    selected = list(figure_ids) if figure_ids else list(FIGURE_RUNNERS)
    results: List[FigureResult] = []
    for figure_id in selected:
        runner = FIGURE_RUNNERS.get(str(figure_id))
        if runner is None:
            raise KeyError(f"unknown figure id {figure_id!r}")
        kwargs = PAPER_SCALE_KWARGS.get(str(figure_id), {}) if paper_scale else {}
        started = time.time()
        result = runner(**kwargs)
        elapsed = time.time() - started
        result.notes["wall-clock seconds"] = round(elapsed, 2)
        results.append(result)
        if verbose:
            print(result.render())
            for description, holds in check_shape(result):
                status = "OK " if holds else "FAIL"
                print(f"  [{status}] {description}")
            print()
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure",
        nargs="*",
        default=None,
        help="figure numbers to run (default: all)",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's network sizes (slow: hours of simulation)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-figure output"
    )
    parser.add_argument(
        "--planner",
        choices=PLANNERS,
        default=None,
        help="NDlog evaluation strategy for every node: 'greedy' (cost-based "
        "compiled join plans, the default) or 'naive' (left-to-right "
        "nested loops, for baseline comparisons)",
    )
    arguments = parser.parse_args(argv)
    if arguments.planner is not None:
        set_default_planner(arguments.planner)
    results = run_figures(
        arguments.figure, paper_scale=arguments.paper_scale, verbose=not arguments.quiet
    )
    if arguments.quiet:
        print(render_report(results))
    failed = [
        (result.figure_id, description)
        for result in results
        for description, holds in check_shape(result)
        if not holds
    ]
    if failed:
        print("Shape checks that did not hold:")
        for figure_id, description in failed:
            print(f"  {figure_id}: {description}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
