"""Command-line entry point for the per-figure report harness.

Run all figures (or a selection) and print the reproduced series together
with the qualitative shape checks against the paper::

    python -m repro.experiments.runner                 # all figures, fast sizes
    python -m repro.experiments.runner --figure 6 7    # just Figures 6 and 7
    python -m repro.experiments.runner --paper-scale   # paper-sized sweeps (slow)

This module is a thin wrapper over the scenario registry
(:mod:`repro.experiments.scenarios`); the same registry backs the parallel
orchestrator CLI (``python -m repro.experiments run|list|compare``), which
additionally fans trials across a process pool and writes versioned
``BENCH_*.json`` artifacts.  Use the orchestrator for evidence runs and the
CI regression gate; use this runner for a human-readable report.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..datalog.engine import PLANNERS, set_default_planner
from .trials import set_default_shards
from .figures import (
    figure_06_mincost_communication,
    figure_07_pathvector_communication,
    figure_08_packetforward_bandwidth,
    figure_09_mincost_churn,
    figure_10_pathvector_churn,
    figure_11_caching_bandwidth,
    figure_12_caching_latency,
    figure_13_traversal_bandwidth,
    figure_14_traversal_latency,
    figure_15_polynomial_vs_bdd,
    figure_16_testbed_bandwidth,
    figure_17_testbed_fixpoint,
)
from .metrics import FigureResult
from .reporting import check_shape, render_report
from .scenarios import figure_scenarios, run_figure, scenario_for_figure

__all__ = ["FIGURE_RUNNERS", "run_figures", "main"]

#: Figure number -> quick-scale runner, in figure order.  A compatibility
#: view for library callers; :func:`run_figures` resolves figures through
#: the scenario registry (the single source of truth), not this dict.
FIGURE_RUNNERS: Dict[str, Callable[..., FigureResult]] = {
    "6": figure_06_mincost_communication,
    "7": figure_07_pathvector_communication,
    "8": figure_08_packetforward_bandwidth,
    "9": figure_09_mincost_churn,
    "10": figure_10_pathvector_churn,
    "11": figure_11_caching_bandwidth,
    "12": figure_12_caching_latency,
    "13": figure_13_traversal_bandwidth,
    "14": figure_14_traversal_latency,
    "15": figure_15_polynomial_vs_bdd,
    "16": figure_16_testbed_bandwidth,
    "17": figure_17_testbed_fixpoint,
}


def run_figures(
    figure_ids: Optional[Sequence[str]] = None,
    paper_scale: bool = False,
    verbose: bool = True,
) -> List[FigureResult]:
    """Run the selected figures (all by default) and return their results."""
    if figure_ids:
        selected = list(figure_ids)
    else:
        selected = [scenario.figure for scenario in figure_scenarios()]
    results: List[FigureResult] = []
    for figure_id in selected:
        try:
            scenario = scenario_for_figure(str(figure_id))
        except KeyError:
            raise KeyError(f"unknown figure id {figure_id!r}") from None
        started = time.time()
        result = run_figure(scenario.name, scale="paper" if paper_scale else "quick")
        elapsed = time.time() - started
        result.notes["wall-clock seconds"] = round(elapsed, 2)
        results.append(result)
        if verbose:
            print(result.render())
            for description, holds in check_shape(result):
                status = "OK " if holds else "FAIL"
                print(f"  [{status}] {description}")
            print()
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure",
        nargs="*",
        default=None,
        help="figure numbers to run (default: all)",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's network sizes (slow: hours of simulation)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-figure output"
    )
    parser.add_argument(
        "--planner",
        choices=PLANNERS,
        default=None,
        help="NDlog evaluation strategy for every node: 'greedy' (cost-based "
        "compiled join plans, the default) or 'naive' (left-to-right "
        "nested loops, for baseline comparisons)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="worker-shard count for shard-capable trials (fig 6/7 comm "
        "cost, fig 17 fixpoints); results are bit-identical for any value",
    )
    arguments = parser.parse_args(argv)
    if arguments.planner is not None:
        set_default_planner(arguments.planner)
    if arguments.shards is not None:
        set_default_shards(arguments.shards)
    results = run_figures(
        arguments.figure, paper_scale=arguments.paper_scale, verbose=not arguments.quiet
    )
    if arguments.quiet:
        print(render_report(results))
    failed = [
        (result.figure_id, description)
        for result in results
        for description, holds in check_shape(result)
        if not holds
    ]
    if failed:
        print("Shape checks that did not hold:")
        for figure_id, description in failed:
            print(f"  {figure_id}: {description}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
