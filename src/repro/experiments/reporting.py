"""Reporting helpers: render figure results and compare against the paper.

:func:`paper_expectations` records, for every figure, the qualitative shape
the paper reports (who wins, by roughly what factor).  :func:`check_shape`
evaluates a reproduced :class:`~repro.experiments.metrics.FigureResult`
against that expectation and returns a list of human-readable findings; the
benchmark suite asserts on the boolean outcome, and EXPERIMENTS.md quotes
the findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .metrics import FigureResult

__all__ = ["ShapeCheck", "paper_expectations", "check_shape", "render_report"]


@dataclass
class ShapeCheck:
    """One qualitative expectation extracted from the paper."""

    description: str
    holds: Callable[[FigureResult], bool]


def _mean(result: FigureResult, label: str) -> float:
    series = result.series.get(label)
    return series.mean_y() if series is not None else 0.0


def _total(result: FigureResult, label: str) -> float:
    series = result.series.get(label)
    return sum(series.ys()) if series is not None else 0.0


def paper_expectations() -> Dict[str, List[ShapeCheck]]:
    """Qualitative expectations per figure (see Section 7 of the paper)."""
    value = "Value-based Prov. (BDD)"
    ref = "Ref-based Prov."
    none = "No Prov."
    return {
        "Figure 6": [
            ShapeCheck(
                "value-based provenance costs substantially more than reference-based",
                lambda r: _mean(r, value) > 1.5 * _mean(r, ref),
            ),
            ShapeCheck(
                "reference-based provenance adds modest overhead over no provenance",
                lambda r: _mean(r, none) < _mean(r, ref) < 2.0 * _mean(r, none),
            ),
            ShapeCheck(
                "communication cost grows with network size (scalability trend)",
                lambda r: r.series[ref].ys()[-1] > r.series[ref].ys()[0],
            ),
        ],
        "Figure 7": [
            ShapeCheck(
                "value-based provenance costs more than reference-based for PATHVECTOR",
                lambda r: _mean(r, value) > 1.2 * _mean(r, ref),
            ),
            ShapeCheck(
                "reference-based overhead stays below value-based overhead",
                lambda r: _mean(r, none) < _mean(r, ref) < _mean(r, value),
            ),
        ],
        "Figure 8": [
            ShapeCheck(
                "payloads dominate: provenance overhead on the data plane is small",
                lambda r: _mean(r, value) < 1.5 * _mean(r, none)
                and _mean(r, ref) < 1.5 * _mean(r, none),
            ),
        ],
        "Figure 9": [
            ShapeCheck(
                "under churn, ref-based tracks no-provenance closely",
                lambda r: _mean(r, ref) < 2.0 * _mean(r, none),
            ),
            ShapeCheck(
                "under churn, value-based consumes significantly more bandwidth",
                lambda r: _mean(r, value) > _mean(r, ref),
            ),
        ],
        "Figure 10": [
            ShapeCheck(
                "under churn, ref-based tracks no-provenance closely",
                lambda r: _mean(r, ref) < 2.0 * _mean(r, none),
            ),
            ShapeCheck(
                "under churn, value-based consumes significantly more bandwidth",
                lambda r: _mean(r, value) > _mean(r, ref),
            ),
        ],
        "Figure 11": [
            ShapeCheck(
                "caching reduces query bandwidth",
                lambda r: _total(r, "With caching") < _total(r, "Without caching"),
            ),
        ],
        "Figure 12": [
            ShapeCheck(
                "caching reduces the 80th-percentile query latency",
                lambda r: float(r.notes.get("With caching p80 (s)", 0.0))
                <= float(r.notes.get("Without caching p80 (s)", 0.0)),
            ),
        ],
        "Figure 13": [
            ShapeCheck(
                "DFS-Threshold uses less bandwidth than BFS",
                lambda r: float(r.notes.get("DFS-Threshold total KB", 0.0))
                < float(r.notes.get("BFS total KB", 1.0)),
            ),
            # The paper's prototype spends roughly equal bandwidth on BFS
            # and DFS; our concurrent engine makes BFS strictly cheaper —
            # parallel branches reaching a shared vertex coalesce onto one
            # in-flight resolution, while a sequential DFS only reaches a
            # vertex after earlier branches already resolved (and, for an
            # uncached spec, discarded) it.
            ShapeCheck(
                "BFS uses no more bandwidth than DFS (in-flight coalescing)",
                lambda r: float(r.notes.get("BFS total KB", 0.0))
                <= float(r.notes.get("DFS total KB", 0.0)),
            ),
        ],
        "Figure 14": [
            ShapeCheck(
                "plain DFS has the worst tail latency",
                lambda r: float(r.notes.get("DFS p80 (s)", 0.0))
                >= float(r.notes.get("BFS p80 (s)", 0.0)),
            ),
            ShapeCheck(
                "thresholding reduces the DFS tail",
                lambda r: float(r.notes.get("DFS-Threshold p80 (s)", 0.0))
                <= float(r.notes.get("DFS p80 (s)", 0.0)),
            ),
        ],
        "Figure 15": [
            ShapeCheck(
                "BDD query results use less bandwidth than polynomials",
                lambda r: float(r.notes.get("BDD total KB", 0.0))
                < float(r.notes.get("Polynomial total KB", 1.0)),
            ),
        ],
        "Figure 16": [
            ShapeCheck(
                "on the testbed topology, ref-based costs much less than value-based",
                lambda r: float(r.notes.get("Ref-based Prov. total KB per node", 0.0))
                < float(
                    r.notes.get("Value-based Prov. (BDD) total KB per node", 1.0)
                ),
            ),
        ],
        "Figure 17": [
            ShapeCheck(
                "provenance maintenance does not materially increase fixpoint latency",
                lambda r: _mean(r, ref) < 1.25 * _mean(r, none) + 1e-9
                and _mean(r, value) < 1.25 * _mean(r, none) + 1e-9,
            ),
            ShapeCheck(
                "fixpoint latency grows with network size",
                lambda r: r.series[none].ys()[-1] >= r.series[none].ys()[0],
            ),
        ],
    }


def check_shape(result: FigureResult) -> List[Tuple[str, bool]]:
    """Evaluate the paper's qualitative expectations against *result*."""
    checks = paper_expectations().get(result.figure_id, [])
    return [(check.description, bool(check.holds(result))) for check in checks]


def render_report(results: List[FigureResult]) -> str:
    """Render all figure results plus their shape checks as plain text."""
    lines: List[str] = []
    for result in results:
        lines.append(result.render())
        for description, holds in check_shape(result):
            status = "OK " if holds else "FAIL"
            lines.append(f"  [{status}] {description}")
        lines.append("")
    return "\n".join(lines)
