"""Workload generators for the evaluation experiments.

Three workloads drive the paper's figures:

* :class:`QueryWorkload` — every node issues provenance queries at a fixed
  rate against randomly selected tuples (Figures 11-15: five queries per
  second per node against random ``bestPathCost`` tuples);
* :class:`PacketWorkload` — every node sends fixed-size payloads to a random
  peer at a fixed rate over PACKETFORWARD (Figure 8: 1024-byte tuples at
  100 tuples/second);
* :func:`make_churn` — the stub-link churn process of Figures 9-10 (ten
  random stub-to-stub links added or deleted every 0.5 seconds).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.api import ExspanNetwork
from ..core.query import QueryOutcome, QuerySpec
from ..datalog.ast import Fact
from ..net.churn import ChurnGenerator
from ..net.stats import LatencyStats
from ..protocols.packetforward import packet_event

__all__ = ["QueryWorkload", "PacketWorkload", "make_churn"]


@dataclass
class QueryWorkload:
    """Schedules provenance queries from every node at a fixed per-node rate.

    Parameters
    ----------
    network:
        A fixpointed :class:`~repro.core.api.ExspanNetwork`.
    spec:
        The query customization to use (registered on all nodes).
    table:
        Relation whose tuples are queried (default ``bestPathCost``).
    queries_per_second:
        Per-node query rate (the paper uses 5).
    duration:
        Length of the workload in simulated seconds.
    local_tuples_only:
        When True (default) each node queries tuples stored locally, which is
        how the evaluation targets "a randomly selected bestPathCost tuple"
        without an extra discovery step; the query traversal itself still
        fans out across the network.
    """

    network: ExspanNetwork
    spec: QuerySpec
    table: str = "bestPathCost"
    queries_per_second: float = 5.0
    duration: float = 2.0
    seed: int = 0
    local_tuples_only: bool = True
    outcomes: List[QueryOutcome] = field(default_factory=list)

    def schedule(self) -> int:
        """Schedule all queries on the simulator; returns the number scheduled."""
        self.network.register_query_spec(self.spec)
        rng = random.Random(self.seed)
        interval = 1.0 / self.queries_per_second
        scheduled = 0
        start = self.network.now
        for address in self.network.addresses():
            candidates = self._candidate_tuples(address)
            if not candidates:
                continue
            offset = rng.uniform(0, interval)
            time = offset
            while time < self.duration:
                fact_row = rng.choice(candidates)
                fact = Fact(self.table, fact_row)
                target = fact.location
                self.network.simulator.schedule_at(
                    start + time,
                    self._issue(address, target, fact),
                )
                scheduled += 1
                time += interval
        return scheduled

    def _candidate_tuples(self, address: Any) -> List[Tuple[Any, ...]]:
        if self.local_tuples_only:
            table = self.network.node(address).engine.catalog.table(self.table)
            return list(table.rows())
        return [row for _, row in self.network.tuples(self.table)]

    def _issue(self, issuer: Any, target: Any, fact: Fact) -> Callable[[], None]:
        def issue() -> None:
            self.network.node(issuer).query_service.query_fact(
                fact, target, self.spec.name, self.outcomes.append
            )

        return issue

    def run(self, drain: bool = True) -> List[QueryOutcome]:
        """Schedule the workload and run the simulation until it drains."""
        self.schedule()
        if drain:
            self.network.simulator.run_until_idle()
        else:
            self.network.run_for(self.duration)
        return self.outcomes

    def latency_stats(self) -> LatencyStats:
        stats = LatencyStats()
        stats.extend(outcome.latency for outcome in self.outcomes)
        return stats


@dataclass
class PacketWorkload:
    """Data-plane packet workload for PACKETFORWARD (Figure 8)."""

    network: ExspanNetwork
    payload_bytes: int = 1024
    packets_per_second: float = 100.0
    duration: float = 1.0
    seed: int = 0
    sent: int = 0

    def schedule(self) -> int:
        rng = random.Random(self.seed)
        interval = 1.0 / self.packets_per_second
        addresses = self.network.addresses()
        start = self.network.now
        payload = "x" * self.payload_bytes
        scheduled = 0
        for address in addresses:
            time = rng.uniform(0, interval)
            while time < self.duration:
                destination = rng.choice([a for a in addresses if a != address])
                event = packet_event(address, address, destination, payload)
                self.network.simulator.schedule_at(
                    start + time, self._inject(address, event)
                )
                scheduled += 1
                time += interval
        self.sent = scheduled
        return scheduled

    def _inject(self, address: Any, event: Fact) -> Callable[[], None]:
        def inject() -> None:
            engine = self.network.node(address).engine
            engine.insert(event)
            engine.run()

        return inject

    def run(self) -> int:
        """Schedule the workload and run until all packets are delivered."""
        self.schedule()
        self.network.simulator.run_until_idle()
        return self.sent

    def delivered(self) -> int:
        """Packets that reached their destination (``recvPacket`` rows)."""
        return len(self.network.tuples("recvPacket"))


def make_churn(
    network: ExspanNetwork,
    links_per_round: int = 10,
    interval: float = 0.5,
    seed: int = 0,
) -> ChurnGenerator:
    """Build the stub-link churn generator of Section 7.2 for *network*."""
    return ChurnGenerator(
        topology=network.topology,
        simulator=network.simulator,
        add_link=lambda a, b, cost: network.add_link(a, b, cost),
        remove_link=lambda a, b: network.remove_link(a, b),
        links_per_round=links_per_round,
        interval=interval,
        seed=seed,
        link_cost=network.link_cost,
    )
