"""Workload generators for the evaluation experiments.

Three workloads drive the paper's figures:

* :class:`QueryWorkload` — every node issues provenance queries at a fixed
  rate against randomly selected tuples (Figures 11-15: five queries per
  second per node against random ``bestPathCost`` tuples);
* :class:`PacketWorkload` — every node sends fixed-size payloads to a random
  peer at a fixed rate over PACKETFORWARD (Figure 8: 1024-byte tuples at
  100 tuples/second);
* :func:`make_churn` — the stub-link churn process of Figures 9-10 (ten
  random stub-to-stub links added or deleted every 0.5 seconds).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..core.api import ExspanNetwork
from ..core.query import QueryOutcome, QuerySpec
from ..datalog.ast import Fact
from ..net.churn import ChurnGenerator
from ..net.stats import LatencyStats
from ..protocols.packetforward import packet_event

__all__ = ["QueryWorkload", "BurstQueryWorkload", "PacketWorkload", "make_churn"]


@dataclass
class QueryWorkload:
    """Schedules provenance queries from every node at a fixed per-node rate.

    Parameters
    ----------
    network:
        A fixpointed :class:`~repro.core.api.ExspanNetwork`.
    spec:
        The query customization to use (registered on all nodes).
    table:
        Relation whose tuples are queried (default ``bestPathCost``).
    queries_per_second:
        Per-node query rate (the paper uses 5).
    duration:
        Length of the workload in simulated seconds.
    local_tuples_only:
        When True (default) each node queries tuples stored locally, which is
        how the evaluation targets "a randomly selected bestPathCost tuple"
        without an extra discovery step; the query traversal itself still
        fans out across the network.
    """

    network: ExspanNetwork
    spec: QuerySpec
    table: str = "bestPathCost"
    queries_per_second: float = 5.0
    duration: float = 2.0
    seed: int = 0
    local_tuples_only: bool = True
    outcomes: List[QueryOutcome] = field(default_factory=list)

    def schedule(self) -> int:
        """Schedule all queries on the simulator; returns the number scheduled."""
        self.network.register_spec(self.spec)
        rng = random.Random(self.seed)
        interval = 1.0 / self.queries_per_second
        scheduled = 0
        start = self.network.now
        for address in self.network.addresses():
            candidates = self._candidate_tuples(address)
            if not candidates:
                continue
            offset = rng.uniform(0, interval)
            time = offset
            while time < self.duration:
                fact_row = rng.choice(candidates)
                fact = Fact(self.table, fact_row)
                target = fact.location
                self.network.simulator.schedule_at(
                    start + time,
                    self._issue(address, target, fact),
                )
                scheduled += 1
                time += interval
        return scheduled

    def _candidate_tuples(self, address: Any) -> List[Tuple[Any, ...]]:
        if self.local_tuples_only:
            table = self.network.node(address).engine.catalog.table(self.table)
            return list(table.rows())
        return [row for _, row in self.network.tuples(self.table)]

    def _issue(self, issuer: Any, target: Any, fact: Fact) -> Callable[[], None]:
        def issue() -> None:
            self.network.node(issuer).query_service.query_fact(
                fact, target, self.spec.name, self.outcomes.append
            )

        return issue

    def run(self, drain: bool = True) -> List[QueryOutcome]:
        """Schedule the workload and run the simulation until it drains."""
        self.schedule()
        if drain:
            self.network.simulator.run_until_idle()
        else:
            self.network.run_for(self.duration)
        return self.outcomes

    def latency_stats(self) -> LatencyStats:
        stats = LatencyStats()
        stats.extend(outcome.latency for outcome in self.outcomes)
        return stats


@dataclass
class BurstQueryWorkload:
    """k simultaneous queriers: the multi-tenant query *serving* workload.

    ``queriers`` nodes each fire ``queries_per_querier`` root provenance
    queries per *wave*, with targets drawn from a small *hot set* of
    ``hot_tuples`` tuples (concurrent interest concentrates on a few
    popular vertices, the regime where in-flight sub-query coalescing and
    result caching pay off).  Each querier's wave is issued in a single
    turn — a client pipelining a burst of requests — so root queries to
    one target coalesce and mixed-target bursts share batched envelopes.
    With ``waves > 1`` the burst repeats after ``wave_gap`` simulated
    seconds (long enough for the previous wave to drain), which is what
    exposes cache hits for ``use_cache`` specs.  Selection is fully
    seeded, so a run is a deterministic function of ``(network, spec,
    parameters)``.

    ``run(serial=True)`` issues the *same* queries one at a time, draining
    the network between them — the reference the concurrent engine must be
    result-identical to, and the "before" leg of the speedup benchmarks.
    """

    network: ExspanNetwork
    spec: QuerySpec
    queriers: int = 4
    queries_per_querier: int = 4
    hot_tuples: int = 4
    waves: int = 1
    wave_gap: float = 1.0
    table: str = "bestPathCost"
    seed: int = 0
    outcomes: List[QueryOutcome] = field(default_factory=list)

    def plan(self) -> List[List[Tuple[Any, Any, Fact]]]:
        """Deterministic per-wave (issuer, target, fact) root-query lists."""
        rng = random.Random(self.seed)
        rows = self.network.tuples(self.table)
        if not rows:
            return [[] for _ in range(self.waves)]
        hot = rng.sample(rows, min(self.hot_tuples, len(rows)))
        addresses = self.network.addresses()
        issuers = rng.sample(addresses, min(self.queriers, len(addresses)))
        planned: List[List[Tuple[Any, Any, Fact]]] = []
        for _ in range(self.waves):
            wave: List[Tuple[Any, Any, Fact]] = []
            for issuer in issuers:
                for _ in range(self.queries_per_querier):
                    target_node, row = rng.choice(hot)
                    wave.append((issuer, target_node, Fact(self.table, row)))
            planned.append(wave)
        return planned

    def run(self, serial: bool = False) -> List[QueryOutcome]:
        """Issue the planned queries; returns their outcomes in issue order.

        Concurrent mode schedules each querier's per-wave burst as one
        event and runs the network to idle once; serial mode drains
        between individual queries.
        """
        self.network.register_spec(self.spec)
        planned = self.plan()
        simulator = self.network.simulator
        start = self.network.now
        # Outcomes are collected per query and concatenated in issue order,
        # so concurrent completion order never shows through.
        collected: List[List[List[QueryOutcome]]] = [
            [[] for _ in wave] for wave in planned
        ]

        def issue_one(issuer: Any, target: Any, fact: Fact, bucket) -> None:
            self.network.node(issuer).query_service.query_fact(
                fact, target, self.spec.name, bucket.append
            )

        if serial:
            for wave_index, wave in enumerate(planned):
                for index, (issuer, target, fact) in enumerate(wave):
                    issue_one(issuer, target, fact, collected[wave_index][index])
                    simulator.run_until_idle()
        else:
            for wave_index, wave in enumerate(planned):
                burst_at = start + wave_index * self.wave_gap
                by_issuer: Dict[Any, List[int]] = {}
                for index, (issuer, _, _) in enumerate(wave):
                    by_issuer.setdefault(issuer, []).append(index)

                def make_burst(
                    wave_index: int, issuer: Any, indices: List[int]
                ) -> Callable[[], None]:
                    def burst() -> None:
                        # One turn for the whole burst: the client pipelines
                        # its requests, so same-destination queries leave in
                        # one batched envelope.
                        host = self.network.node(issuer).host
                        host.begin_turn()
                        try:
                            wave = planned[wave_index]
                            for index in indices:
                                _, target, fact = wave[index]
                                issue_one(
                                    issuer, target, fact, collected[wave_index][index]
                                )
                        finally:
                            host.end_turn()

                    return burst

                for issuer, indices in by_issuer.items():
                    simulator.schedule_at(
                        burst_at, make_burst(wave_index, issuer, indices)
                    )
            simulator.run_until_idle()
        self.outcomes = [
            outcome
            for wave_buckets in collected
            for bucket in wave_buckets
            for outcome in bucket
        ]
        return self.outcomes

    def latency_stats(self) -> LatencyStats:
        stats = LatencyStats()
        stats.extend(outcome.latency for outcome in self.outcomes)
        return stats


@dataclass
class PacketWorkload:
    """Data-plane packet workload for PACKETFORWARD (Figure 8)."""

    network: ExspanNetwork
    payload_bytes: int = 1024
    packets_per_second: float = 100.0
    duration: float = 1.0
    seed: int = 0
    sent: int = 0

    def schedule(self) -> int:
        rng = random.Random(self.seed)
        interval = 1.0 / self.packets_per_second
        addresses = self.network.addresses()
        start = self.network.now
        payload = "x" * self.payload_bytes
        scheduled = 0
        for address in addresses:
            time = rng.uniform(0, interval)
            while time < self.duration:
                destination = rng.choice([a for a in addresses if a != address])
                event = packet_event(address, address, destination, payload)
                self.network.simulator.schedule_at(
                    start + time, self._inject(address, event)
                )
                scheduled += 1
                time += interval
        self.sent = scheduled
        return scheduled

    def _inject(self, address: Any, event: Fact) -> Callable[[], None]:
        def inject() -> None:
            engine = self.network.node(address).engine
            engine.insert(event)
            engine.run()

        return inject

    def run(self) -> int:
        """Schedule the workload and run until all packets are delivered."""
        self.schedule()
        self.network.simulator.run_until_idle()
        return self.sent

    def delivered(self) -> int:
        """Packets that reached their destination (``recvPacket`` rows)."""
        return len(self.network.tuples("recvPacket"))


def make_churn(
    network: ExspanNetwork,
    links_per_round: int = 10,
    interval: float = 0.5,
    seed: int = 0,
) -> ChurnGenerator:
    """Build the stub-link churn generator of Section 7.2 for *network*."""
    return ChurnGenerator(
        topology=network.topology,
        simulator=network.simulator,
        add_link=lambda a, b, cost: network.add_link(a, b, cost),
        remove_link=lambda a, b: network.remove_link(a, b),
        links_per_round=links_per_round,
        interval=interval,
        seed=seed,
        link_cost=network.link_cost,
    )
