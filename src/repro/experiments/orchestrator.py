"""Parallel experiment orchestrator with a versioned artifact store.

Runs registered scenarios (see :mod:`repro.experiments.scenarios`) by
fanning their independent trials out across a process pool and writing the
results to schema-versioned JSON artifacts, one per scenario::

    results/BENCH_fig06_mincost_comm.json

Three properties the CI regression gate depends on:

* **Determinism** — trials are seeded and share no state, results are
  merged in expansion order (never completion order), and artifacts are
  serialized canonically (sorted keys, fixed separators, trailing
  newline).  A run with ``--workers 8`` is byte-identical to ``--workers
  1``, and re-running an unchanged tree reproduces the committed baseline
  byte for byte.
* **Resumability** — every trial is fingerprinted over its schema version,
  function name and kwargs.  A re-run loads the existing artifact and
  skips any trial whose stored fingerprint still matches, so iterating on
  one scenario never re-pays for the other eleven.
* **Comparability** — :func:`compare` diffs two artifact directories on
  the planner/traffic counters (tuples scanned, full scans, bytes,
  messages) and reports regressions beyond a relative threshold; the CI
  ``bench`` job fails the PR when the quick-mode run regresses against the
  committed baseline under ``benchmarks/baselines/``.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..obs.export import phase_breakdown, write_chrome_trace
from ..obs.runtime import disable_tracing, enable_tracing
from .scenarios import (
    Scenario,
    TrialSpec,
    get_scenario,
    resolve_scenarios,
    run_trial_spec,
)
from ..datalog.engine import set_default_pipeline
from .trials import TRIAL_FUNCTIONS, set_default_faults, set_default_shards

__all__ = [
    "SCHEMA_VERSION",
    "ARTIFACT_PREFIX",
    "DEFAULT_RESULTS_DIR",
    "DEFAULT_COMPARE_KEYS",
    "ADVISORY_TRIAL_KEYS",
    "trial_fingerprint",
    "artifact_path",
    "load_artifact",
    "dump_artifact",
    "canonical_artifact_bytes",
    "RunReport",
    "run",
    "Regression",
    "CompareReport",
    "compare",
    "strict_compare",
    "wall_clock_report",
    "figure_result_from_artifact",
]

#: Bump when the artifact layout changes; stale artifacts are re-run, and
#: ``compare`` refuses to diff artifacts across schema versions.
SCHEMA_VERSION = 1

ARTIFACT_PREFIX = "BENCH_"
DEFAULT_RESULTS_DIR = "results"

#: Trial-record fields that are *advisory*: machine-dependent measurements
#: excluded from fingerprints, from ``compare``'s regression gate, and from
#: ``strict_compare``'s byte-identity check.  ``wall_seconds`` tracks real
#: per-trial wall-clock so the BENCH artifacts carry a speed trajectory
#: without breaking determinism guarantees; ``phases`` is the per-trial
#: span-phase wall breakdown captured when tracing is enabled (absent
#: otherwise — and stripped here so tracing on/off stays byte-identical).
ADVISORY_TRIAL_KEYS: Tuple[str, ...] = ("wall_seconds", "phases")

#: Counters the regression gate watches, searched in each trial's
#: ``planner`` and ``traffic`` sections (a key absent from the *baseline*
#: is skipped; absent from only the candidate is a regression).  Note
#: ``index_lookups`` is deliberately not gated: indexed lookups replace
#: full scans, so a planner improvement legitimately raises that counter —
#: ``tuples_scanned`` and ``full_scans`` measure the work that matters.
DEFAULT_COMPARE_KEYS: Tuple[str, ...] = (
    "tuples_scanned",
    "full_scans",
    "total_bytes",
    "total_messages",
)


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def trial_fingerprint(fn: str, kwargs: Mapping[str, Any]) -> str:
    """Content hash identifying one trial configuration (drives resume)."""
    digest = hashlib.sha256(
        _canonical_json({"schema": SCHEMA_VERSION, "fn": fn, "kwargs": kwargs}).encode()
    )
    return digest.hexdigest()[:16]


def artifact_path(results_dir: str, scenario_name: str) -> str:
    return os.path.join(results_dir, f"{ARTIFACT_PREFIX}{scenario_name}.json")


def load_artifact(path: str) -> Optional[Dict[str, Any]]:
    """Load one artifact, or ``None`` when missing/corrupt/stale-schema."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            artifact = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(artifact, dict) or artifact.get("schema") != SCHEMA_VERSION:
        return None
    return artifact


def dump_artifact(path: str, artifact: Mapping[str, Any]) -> None:
    """Write *artifact* canonically (deterministic bytes for identical data)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(artifact, sort_keys=True, indent=2))
        handle.write("\n")


def _strip_advisory(artifact: Mapping[str, Any]) -> Dict[str, Any]:
    """A copy of *artifact* with the advisory per-trial fields removed."""
    stripped = dict(artifact)
    stripped["trials"] = [
        {key: value for key, value in trial.items() if key not in ADVISORY_TRIAL_KEYS}
        if isinstance(trial, dict)
        else trial
        for trial in artifact.get("trials", ())
    ]
    return stripped


def canonical_artifact_bytes(path: str) -> Optional[bytes]:
    """The artifact's canonical bytes with advisory fields stripped.

    This is what determinism checks must compare: two runs of the same
    tree are identical except for the machine-dependent advisory fields
    (see :data:`ADVISORY_TRIAL_KEYS`).  Returns ``None`` for missing or
    unreadable artifacts.
    """
    artifact = load_artifact(path)
    if artifact is None:
        return None
    return (
        json.dumps(_strip_advisory(artifact), sort_keys=True, indent=2) + "\n"
    ).encode("utf-8")


def _build_artifact(
    scenario: Scenario,
    scale: str,
    params: Mapping[str, Any],
    trials: Sequence[Mapping[str, Any]],
) -> Dict[str, Any]:
    return {
        "schema": SCHEMA_VERSION,
        "generator": "repro.experiments.orchestrator",
        "scenario": scenario.name,
        "figure": scenario.figure,
        "title": scenario.title,
        "x_label": scenario.x_label,
        "y_label": scenario.y_label,
        "scale": scale,
        "params": {key: value for key, value in params.items() if key != "_scenario"},
        "trials": list(trials),
    }


def _fresh_results(
    artifact: Optional[Mapping[str, Any]]
) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """Index an existing artifact's trials by (id, fingerprint)."""
    if not artifact:
        return {}
    return {
        (trial["id"], trial["fingerprint"]): trial
        for trial in artifact.get("trials", ())
        if isinstance(trial, dict) and "id" in trial and "fingerprint" in trial
    }


#: Per-process trace output directory; ``None`` disables tracing.  Set by
#: :func:`_configure_worker` (pool initializer) or directly by :func:`run`
#: for the in-process path.  Like the ``shards`` default it deliberately
#: never enters trial kwargs or fingerprints: tracing must not change what
#: a trial *is*, only what it additionally emits.
_TRACE_DIR: Optional[str] = None


def _configure_worker(
    shards: int,
    trace_dir: Optional[str],
    pipeline: Optional[str] = None,
    storage: Optional[str] = None,
    faults: Optional[str] = None,
) -> None:
    """Process-pool initializer: shard count, trace dir, pipeline, storage, faults."""
    global _TRACE_DIR
    set_default_shards(shards)
    if pipeline is not None:
        set_default_pipeline(pipeline)
    if storage is not None:
        from ..storage.backend import set_default_storage

        set_default_storage(storage)
    if faults is not None:
        set_default_faults(faults)
    _TRACE_DIR = trace_dir


def _trace_filename(scenario: str, trial_id: str) -> str:
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "-" for ch in f"{scenario}_{trial_id}"
    )
    return f"TRACE_{safe}.json"


def _run_task(task: Tuple[str, str, str, Dict[str, Any]]) -> Dict[str, Any]:
    """Worker entry point: run one trial spec (must stay module-level).

    Returns ``{"result": ..., "wall_seconds": ...}``; the wall-clock is
    advisory (see :data:`ADVISORY_TRIAL_KEYS`).  When a trace directory is
    configured, the trial runs under a process-wide trace session, its
    Chrome trace is written to ``TRACE_<scenario>_<trial>.json`` and the
    per-phase wall breakdown is returned under the advisory ``"phases"``
    key.
    """
    scenario, trial_id, fn, kwargs = task
    trace_dir = _TRACE_DIR
    session = enable_tracing() if trace_dir is not None else None
    started = time.perf_counter()
    try:
        result = run_trial_spec(TrialSpec(scenario, trial_id, fn, kwargs))
    finally:
        if session is not None:
            disable_tracing()
    outcome = {
        "result": result,
        "wall_seconds": round(time.perf_counter() - started, 3),
    }
    if session is not None:
        outcome["phases"] = phase_breakdown(session.phase_aggregates())
        os.makedirs(trace_dir, exist_ok=True)
        write_chrome_trace(
            os.path.join(trace_dir, _trace_filename(scenario, trial_id)),
            session.span_records(),
        )
    return outcome


def _accepts_planner(fn_name: str) -> bool:
    """Whether a trial function takes a ``planner`` kwarg (query-workload
    trials run on a fixed reference-provenance network and do not)."""
    return "planner" in inspect.signature(TRIAL_FUNCTIONS[fn_name]).parameters


@dataclass
class RunReport:
    """What one orchestrator invocation did."""

    scale: str
    workers: int
    executed: int = 0
    skipped: int = 0
    artifacts: List[str] = field(default_factory=list)
    scenarios: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"orchestrator: {len(self.scenarios)} scenario(s) at {self.scale} scale, "
            f"{self.executed} trial(s) executed, {self.skipped} reused "
            f"(workers={self.workers})"
        ]
        lines.extend(f"  wrote {path}" for path in self.artifacts)
        return "\n".join(lines)


def run(
    names: Optional[Sequence[str]] = None,
    scale: str = "quick",
    workers: int = 1,
    results_dir: str = DEFAULT_RESULTS_DIR,
    resume: bool = True,
    planner: Optional[str] = None,
    shards: Optional[int] = None,
    pipeline: Optional[str] = None,
    verbose: bool = False,
    trace_dir: Optional[str] = None,
    storage: Optional[str] = None,
    faults: Optional[str] = None,
) -> RunReport:
    """Run scenarios and write one ``BENCH_<scenario>.json`` per scenario.

    ``names`` mixes scenario names and figure numbers (``None`` = all).
    ``planner`` forces an evaluation strategy into every trial whose
    function takes one and does not already sweep it (it becomes part of
    the trial fingerprints, so planner-forced artifacts never alias
    default ones).  ``shards`` sets the process-wide default worker-shard
    count for shard-capable trials; unlike ``planner`` it deliberately does
    **not** enter kwargs or fingerprints, because the sharded engine is
    bit-identical to the serial one — artifacts produced under any
    ``shards`` value must match byte for byte, which is how CI verifies
    the engine's determinism guarantee against the committed baselines.
    ``pipeline`` follows the ``shards`` convention exactly: it sets the
    process-wide default delta-evaluation pipeline (``"delta"``,
    ``"batched"`` or ``"columnar"``) without entering kwargs or
    fingerprints — every pipeline is bit-identical by contract, and the CI
    columnar gate re-runs the suite under ``pipeline="columnar"`` and
    strict-compares the artifacts against the committed baselines.
    ``trace_dir`` mirrors ``shards``: it enables span tracing for every
    executed trial, writes one Chrome trace per trial into the directory
    and adds the advisory per-trial ``"phases"`` breakdown — while the
    artifacts stay byte-identical to an untraced run (that identity is the
    tracing subsystem's own CI gate).  Resumed trials were not executed,
    so they carry no trace or phases; pass ``resume=False`` to capture a
    complete trace set.  With ``resume`` (the default), trials whose
    stored fingerprint still matches are reused from the existing artifact
    instead of re-executed.
    ``storage`` also follows the ``shards`` convention: it sets the
    process-wide default storage backend (``"memory"``, ``"sqlite"`` or
    ``"sqlite:<path>"``) without entering kwargs or fingerprints — every
    backend is byte-identical by contract, and the CI durability gate
    re-runs a scenario under ``storage="sqlite"`` and strict-compares the
    artifact against the committed memory-backend baselines.
    ``faults`` is the one knob that deliberately breaks the byte-identity
    convention: it installs a process-wide fault plan (a
    ``parse_fault_spec`` string) into every trial network, perturbing the
    message-level traffic counters — so faulted artifacts are for chaos
    experimentation, never for comparing against the committed baselines.
    The invariant faults *do* preserve is convergence of the final
    protocol tables, which ``benchmarks/chaos_gate.py`` gates by digest.
    """
    global _TRACE_DIR
    if shards is not None:
        set_default_shards(shards)
    if pipeline is not None:
        set_default_pipeline(pipeline)
    if storage is not None:
        from ..storage.backend import set_default_storage

        set_default_storage(storage)
    if faults is not None:
        set_default_faults(faults)
    scenarios = resolve_scenarios(names)
    report = RunReport(scale=scale, workers=workers)

    # Expansion order defines both execution batching and artifact layout;
    # completion order never matters, which is what makes --workers N
    # byte-identical to --workers 1.
    planned: List[
        Tuple[
            Scenario,
            Mapping[str, Any],
            List[TrialSpec],
            List[str],
            Dict[Tuple[str, str], Dict[str, Any]],
        ]
    ] = []
    pending: List[Tuple[str, str, str, Dict[str, Any]]] = []
    for scenario in scenarios:
        params = scenario.params(scale)
        specs = scenario.trials(scale)
        if planner is not None:
            injected = [
                spec
                if "planner" in spec.kwargs or not _accepts_planner(spec.fn)
                else TrialSpec(
                    spec.scenario,
                    spec.trial_id,
                    spec.fn,
                    {**spec.kwargs, "planner": planner},
                )
                for spec in specs
            ]
            if injected != specs:
                # Record the forced planner only where it actually applied;
                # query-workload scenarios keep truthful params.
                params = {**params, "planner": planner}
            specs = injected
        fingerprints = [trial_fingerprint(spec.fn, spec.kwargs) for spec in specs]
        fresh = (
            _fresh_results(load_artifact(artifact_path(results_dir, scenario.name)))
            if resume
            else {}
        )
        planned.append((scenario, params, specs, fingerprints, fresh))
        for spec, fingerprint in zip(specs, fingerprints):
            if (spec.trial_id, fingerprint) in fresh:
                report.skipped += 1
            else:
                pending.append((spec.scenario, spec.trial_id, spec.fn, dict(spec.kwargs)))

    executed: Dict[Tuple[str, str], Dict[str, Any]] = {}
    if pending:
        if workers > 1 and len(pending) > 1:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_configure_worker,
                initargs=(
                    shards if shards is not None else 1,
                    trace_dir,
                    pipeline,
                    storage,
                    faults,
                ),
            ) as pool:
                results = list(pool.map(_run_task, pending, chunksize=1))
        else:
            previous_trace_dir = _TRACE_DIR
            _TRACE_DIR = trace_dir
            try:
                results = [_run_task(task) for task in pending]
            finally:
                _TRACE_DIR = previous_trace_dir
        for task, result in zip(pending, results):
            executed[(task[0], task[1])] = result
        report.executed = len(pending)

    for scenario, params, specs, fingerprints, fresh in planned:
        trials: List[Dict[str, Any]] = []
        for spec, fingerprint in zip(specs, fingerprints):
            key = (spec.scenario, spec.trial_id)
            if key in executed:
                outcome = executed[key]
                result = outcome["result"]
                wall_seconds = outcome["wall_seconds"]
                phases = outcome.get("phases")
            else:
                reused = fresh[(spec.trial_id, fingerprint)]
                result = reused["result"]
                # Advisory: a resumed trial keeps the wall-clock (and phase
                # breakdown) measured when it actually ran, when present.
                wall_seconds = reused.get("wall_seconds")
                phases = reused.get("phases")
            trial: Dict[str, Any] = {
                "id": spec.trial_id,
                "fn": spec.fn,
                "kwargs": dict(spec.kwargs),
                "fingerprint": fingerprint,
                "result": result,
            }
            if wall_seconds is not None:
                trial["wall_seconds"] = wall_seconds
            if phases is not None:
                trial["phases"] = phases
            trials.append(trial)
        path = artifact_path(results_dir, scenario.name)
        dump_artifact(path, _build_artifact(scenario, scale, params, trials))
        report.artifacts.append(path)
        report.scenarios.append(scenario.name)
        if verbose:
            print(f"  {scenario.name}: {len(trials)} trial(s) -> {path}")
    return report


# ---------------------------------------------------------------------- #
# regression comparison
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Regression:
    """One counter that got worse beyond the threshold (or went missing)."""

    scenario: str
    trial_id: str
    key: str
    baseline: Optional[float]
    candidate: Optional[float]

    def render(self) -> str:
        if self.baseline is None or self.candidate is None:
            return f"{self.scenario}/{self.trial_id}: {self.key}"
        ratio = self.candidate / self.baseline if self.baseline else float("inf")
        return (
            f"{self.scenario}/{self.trial_id}: {self.key} "
            f"{self.baseline:g} -> {self.candidate:g} ({ratio:.2f}x)"
        )


@dataclass
class CompareReport:
    """Outcome of diffing a candidate artifact set against a baseline."""

    threshold: float
    checked: int = 0
    regressions: List[Regression] = field(default_factory=list)
    improvements: List[Regression] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"compare: {self.checked} counter(s) checked at "
            f"{self.threshold:.0%} threshold"
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        if self.regressions:
            lines.append(f"  REGRESSIONS ({len(self.regressions)}):")
            lines.extend(f"    {item.render()}" for item in self.regressions)
        if self.improvements:
            lines.append(f"  improvements ({len(self.improvements)}):")
            lines.extend(f"    {item.render()}" for item in self.improvements)
        if self.ok:
            lines.append("  OK: no counter regressed beyond the threshold")
        return "\n".join(lines)


def _artifact_files(directory: str) -> List[str]:
    try:
        entries = os.listdir(directory)
    except OSError:
        return []
    return sorted(
        entry
        for entry in entries
        if entry.startswith(ARTIFACT_PREFIX) and entry.endswith(".json")
    )


def _counter(trial: Mapping[str, Any], key: str) -> Optional[float]:
    result = trial.get("result", {})
    for section in ("planner", "traffic"):
        value = result.get(section, {}).get(key)
        if isinstance(value, (int, float)):
            return float(value)
    return None


def compare(
    baseline_dir: str,
    candidate_dir: str,
    threshold: float = 0.05,
    keys: Iterable[str] = DEFAULT_COMPARE_KEYS,
    min_delta: float = 1.0,
) -> CompareReport:
    """Diff candidate artifacts against a baseline set; flag regressions.

    A counter regresses when ``candidate > baseline * (1 + threshold)``
    and the absolute growth is at least *min_delta* (default 1: the
    counters are deterministic, so any growth past the relative threshold
    is a real behavior change; raise it only to tolerate known-small
    drift).  Missing candidate artifacts or trials are regressions too — a
    sweep silently vanishing must fail the gate, and so must an empty or
    mislocated baseline directory (a gate with nothing to check must not
    pass).  Baselines only present in the candidate are noted but harmless
    (a new scenario has no baseline yet).
    """
    report = CompareReport(threshold=threshold)
    keys = tuple(keys)
    baseline_files = _artifact_files(baseline_dir)
    if not baseline_files:
        # Fail closed: an empty/missing baseline dir checks nothing, and a
        # gate that checks nothing must not report success.
        report.regressions.append(
            Regression(
                "<baseline>",
                "*",
                f"no baseline artifacts under {baseline_dir!r}",
                None,
                None,
            )
        )
    candidate_only = set(_artifact_files(candidate_dir)) - set(baseline_files)
    for name in sorted(candidate_only):
        report.notes.append(f"no baseline yet for {name} (new scenario?)")
    for name in baseline_files:
        baseline = load_artifact(os.path.join(baseline_dir, name))
        if baseline is None:
            # Fail closed here too: an unparseable or stale-schema baseline
            # means this scenario is not being gated at all.
            report.regressions.append(
                Regression(name, "*", "unreadable or stale-schema baseline", None, None)
            )
            continue
        scenario = baseline.get("scenario", name)
        baseline_trials = baseline.get("trials", ())
        if not baseline_trials:
            report.regressions.append(
                Regression(scenario, "*", "baseline has no trials", None, None)
            )
            continue
        candidate = load_artifact(os.path.join(candidate_dir, name))
        if candidate is None:
            report.regressions.append(
                Regression(scenario, "*", "artifact missing", None, None)
            )
            continue
        candidate_trials = {
            trial.get("id"): trial for trial in candidate.get("trials", ())
        }
        for trial in baseline_trials:
            trial_id = trial.get("id", "?")
            other = candidate_trials.get(trial_id)
            if other is None:
                report.regressions.append(
                    Regression(scenario, trial_id, "trial missing", None, None)
                )
                continue
            for key in keys:
                base = _counter(trial, key)
                cand = _counter(other, key)
                if base is None:
                    continue
                if cand is None:
                    # A counter the baseline measured has vanished from the
                    # candidate — the easiest way for a regression to hide,
                    # so it fails the gate rather than being skipped.
                    report.checked += 1
                    report.regressions.append(
                        Regression(scenario, trial_id, f"{key} missing", base, None)
                    )
                    continue
                report.checked += 1
                if cand > base * (1.0 + threshold) and cand - base >= min_delta:
                    report.regressions.append(
                        Regression(scenario, trial_id, key, base, cand)
                    )
                elif base > cand * (1.0 + threshold) and base - cand >= min_delta:
                    report.improvements.append(
                        Regression(scenario, trial_id, key, base, cand)
                    )
    return report


def strict_compare(baseline_dir: str, candidate_dir: str) -> List[str]:
    """Byte-compare the artifact sets in two directories, both ways.

    Returns the names of artifacts that differ or exist on only one side —
    the determinism check behind "parallel runs are byte-identical".
    Advisory per-trial fields (:data:`ADVISORY_TRIAL_KEYS`) are stripped
    before comparing: wall-clock varies run to run by design, everything
    else must match byte for byte.  An empty pair of directories is
    reported as a mismatch (nothing compared is not evidence of
    determinism).
    """
    names = sorted(set(_artifact_files(baseline_dir)) | set(_artifact_files(candidate_dir)))
    if not names:
        return [f"<no artifacts under {baseline_dir!r} or {candidate_dir!r}>"]
    mismatched: List[str] = []
    for name in names:
        left = canonical_artifact_bytes(os.path.join(baseline_dir, name))
        right = canonical_artifact_bytes(os.path.join(candidate_dir, name))
        if left is None or right is None or left != right:
            mismatched.append(name)
    return mismatched


def wall_clock_report(baseline_dir: str, candidate_dir: str) -> str:
    """Render the advisory per-scenario wall-clock deltas (never gating).

    Sums each artifact's per-trial ``wall_seconds`` on both sides and
    reports the relative change.  Scenarios missing the field on either
    side (old artifacts) are reported as such rather than skipped.
    """
    lines = ["wall-clock (advisory, not gated):"]
    names = sorted(
        set(_artifact_files(baseline_dir)) | set(_artifact_files(candidate_dir))
    )
    if not names:
        return lines[0] + " no artifacts found"

    def _total(directory: str, name: str) -> Optional[float]:
        artifact = load_artifact(os.path.join(directory, name))
        if artifact is None:
            return None
        walls = [
            trial.get("wall_seconds")
            for trial in artifact.get("trials", ())
            if isinstance(trial, dict)
        ]
        if not walls or any(value is None for value in walls):
            return None
        return sum(walls)

    for name in names:
        scenario = name[len(ARTIFACT_PREFIX) : -len(".json")]
        base = _total(baseline_dir, name)
        cand = _total(candidate_dir, name)
        if base is None or cand is None:
            sides = []
            if base is None:
                sides.append("baseline")
            if cand is None:
                sides.append("candidate")
            lines.append(
                f"  {scenario:<28} no wall_seconds in {' and '.join(sides)}"
            )
            continue
        ratio = (cand / base) if base else float("inf")
        lines.append(
            f"  {scenario:<28} {base:8.2f}s -> {cand:8.2f}s  ({ratio:5.2f}x)"
        )
    return "\n".join(lines)


def figure_result_from_artifact(artifact: Mapping[str, Any]):
    """Rebuild a :class:`FigureResult` from a stored artifact (reporting)."""
    from .scenarios import assemble_figure

    scenario = get_scenario(artifact["scenario"])
    return assemble_figure(
        scenario, [trial["result"] for trial in artifact.get("trials", ())]
    )
