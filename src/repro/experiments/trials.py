"""Atomic experiment trials: the units the orchestrator fans out.

A *trial* is the smallest independently runnable unit of the paper's
evaluation: one network build plus one workload plus one measurement, e.g.
"MINCOST on a 32-node transit-stub topology with reference provenance".
Every figure of Section 7 decomposes into a handful of such trials (one per
(size, provenance-mode) or per query-strategy variant), which is what lets
:mod:`repro.experiments.orchestrator` run a whole evidence sweep across a
process pool: trials share no state, so they parallelize perfectly and a
parallel run is byte-identical to a serial one.

Contract for every ``*_trial`` function here:

* module-level and picklable (workers import this module and look the
  function up in :data:`TRIAL_FUNCTIONS` by name);
* keyword arguments are JSON-serializable scalars (the orchestrator stores
  them verbatim in the artifact and fingerprints them for resume);
* deterministic: same kwargs, same result, in any process;
* returns a plain-dict :func:`trial_result` with the measured series, notes,
  planner counters and traffic counters.

The provenance modes travel as short strings (``"value"``, ``"ref"``,
``"none"``) and are mapped to :class:`~repro.core.modes.ProvenanceMode` and
to the paper's legend labels here.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.api import DELTA_MESSAGE_KIND, ExspanNetwork
from ..core.config import ExspanConfig
from ..core.customizations import (
    bdd_query,
    derivation_count_query,
    polynomial_query,
)
from ..core.modes import ProvenanceMode
from ..core.query import TraversalOrder
from ..datalog import Fact, StandaloneNetwork
from ..datalog.ast import Program
from ..net.sharding import ScriptOp, ShardedExspanNetwork, collect_summary
from ..net.stats import cdf_points
from ..net.topology import (
    LinkSpec,
    Topology,
    cluster_topology,
    grid_topology,
    ring_topology,
    transit_stub_topology,
)
from ..protocols.mincost import mincost_program
from ..protocols.packetforward import packetforward_program
from ..protocols.pathvector import pathvector_program
from .workloads import BurstQueryWorkload, PacketWorkload, QueryWorkload, make_churn

__all__ = [
    "MODE_KEYS",
    "MODE_LABELS",
    "PROGRAM_FACTORIES",
    "TRIAL_FUNCTIONS",
    "build_network",
    "set_default_shards",
    "resolve_shards",
    "set_default_faults",
    "resolve_faults",
    "fixpoint_summary",
    "size_topology",
    "scale_topology",
    "trial_result",
    "scale_fixpoint_trial",
    "comm_cost_trial",
    "packet_bandwidth_trial",
    "churn_trial",
    "churn_intensity_trial",
    "caching_bandwidth_trial",
    "caching_latency_trial",
    "traversal_bandwidth_trial",
    "traversal_latency_trial",
    "query_concurrency_trial",
    "representation_trial",
    "testbed_bandwidth_trial",
    "testbed_fixpoint_trial",
    "planner_fixpoint_trial",
    "chaos_convergence_trial",
]

#: Figure legend labels, in the order the paper lists them.
MODE_LABELS: Dict[ProvenanceMode, str] = {
    ProvenanceMode.VALUE: "Value-based Prov. (BDD)",
    ProvenanceMode.REFERENCE: "Ref-based Prov.",
    ProvenanceMode.NONE: "No Prov.",
}

#: JSON-able provenance-mode keys used in trial kwargs and artifact files.
MODE_KEYS: Dict[str, ProvenanceMode] = {
    "value": ProvenanceMode.VALUE,
    "ref": ProvenanceMode.REFERENCE,
    "none": ProvenanceMode.NONE,
}

#: The three curves shown in the maintenance-overhead figures.
MAINTENANCE_MODES: Tuple[str, ...] = ("value", "ref", "none")

#: NDlog programs referenced by name in trial kwargs.
PROGRAM_FACTORIES: Dict[str, Callable[..., Program]] = {
    "mincost": mincost_program,
    "pathvector": pathvector_program,
}


def build_network(
    topology: Topology,
    program: Program,
    mode: ProvenanceMode,
    seed: int = 0,
    run_to_fixpoint: bool = True,
    planner: Optional[str] = None,
) -> ExspanNetwork:
    """Build, seed and (optionally) fixpoint an :class:`ExspanNetwork`.

    ``planner`` selects the per-node evaluation strategy (``"greedy"`` /
    ``"naive"``); ``None`` uses the process-wide default, which
    ``repro.experiments.runner --planner`` controls.  When a process-wide
    fault plan is set (``--faults``), it is installed before the network
    is seeded, so the whole fixpoint runs under injected faults.
    """
    network = ExspanNetwork(
        topology,
        program,
        config=ExspanConfig(mode=mode, seed=seed, planner=planner),
    )
    plan = resolve_faults(None)
    if plan is not None:
        network.install_faults(plan)
    network.seed_links()
    if run_to_fixpoint:
        network.run_to_fixpoint()
    return network


#: Process-wide default worker count for shard-capable trials.  ``1`` means
#: serial in-process execution.  Like ``PYTHONHASHSEED``, this is an
#: *execution environment* knob, never part of a trial's kwargs or
#: fingerprint: the sharded engine is bit-identical to the serial one, so
#: artifacts produced under any default must be byte-identical — which is
#: exactly what the CI determinism check verifies by diffing a
#: ``--shards 2`` run against the committed (serial) baselines.
DEFAULT_SHARDS = 1


def set_default_shards(shards: int) -> None:
    """Set the process-wide shard default (orchestrator ``--shards``)."""
    global DEFAULT_SHARDS
    DEFAULT_SHARDS = max(1, int(shards))


def resolve_shards(explicit: Optional[int]) -> int:
    """Effective shard count: the explicit kwarg, else the process default."""
    return DEFAULT_SHARDS if explicit is None else max(1, int(explicit))


#: Process-wide default fault plan (a ``parse_fault_spec`` string) injected
#: into every trial network, or ``None`` for fault-free runs.  Unlike
#: ``DEFAULT_SHARDS`` this knob is **not** byte-identity preserving on
#: traffic counters — retransmits and duplicate suppression change the
#: message-level series — so faulted artifacts must never be compared
#: against the committed baselines.  What *is* preserved is convergence:
#: any quiescing plan yields the same final protocol tables, which the
#: chaos gate (``benchmarks/chaos_gate.py``) checks by digest.
DEFAULT_FAULTS: Optional[str] = None


def set_default_faults(faults: Optional[str]) -> None:
    """Set the process-wide fault-plan default (orchestrator ``--faults``)."""
    global DEFAULT_FAULTS
    DEFAULT_FAULTS = faults or None


def resolve_faults(explicit: Optional[str]) -> Optional[str]:
    """Effective fault spec: the explicit kwarg, else the process default."""
    return DEFAULT_FAULTS if explicit is None else (explicit or None)


def fixpoint_summary(
    topology: Topology,
    program: Program,
    mode: ProvenanceMode,
    seed: int = 0,
    planner: Optional[str] = None,
    shards: Optional[int] = None,
) -> Dict[str, Any]:
    """Seed + fixpoint a network, serial or sharded, and summarize it.

    The summary dict (:func:`repro.net.sharding.collect_summary`) carries
    every counter the fixpoint trials report; the sharded engine produces
    the identical dict for any worker count, so trials built on this helper
    yield byte-identical artifacts under any ``shards`` setting.
    """
    count = resolve_shards(shards)
    if count <= 1:
        network = build_network(topology, program, mode, seed=seed, planner=planner)
        return collect_summary(network)
    with ShardedExspanNetwork(
        topology, program, mode=mode, shards=count, seed=seed, planner=planner,
        faults=resolve_faults(None),
    ) as sharded:
        sharded.seed_links()
        sharded.run_to_fixpoint()
        return sharded.summary()


def size_topology(size: int, seed: int) -> Topology:
    """A connected topology of roughly *size* nodes in the transit-stub style.

    For sizes below 100 (one GT-ITM domain) the generator is scaled down by
    shrinking the per-stub node count so that small benchmark runs keep the
    transit/stub structure; at 100 nodes and above the paper's exact
    parameters are used and the size is swept by adding domains.
    """
    if size >= 100:
        domains = max(1, round(size / 100))
        return transit_stub_topology(domains=domains, seed=seed)
    nodes_per_stub = max(2, round(size / 12))
    return transit_stub_topology(
        domains=1,
        transit_per_domain=4,
        stubs_per_transit=3,
        nodes_per_stub=nodes_per_stub,
        seed=seed,
    )


def _mode(mode: str) -> ProvenanceMode:
    try:
        return MODE_KEYS[mode]
    except KeyError:
        raise ValueError(f"unknown provenance mode key {mode!r}") from None


def _program(program: str, max_cost: Optional[int] = None) -> Program:
    try:
        factory = PROGRAM_FACTORIES[program]
    except KeyError:
        raise ValueError(f"unknown program {program!r}") from None
    if max_cost is not None:
        return factory(max_cost=max_cost)
    return factory()


def trial_result(
    series: Dict[str, List[List[float]]],
    notes: Dict[str, Any],
    planner: Dict[str, int],
    traffic: Dict[str, Any],
) -> Dict[str, Any]:
    """The plain-dict shape every trial returns (and artifacts store)."""
    return {"series": series, "notes": notes, "planner": planner, "traffic": traffic}


def _network_result(
    network: ExspanNetwork,
    series: Dict[str, List[List[float]]],
    notes: Dict[str, Any],
) -> Dict[str, Any]:
    """Package *series*/*notes* with the network's planner/traffic counters."""
    return trial_result(
        series,
        notes,
        network.planner_stats(),
        {
            "total_bytes": network.stats.total_bytes(),
            "total_messages": network.stats.total_messages(),
            "maintenance_bytes": network.maintenance_bytes(),
            "query_bytes": network.query_bytes(),
        },
    )


def _summary_result(
    summary: Dict[str, Any],
    series: Dict[str, List[List[float]]],
    notes: Dict[str, Any],
) -> Dict[str, Any]:
    """Package *series*/*notes* with a fixpoint summary's counters."""
    return trial_result(series, notes, summary["planner"], summary["traffic"])


# ---------------------------------------------------------------------- #
# Figures 6, 7: communication cost to fixpoint vs network size
# ---------------------------------------------------------------------- #
def comm_cost_trial(
    program: str,
    size: int,
    mode: str,
    seed: int = 0,
    max_cost: Optional[int] = None,
    planner: Optional[str] = None,
    shards: Optional[int] = None,
) -> Dict[str, Any]:
    """Per-node communication cost (MB) to fixpoint at one (size, mode).

    ``shards`` (default: the process-wide ``--shards`` setting) selects the
    sharded multi-process engine; results are identical for any value.
    """
    topology = size_topology(size, seed)
    summary = fixpoint_summary(
        topology, _program(program, max_cost), _mode(mode), seed=seed,
        planner=planner, shards=shards,
    )
    node_count = topology.node_count()
    per_node_mb = summary["traffic"]["maintenance_bytes"] / node_count / 1e6
    label = MODE_LABELS[_mode(mode)]
    return _summary_result(summary, {label: [[node_count, per_node_mb]]}, {})


# ---------------------------------------------------------------------- #
# Figure 8: data-plane bandwidth over time (PACKETFORWARD)
# ---------------------------------------------------------------------- #
def packet_bandwidth_trial(
    size: int,
    mode: str,
    packets_per_second: float = 20.0,
    payload_bytes: int = 1024,
    duration: float = 2.0,
    bucket: float = 0.25,
    seed: int = 0,
    planner: Optional[str] = None,
) -> Dict[str, Any]:
    """PACKETFORWARD data-plane bandwidth (MBps) over time for one mode."""
    topology = size_topology(size, seed)
    program = pathvector_program().extended(packetforward_program(), "pv+fwd")
    network = build_network(topology, program, _mode(mode), seed=seed, planner=planner)
    control_plane_end = network.now
    network.stats.reset()
    workload = PacketWorkload(
        network,
        payload_bytes=payload_bytes,
        packets_per_second=packets_per_second,
        duration=duration,
        seed=seed,
    )
    workload.run()
    timeseries = network.stats.bandwidth_timeseries(
        bucket,
        network.node_count,
        start=control_plane_end,
        end=control_plane_end + duration,
        kinds=[DELTA_MESSAGE_KIND],
    )
    label = MODE_LABELS[_mode(mode)]
    points = [
        [round(time - control_plane_end, 6), bytes_per_second / 1e6]
        for time, bytes_per_second in timeseries
    ]
    notes = {f"{label} delivered": workload.delivered()}
    return _network_result(network, {label: points}, notes)


# ---------------------------------------------------------------------- #
# Figures 9, 10: maintenance bandwidth under churn
# ---------------------------------------------------------------------- #
def _churn_timeseries(
    program: str,
    size: int,
    mode: str,
    rounds: int,
    links_per_round: int,
    interval: float,
    bucket: float,
    seed: int,
    max_cost: Optional[int],
    planner: Optional[str],
) -> Tuple[ExspanNetwork, List[Tuple[float, float]], int]:
    """Run the stub-link churn workload; return (network, series, events)."""
    topology = size_topology(size, seed)
    network = build_network(
        topology, _program(program, max_cost), _mode(mode), seed=seed, planner=planner
    )
    start = network.now
    network.stats.reset()
    churn = make_churn(
        network, links_per_round=links_per_round, interval=interval, seed=seed
    )
    churn.start(rounds=rounds, first_delay=interval)
    network.simulator.run_until_idle()
    duration = rounds * interval + interval
    timeseries = network.stats.bandwidth_timeseries(
        bucket,
        network.node_count,
        start=start,
        end=start + duration,
        kinds=[DELTA_MESSAGE_KIND],
    )
    shifted = [
        (round(time - start, 6), bytes_per_second)
        for time, bytes_per_second in timeseries
    ]
    return network, shifted, len(churn.events)


def churn_trial(
    program: str,
    size: int,
    mode: str,
    rounds: int = 4,
    links_per_round: int = 4,
    interval: float = 0.5,
    bucket: float = 0.25,
    seed: int = 0,
    max_cost: Optional[int] = None,
    planner: Optional[str] = None,
) -> Dict[str, Any]:
    """Maintenance bandwidth (MBps) over time under churn for one mode."""
    network, timeseries, events = _churn_timeseries(
        program, size, mode, rounds, links_per_round, interval, bucket, seed,
        max_cost, planner,
    )
    label = MODE_LABELS[_mode(mode)]
    points = [[time, bytes_per_second / 1e6] for time, bytes_per_second in timeseries]
    notes = {f"{label} churn events": events}
    return _network_result(network, {label: points}, notes)


def churn_intensity_trial(
    program: str,
    size: int,
    mode: str,
    links_per_round: int,
    rounds: int = 4,
    interval: float = 0.5,
    bucket: float = 0.25,
    seed: int = 0,
    max_cost: Optional[int] = None,
    planner: Optional[str] = None,
) -> Dict[str, Any]:
    """Mean churn-window bandwidth (MBps) at one churn intensity.

    Registry-only scenario support: x is the churn intensity (links changed
    per round) rather than time, so a sweep over intensities shows how
    provenance maintenance scales with the rate of topology change.
    """
    network, timeseries, events = _churn_timeseries(
        program, size, mode, rounds, links_per_round, interval, bucket, seed,
        max_cost, planner,
    )
    values = [bytes_per_second for _, bytes_per_second in timeseries]
    mean_mbps = (sum(values) / len(values) if values else 0.0) / 1e6
    label = MODE_LABELS[_mode(mode)]
    notes = {f"{label} @{links_per_round} churn events": events}
    return _network_result(network, {label: [[links_per_round, mean_mbps]]}, notes)


# ---------------------------------------------------------------------- #
# Figures 11-15: provenance query workloads
# ---------------------------------------------------------------------- #
def _query_network(size: int, seed: int) -> ExspanNetwork:
    """A reference-provenance MINCOST network used by the query experiments."""
    topology = size_topology(size, seed)
    return build_network(topology, mincost_program(), ProvenanceMode.REFERENCE, seed=seed)


def _grid_query_network(side: int, seed: int) -> ExspanNetwork:
    """A grid-topology MINCOST network with abundant equal-cost multipaths.

    The paper's 100-node transit-stub networks give ``bestPathCost`` tuples
    roughly three alternative derivations on average; our scaled-down
    transit-stub defaults are too sparse for that, so the traversal-order
    experiments (Figures 13 / 14) run MINCOST on a grid, where equal-cost
    shortest paths make multi-derivation tuples the common case.
    """
    topology = grid_topology(side, side)
    return build_network(topology, mincost_program(), ProvenanceMode.REFERENCE, seed=seed)


def _run_query_workload(
    network: ExspanNetwork,
    spec,
    queries_per_second: float,
    duration: float,
    seed: int,
) -> QueryWorkload:
    network.stats.reset()
    workload = QueryWorkload(
        network,
        spec,
        queries_per_second=queries_per_second,
        duration=duration,
        seed=seed,
    )
    workload.run()
    return workload


#: Caching variants: label and (equal-length) query-spec name per setting.
_CACHE_VARIANTS: Dict[bool, Tuple[str, str]] = {
    False: ("Without caching", "polync"),
    True: ("With caching", "polywc"),
}


def caching_bandwidth_trial(
    size: int,
    use_cache: bool,
    queries_per_second: float = 5.0,
    duration: float = 2.0,
    bucket: float = 0.25,
    seed: int = 0,
) -> Dict[str, Any]:
    """Per-node query bandwidth (KBps) with or without result caching."""
    label, spec_name = _CACHE_VARIANTS[bool(use_cache)]
    network = _query_network(size, seed)
    spec = polynomial_query(name=spec_name, use_cache=bool(use_cache))
    workload = _run_query_workload(network, spec, queries_per_second, duration, seed)
    timeseries = network.stats.bandwidth_timeseries(
        bucket, network.node_count, start=0.0, end=duration, kinds=["prov"]
    )
    points = [[time, bytes_per_second / 1e3] for time, bytes_per_second in timeseries]
    notes = {
        f"{label} queries": len(workload.outcomes),
        f"{label} cache": network.cache_stats(),
    }
    return _network_result(network, {label: points}, notes)


def caching_latency_trial(
    size: int,
    use_cache: bool,
    queries_per_second: float = 5.0,
    duration: float = 2.0,
    cdf_samples: int = 20,
    seed: int = 0,
) -> Dict[str, Any]:
    """Query completion-latency CDF with or without result caching."""
    label, spec_name = _CACHE_VARIANTS[bool(use_cache)]
    network = _query_network(size, seed)
    spec = polynomial_query(name=spec_name, use_cache=bool(use_cache))
    workload = _run_query_workload(network, spec, queries_per_second, duration, seed)
    latencies = [outcome.latency for outcome in workload.outcomes]
    points = [
        [round(value, 6), fraction] for value, fraction in cdf_points(latencies, cdf_samples)
    ]
    stats = workload.latency_stats()
    notes = {
        f"{label} median (s)": round(stats.percentile(0.5), 6),
        f"{label} p80 (s)": round(stats.percentile(0.8), 6),
    }
    return _network_result(network, {label: points}, notes)


#: Traversal variants: equal-length spec names so that message-size
#: accounting is identical across strategies (the name travels in queries).
_TRAVERSAL_VARIANTS: Dict[str, Tuple[str, TraversalOrder]] = {
    "BFS": ("dcbfs", TraversalOrder.BFS),
    "DFS": ("dcdfs", TraversalOrder.DFS),
    "DFS-Threshold": ("dcthr", TraversalOrder.DFS_THRESHOLD),
}


def _traversal_spec(traversal: str, threshold: int):
    spec_name, order = _TRAVERSAL_VARIANTS[traversal]
    if order is TraversalOrder.DFS_THRESHOLD:
        return derivation_count_query(name=spec_name, traversal=order, threshold=threshold)
    return derivation_count_query(name=spec_name, traversal=order)


def traversal_bandwidth_trial(
    grid_side: int,
    traversal: str,
    queries_per_second: float = 5.0,
    duration: float = 2.0,
    bucket: float = 0.25,
    threshold: int = 3,
    seed: int = 0,
) -> Dict[str, Any]:
    """#DERIVATION query bandwidth (KBps) for one traversal strategy."""
    network = _grid_query_network(grid_side, seed)
    spec = _traversal_spec(traversal, threshold)
    workload = _run_query_workload(network, spec, queries_per_second, duration, seed)
    timeseries = network.stats.bandwidth_timeseries(
        bucket, network.node_count, start=0.0, end=duration, kinds=["prov"]
    )
    points = [[time, bytes_per_second / 1e3] for time, bytes_per_second in timeseries]
    notes = {
        f"{traversal} total KB": round(network.query_bytes() / 1e3, 3),
        f"{traversal} queries": len(workload.outcomes),
    }
    return _network_result(network, {traversal: points}, notes)


def traversal_latency_trial(
    grid_side: int,
    traversal: str,
    queries_per_second: float = 5.0,
    duration: float = 2.0,
    cdf_samples: int = 20,
    threshold: int = 3,
    seed: int = 0,
) -> Dict[str, Any]:
    """#DERIVATION query latency CDF for one traversal strategy."""
    network = _grid_query_network(grid_side, seed)
    spec = _traversal_spec(traversal, threshold)
    workload = _run_query_workload(network, spec, queries_per_second, duration, seed)
    latencies = [outcome.latency for outcome in workload.outcomes]
    points = [
        [round(value, 6), fraction] for value, fraction in cdf_points(latencies, cdf_samples)
    ]
    notes = {f"{traversal} p80 (s)": round(workload.latency_stats().percentile(0.8), 6)}
    return _network_result(network, {traversal: points}, notes)


# ---------------------------------------------------------------------- #
# Multi-querier concurrency sweep (registry-only): k simultaneous queriers
# ---------------------------------------------------------------------- #
#: Equal-length spec names per (traversal, cached) variant so the message
#: framing is identical across the sweep (the spec name travels in queries).
_CONCURRENCY_VARIANTS: Dict[Tuple[str, bool], str] = {
    ("BFS", False): "qcbfs0",
    ("BFS", True): "qcbfs1",
    ("DFS", False): "qcdfs0",
    ("DFS", True): "qcdfs1",
    ("DFS-Threshold", False): "qcthr0",
    ("DFS-Threshold", True): "qcthr1",
}


def _concurrency_topology(topology: str, size: int, seed: int) -> Topology:
    if topology == "ring":
        return ring_topology(size, seed=seed)
    if topology == "grid":
        return grid_topology(size, size)
    raise ValueError(f"unknown query_concurrency topology {topology!r}")


def _concurrency_spec(traversal: str, use_cache: bool, threshold: int):
    try:
        spec_name = _CONCURRENCY_VARIANTS[(traversal, bool(use_cache))]
    except KeyError:
        raise ValueError(
            f"unknown query_concurrency variant {traversal!r}/cache={use_cache!r}"
        ) from None
    _, order = _TRAVERSAL_VARIANTS[traversal]
    if order is TraversalOrder.DFS_THRESHOLD:
        return derivation_count_query(
            name=spec_name, traversal=order, use_cache=bool(use_cache),
            threshold=threshold,
        )
    return derivation_count_query(
        name=spec_name, traversal=order, use_cache=bool(use_cache)
    )


def query_concurrency_trial(
    topology: str,
    size: int,
    k: int,
    traversal: str,
    use_cache: bool,
    queries_per_querier: int = 4,
    hot_tuples: int = 4,
    waves: int = 2,
    threshold: int = 3,
    seed: int = 0,
    coalescing: bool = True,
    batching: bool = True,
) -> Dict[str, Any]:
    """Prov-kind traffic (KB) for k simultaneous queriers on one variant.

    A MINCOST reference-provenance network is fixpointed on a ring or grid
    (grids give abundant equal-cost multipaths, i.e. multi-derivation
    tuples), then *k* querier nodes fire a burst of #DERIVATION queries at
    the same instant against a shared hot set of tuples.  The y value is
    total prov-kind KB for the burst; the notes surface the concurrency
    counters (in-flight / root coalescing, cache hits, batching) that
    explain the reduction.  ``coalescing`` / ``batching`` exist for
    ablations and benchmarks; the registered scenario leaves them on.
    """
    network = ExspanNetwork(
        _concurrency_topology(topology, size, seed),
        mincost_program(),
        config=ExspanConfig(
            mode=ProvenanceMode.REFERENCE,
            seed=seed,
            query_coalescing=coalescing,
            query_batching=batching,
        ),
    )
    network.seed_links()
    network.run_to_fixpoint()
    spec = _concurrency_spec(traversal, use_cache, threshold)
    network.stats.reset()
    workload = BurstQueryWorkload(
        network,
        spec,
        queriers=k,
        queries_per_querier=queries_per_querier,
        hot_tuples=hot_tuples,
        waves=waves,
        seed=seed,
    )
    workload.run()
    label = f"{traversal}{'+cache' if use_cache else ''} ({topology})"
    query_stats = network.query_service_stats()
    notes = {
        f"{label} @k={k} queries": len(workload.outcomes),
        f"{label} @k={k} prov messages": network.query_messages(),
        f"{label} @k={k} coalesced": (
            query_stats["coalesced_inflight"] + query_stats["coalesced_roots"]
        ),
        f"{label} @k={k} cache hits": query_stats["cache_hits"],
        f"{label} @k={k} batched": query_stats["messages_batched"],
    }
    return _network_result(
        network, {label: [[k, round(network.query_bytes() / 1e3, 6)]]}, notes
    )


# ---------------------------------------------------------------------- #
# Figure 15: polynomial vs BDD query representations
# ---------------------------------------------------------------------- #
def representation_trial(
    size: int,
    representation: str,
    queries_per_second: float = 5.0,
    duration: float = 2.0,
    bucket: float = 0.25,
    seed: int = 0,
) -> Dict[str, Any]:
    """Query bandwidth (KBps) for one provenance-result representation.

    Equal-length spec names keep the per-message framing identical.
    """
    specs = {
        "Polynomial": lambda: polynomial_query(name="f15poly"),
        "BDD": lambda: bdd_query(name="f15bddq"),
    }
    if representation not in specs:
        raise ValueError(f"unknown representation {representation!r}")
    network = _query_network(size, seed)
    workload = _run_query_workload(
        network, specs[representation](), queries_per_second, duration, seed
    )
    timeseries = network.stats.bandwidth_timeseries(
        bucket, network.node_count, start=0.0, end=duration, kinds=["prov"]
    )
    points = [[time, bytes_per_second / 1e3] for time, bytes_per_second in timeseries]
    notes = {
        f"{representation} total KB": round(network.query_bytes() / 1e3, 3),
        f"{representation} mean latency (s)": round(workload.latency_stats().mean(), 6),
    }
    return _network_result(network, {representation: points}, notes)


# ---------------------------------------------------------------------- #
# Figures 16, 17: "testbed" deployment (ring topology)
# ---------------------------------------------------------------------- #
def testbed_bandwidth_trial(
    size: int,
    mode: str,
    bucket: float = 0.002,
    seed: int = 0,
    planner: Optional[str] = None,
) -> Dict[str, Any]:
    """PATHVECTOR bandwidth (KBps) over time on the ring testbed topology."""
    topology = ring_topology(size, seed=seed)
    network = build_network(
        topology, pathvector_program(), _mode(mode), seed=seed, planner=planner
    )
    end = max(network.now, bucket)
    timeseries = network.stats.bandwidth_timeseries(
        bucket, network.node_count, start=0.0, end=end, kinds=[DELTA_MESSAGE_KIND]
    )
    label = MODE_LABELS[_mode(mode)]
    points = [
        [round(time, 6), bytes_per_second / 1e3] for time, bytes_per_second in timeseries
    ]
    notes = {
        f"{label} total KB per node": round(
            network.average_maintenance_bytes_per_node() / 1e3, 3
        )
    }
    return _network_result(network, {label: points}, notes)


def testbed_fixpoint_trial(
    size: int,
    mode: str,
    seed: int = 0,
    planner: Optional[str] = None,
    shards: Optional[int] = None,
) -> Dict[str, Any]:
    """PATHVECTOR fixpoint latency (s) at one (size, mode) on the testbed."""
    topology = ring_topology(size, seed=seed)
    summary = fixpoint_summary(
        topology, pathvector_program(), _mode(mode), seed=seed, planner=planner,
        shards=shards,
    )
    label = MODE_LABELS[_mode(mode)]
    return _summary_result(
        summary, {label: [[size, summary["fixpoint_time"]]]}, {}
    )


# ---------------------------------------------------------------------- #
# Scale sweep (registry-only): paper-scale fixpoints on the sharded engine
# ---------------------------------------------------------------------- #
def scale_topology(size: int, seed: int) -> Topology:
    """A clustered topology of exactly *size* nodes for the scale sweep.

    Clusters of 32 nodes joined by slow inter-cluster links (see
    :func:`~repro.net.topology.cluster_topology`); sizes that are not a
    multiple of 32 round to the nearest cluster count.
    """
    clusters = max(2, round(size / 32))
    return cluster_topology(clusters, 32, seed=seed)


def scale_fixpoint_trial(
    program: str,
    size: int,
    shards: int,
    mode: str = "ref",
    seed: int = 0,
    planner: Optional[str] = None,
) -> Dict[str, Any]:
    """Fixpoint one paper-scale topology on the sharded engine.

    The y value is per-node maintenance MB at fixpoint; the notes carry
    the fixpoint latency and message counts.  Sweeping ``shards`` puts the
    engine's headline guarantee on the record: every curve of a scale
    sweep is **identical** across shard counts (the CI gate diffs them),
    while wall-clock (advisory ``wall_seconds`` in the artifact) drops as
    workers are added on multi-core machines.
    """
    topology = scale_topology(size, seed)
    summary = fixpoint_summary(
        topology, _program(program), _mode(mode), seed=seed, planner=planner,
        shards=shards,
    )
    node_count = topology.node_count()
    per_node_mb = summary["traffic"]["maintenance_bytes"] / node_count / 1e6
    label = f"{program} shards={shards}"
    notes = {
        f"{label} fixpoint (s) @n={node_count}": round(summary["fixpoint_time"], 6),
        f"{label} messages @n={node_count}": summary["traffic"]["total_messages"],
    }
    return _summary_result(summary, {label: [[node_count, per_node_mb]]}, notes)


# ---------------------------------------------------------------------- #
# Planner ablation (registry-only): evaluation work per strategy
# ---------------------------------------------------------------------- #
def planner_fixpoint_trial(
    program: str,
    size: int,
    planner: str,
    seed: int = 1,
) -> Dict[str, Any]:
    """Tuples scanned to fixpoint on a ring, for one planner strategy.

    Uses :class:`StandaloneNetwork` (instant delivery, no simulator) so the
    measurement isolates pure evaluation work; the y value is the network
    -wide ``tuples_scanned`` counter, the quantity the CI regression gate
    watches most closely.
    """
    topology = ring_topology(size, seed=seed)
    network = StandaloneNetwork(topology.nodes, _program(program), planner=planner)
    for source, destination, cost in topology.link_facts():
        network.insert(Fact("link", (source, destination, cost)))
    network.run()
    stats = network.planner_stats()
    label = f"{program} ({planner})"
    return trial_result(
        {label: [[size, stats["tuples_scanned"]]]},
        # Size is part of the note key: one messages count per curve point
        # (assemble_figure merges notes across trials by key).
        {f"{label} messages @n={size}": network.messages_sent},
        stats,
        {"total_messages": network.messages_sent},
    )


# ---------------------------------------------------------------------- #
# Chaos convergence (registry-only): fault plans vs the fault-free digest
# ---------------------------------------------------------------------- #
def chaos_topology(size: int, seed: int = 0) -> Topology:
    """A tie-free ring: distinct power-of-two link costs, rotated by *seed*.

    Any two distinct simple paths traverse different link subsets, and
    sums of distinct powers of two are unique — so no two paths ever tie
    on cost.  That matters because PATHVECTOR breaks equal-cost ties by
    *arrival order* (RapidNet materialize semantics: the keyed
    ``bestPath`` keeps whichever winner lands last), which is documented
    order-dependence, not divergence; a tie-free topology is what makes
    "final tables digest-match the fault-free run" a sound oracle under
    fault plans that perturb message timing.
    """
    topology = Topology(name=f"chaosring:{size}")
    for index in range(size):
        a, b = f"n{index}", f"n{(index + 1) % size}"
        cost = 2 ** ((index + seed) % size)
        topology.add_link(a, b, LinkSpec(latency=0.001, cost=cost))
    return topology


def chaos_convergence_trial(
    program: str,
    size: int,
    faults: str,
    shards: int = 1,
    mode: str = "ref",
    seed: int = 0,
) -> Dict[str, Any]:
    """Fixpoint one tie-free ring under a fault plan and check convergence.

    Runs the same (program, topology) twice: fault-free serial for the
    reference convergence digest, then under *faults* (serial or sharded
    with supervision).  The y value is 1.0 when the faulted run's final
    protocol tables digest-match the fault-free run — the subsystem's
    headline oracle — and the traffic section records the injector's
    counters (drops, retransmits, duplicates suppressed, crashes) so a
    sweep shows how much adversity each plan actually injected.

    ``program="packetforward"`` runs the data plane: PATHVECTOR builds
    the routes, packets are injected post-fixpoint, and the convergence
    check covers the materialized ``recvPacket`` deliveries too.
    """
    from ..faults import convergence_digest
    from ..protocols.packetforward import packet_event

    topology = chaos_topology(size, seed=seed)
    packets: List[Any] = []
    if program == "packetforward":
        resolved = pathvector_program().extended(packetforward_program(), "pv+fwd")
        payload = "x" * 16
        packets = [
            packet_event("n0", "n0", f"n{size // 2}", payload),
            packet_event(f"n{size - 1}", f"n{size - 1}", "n1", payload),
        ]
    else:
        resolved = _program(program)

    def serial_run(plan):
        network = ExspanNetwork(
            topology, resolved, config=ExspanConfig(mode=_mode(mode), seed=seed)
        )
        if plan is not None:
            network.install_faults(plan)
        network.seed_links()
        network.run_to_fixpoint()
        for packet in packets:
            network.insert_fact(packet)
            network.run_to_fixpoint()
        return network

    expected = convergence_digest(serial_run(None))

    if shards <= 1:
        network = serial_run(faults)
        digest = convergence_digest(network)
        injector = network.fault_injector
        fault_stats = dict(injector.stats()) if injector is not None else {}
    else:
        with ShardedExspanNetwork(
            topology, resolved, mode=_mode(mode), shards=shards, seed=seed,
            faults=faults, supervise=True,
        ) as sharded:
            sharded.seed_links()
            sharded.run_to_fixpoint()
            for packet in packets:
                sharded.apply_ops([ScriptOp(kind="insert", fact=packet)])
            digest = sharded.convergence_digest()
            fault_stats = dict(sharded.fault_stats())

    converged = digest == expected
    label = f"{program} shards={shards}"
    notes = {
        f"{label} plan": faults,
        f"{label} converged": converged,
        f"{label} digest": digest[:16],
    }
    return trial_result(
        {label: [[size, 1.0 if converged else 0.0]]},
        notes,
        {},
        fault_stats,
    )


#: Registry used by the orchestrator's worker processes: trial functions are
#: referenced by name in trial specs and artifacts, never pickled directly.
TRIAL_FUNCTIONS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "comm_cost": comm_cost_trial,
    "packet_bandwidth": packet_bandwidth_trial,
    "churn": churn_trial,
    "churn_intensity": churn_intensity_trial,
    "caching_bandwidth": caching_bandwidth_trial,
    "caching_latency": caching_latency_trial,
    "traversal_bandwidth": traversal_bandwidth_trial,
    "traversal_latency": traversal_latency_trial,
    "query_concurrency": query_concurrency_trial,
    "representation": representation_trial,
    "testbed_bandwidth": testbed_bandwidth_trial,
    "testbed_fixpoint": testbed_fixpoint_trial,
    "planner_fixpoint": planner_fixpoint_trial,
    "scale_fixpoint": scale_fixpoint_trial,
    "chaos_convergence": chaos_convergence_trial,
}
