"""Result containers and formatting for the experiment harness.

Every figure runner in :mod:`repro.experiments.figures` returns a
:class:`FigureResult`: a set of named series (one per curve in the paper's
figure) plus enough metadata to print a readable table.  The harness prints
these rows; EXPERIMENTS.md records the comparison against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Series", "FigureResult", "format_table"]


@dataclass
class Series:
    """One curve of a figure: a label and a list of (x, y) points."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def xs(self) -> List[float]:
        return [x for x, _ in self.points]

    def ys(self) -> List[float]:
        return [y for _, y in self.points]

    def mean_y(self) -> float:
        ys = self.ys()
        return sum(ys) / len(ys) if ys else 0.0

    def final_y(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def y_at(self, x: float) -> Optional[float]:
        for point_x, point_y in self.points:
            if point_x == x:
                return point_y
        return None


@dataclass
class FigureResult:
    """The reproduction of one figure of the paper."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, Series] = field(default_factory=dict)
    notes: Dict[str, Any] = field(default_factory=dict)

    def series_for(self, label: str) -> Series:
        if label not in self.series:
            self.series[label] = Series(label)
        return self.series[label]

    def add_point(self, label: str, x: float, y: float) -> None:
        self.series_for(label).add(x, y)

    def labels(self) -> List[str]:
        return list(self.series)

    # ------------------------------------------------------------------ #
    # text rendering
    # ------------------------------------------------------------------ #
    def to_rows(self) -> List[List[str]]:
        """Tabulate the figure: one row per x value, one column per series."""
        xs: List[float] = []
        for series in self.series.values():
            for x in series.xs():
                if x not in xs:
                    xs.append(x)
        xs.sort()
        header = [self.x_label] + [series.label for series in self.series.values()]
        rows = [header]
        for x in xs:
            row = [_format_number(x)]
            for series in self.series.values():
                value = series.y_at(x)
                row.append("-" if value is None else _format_number(value))
            rows.append(row)
        return rows

    def render(self) -> str:
        lines = [f"{self.figure_id}: {self.title}", f"  ({self.y_label} vs {self.x_label})"]
        lines.append(format_table(self.to_rows()))
        if self.notes:
            for key, value in self.notes.items():
                lines.append(f"  note: {key} = {value}")
        return "\n".join(lines)

    def summary(self) -> Dict[str, float]:
        """Mean y per series — a compact value for benchmark assertions."""
        return {label: series.mean_y() for label, series in self.series.items()}


def _format_number(value: float) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Sequence[str]]) -> str:
    """Render rows as a fixed-width text table."""
    if not rows:
        return ""
    widths = [0] * max(len(row) for row in rows)
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = []
    for row_index, row in enumerate(rows):
        cells = [str(cell).rjust(widths[index]) for index, cell in enumerate(row)]
        lines.append("  " + " | ".join(cells))
        if row_index == 0:
            lines.append("  " + "-+-".join("-" * width for width in widths))
    return "\n".join(lines)
