"""Experiment harness: regenerate every figure of the paper's evaluation.

The declarative scenario registry (:mod:`repro.experiments.scenarios`)
describes every sweep; the orchestrator
(:mod:`repro.experiments.orchestrator`, CLI ``python -m repro.experiments
run|list|compare``) fans the independent trials across a process pool and
writes versioned ``BENCH_*.json`` artifacts with a CI regression gate.
See :mod:`repro.experiments.figures` for the per-figure runners,
:mod:`repro.experiments.trials` for the atomic measurements,
:mod:`repro.experiments.workloads` for the query / packet / churn workload
generators and :mod:`repro.experiments.reporting` for the shape checks that
compare the reproduction against the paper's reported trends.
"""

from .figures import (
    MODE_LABELS,
    all_figures,
    build_network,
    figure_06_mincost_communication,
    figure_07_pathvector_communication,
    figure_08_packetforward_bandwidth,
    figure_09_mincost_churn,
    figure_10_pathvector_churn,
    figure_11_caching_bandwidth,
    figure_12_caching_latency,
    figure_13_traversal_bandwidth,
    figure_14_traversal_latency,
    figure_15_polynomial_vs_bdd,
    figure_16_testbed_bandwidth,
    figure_17_testbed_fixpoint,
)
from .metrics import FigureResult, Series, format_table
from .orchestrator import CompareReport, RunReport, compare, run
from .reporting import check_shape, paper_expectations, render_report
from .runner import FIGURE_RUNNERS, run_figures
from .scenarios import (
    SCENARIOS,
    Scenario,
    TrialSpec,
    assemble_figure,
    get_scenario,
    register,
    run_figure,
    scenario_for_figure,
    unregister,
)
from .workloads import PacketWorkload, QueryWorkload, make_churn

__all__ = [
    "MODE_LABELS",
    "all_figures",
    "build_network",
    "figure_06_mincost_communication",
    "figure_07_pathvector_communication",
    "figure_08_packetforward_bandwidth",
    "figure_09_mincost_churn",
    "figure_10_pathvector_churn",
    "figure_11_caching_bandwidth",
    "figure_12_caching_latency",
    "figure_13_traversal_bandwidth",
    "figure_14_traversal_latency",
    "figure_15_polynomial_vs_bdd",
    "figure_16_testbed_bandwidth",
    "figure_17_testbed_fixpoint",
    "FigureResult",
    "Series",
    "format_table",
    "check_shape",
    "paper_expectations",
    "render_report",
    "FIGURE_RUNNERS",
    "run_figures",
    "PacketWorkload",
    "QueryWorkload",
    "make_churn",
    "SCENARIOS",
    "Scenario",
    "TrialSpec",
    "assemble_figure",
    "get_scenario",
    "register",
    "unregister",
    "run_figure",
    "scenario_for_figure",
    "CompareReport",
    "RunReport",
    "compare",
    "run",
]
