"""Observability: tracing spans, metrics, and trace exporters.

The reproduction's own provenance layer for *executions*: `Tracer` records
causally-linked spans across the simulator, the NDlog engines, the
distributed provenance query protocol and the sharded barrier driver;
`MetricsRegistry` unifies the scattered counter dictionaries behind one
snapshot/merge API; :mod:`repro.obs.export` renders Chrome trace-event JSON
(loadable in Perfetto / ``chrome://tracing``), JSONL event logs and a
terminal phase summary.

Determinism contract
--------------------
Tracing must never perturb results.  Span timestamps are **simulated**
time (wall-clock is carried as an advisory attribute only), trace context
rides on query payloads under a size-exempt key, and no instrumentation
writes into ``engine.stats`` or any other counter that enters artifact
fingerprints or sharding digests — so fixpoints, VIDs, counters and
benchmark artifacts are bit-identical with tracing on or off, at any
shard count.
"""

from .metrics import MetricsRegistry, merged_counters
from .runtime import TraceSession, active_session, disable_tracing, enable_tracing
from .tracer import Span, SpanRecord, Tracer, TRACE_CONTEXT_KEY
from .export import (
    chrome_trace,
    phase_breakdown,
    phase_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_span_jsonl,
)

__all__ = [
    "Tracer",
    "Span",
    "SpanRecord",
    "TRACE_CONTEXT_KEY",
    "MetricsRegistry",
    "merged_counters",
    "TraceSession",
    "enable_tracing",
    "disable_tracing",
    "active_session",
    "chrome_trace",
    "write_chrome_trace",
    "write_span_jsonl",
    "validate_chrome_trace",
    "phase_summary",
    "phase_breakdown",
]
