"""Process-wide trace session plumbing.

The orchestrator runs trial functions that build their networks deep
inside library code, so tracing is switched on per *process* rather than
threaded through every constructor: :func:`enable_tracing` opens a
:class:`TraceSession`, and every :class:`~repro.core.api.ExspanNetwork`
(or sharded driver) built while a session is active registers a fresh
tracer with it automatically.  Mirrors the
``set_default_shards``/``resolve_shards`` pattern in
:mod:`repro.experiments.trials`.

Shard worker processes call :func:`disable_tracing` on startup: they
inherit the parent's session state via ``fork``, but their spans are
collected explicitly over the worker pipe (the ``"spans"`` verb), not
through an inherited session object.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .tracer import SpanRecord, Tracer

__all__ = ["TraceSession", "enable_tracing", "disable_tracing", "active_session"]


class TraceSession:
    """All tracers opened while tracing is enabled in this process."""

    def __init__(self) -> None:
        self.tracers: List[Tracer] = []

    def new_tracer(
        self, clock: Optional[Callable[[], float]] = None, shard: int = 0
    ) -> Tracer:
        tracer = Tracer(clock=clock, shard=shard)
        self.tracers.append(tracer)
        return tracer

    def span_records(self) -> List[SpanRecord]:
        """Every span of every tracer, in deterministic merged order."""
        merged: List[SpanRecord] = []
        for tracer in self.tracers:
            merged.extend(tracer.spans)
        merged.sort(key=lambda record: (record.ts, record.shard, record.seq))
        return merged

    def phase_aggregates(self) -> Dict[str, Dict[str, Any]]:
        """Merged per-phase aggregates across every tracer."""
        out: Dict[str, Dict[str, Any]] = {}
        for tracer in self.tracers:
            for name, entry in tracer.phase_aggregates().items():
                merged = out.setdefault(
                    name, {"cat": entry["cat"], "count": 0, "wall_ms": 0.0}
                )
                merged["count"] += entry["count"]
                merged["wall_ms"] = round(merged["wall_ms"] + entry["wall_ms"], 3)
        return dict(sorted(out.items()))

    def dropped_spans(self) -> int:
        return sum(tracer.dropped_spans for tracer in self.tracers)


_session: Optional[TraceSession] = None


def enable_tracing() -> TraceSession:
    """Open (or return) the process-wide trace session."""
    global _session
    if _session is None:
        _session = TraceSession()
    return _session


def disable_tracing() -> None:
    """Close the session; networks built afterwards are untraced."""
    global _session
    _session = None


def active_session() -> Optional[TraceSession]:
    return _session
