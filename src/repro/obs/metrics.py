"""A labelled metrics registry and the generic keyed counter merge.

The repository grew three hand-rolled counter-merge loops
(:func:`repro.net.stats.aggregate_engine_stats`,
:func:`~repro.net.stats.aggregate_query_stats`,
:func:`~repro.net.stats.merge_counter_dicts`); they are now thin wrappers
over :func:`merged_counters`, which reproduces each one's key ordering
exactly (schema keys first in declaration order, extras in insertion
order, or fully sorted) so merged dicts stay byte-identical to the
pre-refactor output.

:class:`MetricsRegistry` is the forward-looking surface: counters, gauges
and histograms with labels, a canonical :meth:`~MetricsRegistry.snapshot`
and a :meth:`~MetricsRegistry.merge_snapshots` that folds per-shard (or
per-trial) snapshots into one — the same shape Prometheus-style clients
expose, kept dependency-free.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

__all__ = ["merged_counters", "MetricsRegistry"]

Number = Union[int, float]
#: Canonical label identity: sorted ``(key, value)`` items.
LabelItems = Tuple[Tuple[str, str], ...]


def merged_counters(
    maps: Iterable[Mapping[str, Any]],
    schema: Sequence[str] = (),
    sort: bool = False,
) -> Dict[str, Any]:
    """Sum same-keyed numeric dicts into one.

    ``schema`` keys are pre-seeded to zero (and therefore lead the output
    in declaration order, giving reports a stable layout); other keys
    follow in first-appearance order, or fully sorted with ``sort=True``
    (the ``PYTHONHASHSEED``-independent form cross-shard merges need).
    """
    totals: Dict[str, Any] = {key: 0 for key in schema}
    for counters in maps:
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + value
    if sort:
        return dict(sorted(totals.items()))
    return totals


def _labels_key(labels: Mapping[str, Any]) -> LabelItems:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _render_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Counters, gauges and histograms with labels.

    All views are canonical: series are keyed ``name{label=value,...}``
    with sorted label items, and snapshots sort every key — so a snapshot
    is deterministic under any insertion order and any hash seed.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], Number] = {}
        self._gauges: Dict[Tuple[str, LabelItems], Number] = {}
        #: (name, labels) -> [count, total, min, max]
        self._histograms: Dict[Tuple[str, LabelItems], List[float]] = {}

    # ------------------------------------------------------------------ #
    # instruments
    # ------------------------------------------------------------------ #
    def inc(self, name: str, value: Number = 1, **labels: Any) -> None:
        """Add *value* to the counter series ``name{labels}``."""
        key = (name, _labels_key(labels))
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: Number, **labels: Any) -> None:
        """Set the gauge series ``name{labels}`` to *value*."""
        self._gauges[(name, _labels_key(labels))] = value

    def observe(self, name: str, value: Number, **labels: Any) -> None:
        """Record one histogram observation for ``name{labels}``."""
        key = (name, _labels_key(labels))
        stats = self._histograms.get(key)
        if stats is None:
            self._histograms[key] = [1, float(value), float(value), float(value)]
        else:
            stats[0] += 1
            stats[1] += value
            if value < stats[2]:
                stats[2] = float(value)
            if value > stats[3]:
                stats[3] = float(value)

    def counter_value(self, name: str, **labels: Any) -> Number:
        return self._counters.get((name, _labels_key(labels)), 0)

    def absorb_counters(
        self, counters: Mapping[str, Number], prefix: str = "", **labels: Any
    ) -> None:
        """Fold a plain counter dict (one of the legacy stats maps) in."""
        for key, value in counters.items():
            self.inc(f"{prefix}{key}", value, **labels)

    # ------------------------------------------------------------------ #
    # snapshot / merge
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """Canonical JSON-able view of every series."""
        counters = {
            _render_key(name, labels): value
            for (name, labels), value in self._counters.items()
        }
        gauges = {
            _render_key(name, labels): value
            for (name, labels), value in self._gauges.items()
        }
        histograms = {
            _render_key(name, labels): {
                "count": int(stats[0]),
                "sum": stats[1],
                "min": stats[2],
                "max": stats[3],
                "mean": stats[1] / stats[0],
            }
            for (name, labels), stats in self._histograms.items()
        }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    @staticmethod
    def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
        """Fold several snapshots into one.

        Counters and histogram counts/sums add; histogram min/max fold;
        gauges take the maximum (the deterministic choice for the
        high-water readings gauges carry here).
        """
        counters: Dict[str, Number] = {}
        gauges: Dict[str, Number] = {}
        histograms: Dict[str, List[float]] = {}
        for snapshot in snapshots:
            for key, value in snapshot.get("counters", {}).items():
                counters[key] = counters.get(key, 0) + value
            for key, value in snapshot.get("gauges", {}).items():
                gauges[key] = max(gauges[key], value) if key in gauges else value
            for key, stats in snapshot.get("histograms", {}).items():
                merged = histograms.get(key)
                if merged is None:
                    histograms[key] = [
                        stats["count"],
                        stats["sum"],
                        stats["min"],
                        stats["max"],
                    ]
                else:
                    merged[0] += stats["count"]
                    merged[1] += stats["sum"]
                    merged[2] = min(merged[2], stats["min"])
                    merged[3] = max(merged[3], stats["max"])
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": {
                key: {
                    "count": int(stats[0]),
                    "sum": stats[1],
                    "min": stats[2],
                    "max": stats[3],
                    "mean": stats[1] / stats[0] if stats[0] else 0.0,
                }
                for key, stats in sorted(histograms.items())
            },
        }

    @classmethod
    def from_counters(
        cls, counters: Mapping[str, Number], prefix: str = ""
    ) -> "MetricsRegistry":
        registry = cls()
        registry.absorb_counters(counters, prefix=prefix)
        return registry

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
