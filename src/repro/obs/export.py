"""Trace exporters: Chrome trace-event JSON, JSONL, terminal phase summary.

The Chrome format is the ``"X"`` (complete-event) flavour of the trace
event spec — a ``{"traceEvents": [...]}`` object loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  Processes map to
shards and threads to hosts, so a sharded run renders each shard as a
process lane with its hosts stacked inside; timestamps are simulated
microseconds (the deterministic axis), with advisory wall time, trace ids
and span links carried in each event's ``args``.

:func:`validate_chrome_trace` is the schema check the CI smoke job runs
against captured traces, and :func:`phase_summary` renders the
flamegraph-style per-phase breakdown the ``trace`` CLI subcommand prints.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from .tracer import SpanRecord

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "write_span_jsonl",
    "load_trace",
    "validate_chrome_trace",
    "phase_breakdown",
    "phase_summary",
    "summarize_trace_events",
]


def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


def _lane_maps(spans: Sequence[SpanRecord]) -> Tuple[Dict[int, int], Dict[Any, int]]:
    """Deterministic shard->pid and host->tid assignments."""
    shards = sorted({record.shard for record in spans})
    pids = {shard: shard + 1 for shard in shards}  # shard -1 (driver) -> pid 0
    hosts = sorted({record.host for record in spans if record.host is not None}, key=repr)
    tids = {host: index + 1 for index, host in enumerate(hosts)}  # tid 0 = control
    return pids, tids


def chrome_trace(spans: Iterable[SpanRecord]) -> Dict[str, Any]:
    """Build the Chrome trace-event payload for *spans*."""
    ordered = sorted(spans, key=lambda record: (record.ts, record.shard, record.seq))
    pids, tids = _lane_maps(ordered)
    events: List[Dict[str, Any]] = []
    for shard, pid in pids.items():
        label = "driver" if shard < 0 else f"shard {shard}"
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for host, tid in tids.items():
        for pid in pids.values():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"host {host!r}"},
                }
            )
    for record in ordered:
        args: Dict[str, Any] = {key: _json_safe(value) for key, value in record.args}
        args["wall_us"] = round(record.wall_ns / 1e3, 3)
        args["span_id"] = record.span_id
        if record.trace_id is not None:
            args["trace_id"] = record.trace_id
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        events.append(
            {
                "ph": "X",
                "name": record.name,
                "cat": record.cat or "span",
                "ts": round(record.ts * 1e6, 3),
                "dur": round(record.dur * 1e6, 3),
                "pid": pids[record.shard],
                "tid": tids.get(record.host, 0),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[SpanRecord]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans), handle, indent=1)
        handle.write("\n")


def write_span_jsonl(path: str, spans: Iterable[SpanRecord]) -> None:
    """One JSON object per span, in deterministic order (grep-friendly)."""
    ordered = sorted(spans, key=lambda record: (record.ts, record.shard, record.seq))
    with open(path, "w", encoding="utf-8") as handle:
        for record in ordered:
            handle.write(
                json.dumps(
                    {
                        "name": record.name,
                        "cat": record.cat,
                        "ts": record.ts,
                        "dur": record.dur,
                        "host": _json_safe(record.host),
                        "shard": record.shard,
                        "trace_id": record.trace_id,
                        "span_id": record.span_id,
                        "parent_id": record.parent_id,
                        "wall_ns": record.wall_ns,
                        "args": {key: _json_safe(value) for key, value in record.args},
                    },
                    sort_keys=True,
                )
            )
            handle.write("\n")


def load_trace(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def validate_chrome_trace(payload: Any) -> List[str]:
    """Check *payload* against the trace-event schema; return error list.

    Accepts the object form (``{"traceEvents": [...]}``) produced by
    :func:`chrome_trace`; an empty return value means the trace is valid.
    """
    errors: List[str] = []
    if not isinstance(payload, Mapping):
        return [f"trace payload must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M"):
            errors.append(f"{where}: unsupported ph {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                errors.append(f"{where}: {field} must be an integer")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(f"{where}: {field} must be a non-negative number")
            if "args" in event and not isinstance(event["args"], Mapping):
                errors.append(f"{where}: args must be an object")
        else:  # metadata
            args = event.get("args")
            if not isinstance(args, Mapping) or not isinstance(args.get("name"), str):
                errors.append(f"{where}: metadata event needs args.name")
        if len(errors) >= 20:
            errors.append("... (further errors suppressed)")
            break
    return errors


# ---------------------------------------------------------------------- #
# phase summaries
# ---------------------------------------------------------------------- #
def phase_breakdown(aggregates: Mapping[str, Mapping[str, Any]]) -> Dict[str, Any]:
    """JSON-able advisory per-phase breakdown for BENCH artifacts.

    Input is :meth:`repro.obs.tracer.Tracer.phase_aggregates` output; the
    result lands in each trial record under the advisory ``"phases"`` key
    (stripped before any byte-identity comparison, like ``wall_seconds``).
    """
    return {
        name: {"count": entry["count"], "wall_ms": entry["wall_ms"]}
        for name, entry in sorted(aggregates.items())
    }


def summarize_trace_events(events: Iterable[Mapping[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Rebuild phase aggregates from exported ``"X"`` events."""
    aggregates: Dict[str, Dict[str, Any]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        name = event.get("name", "?")
        args = event.get("args") or {}
        wall_us = args.get("wall_us", 0.0)
        entry = aggregates.setdefault(
            name, {"cat": event.get("cat", ""), "count": 0, "wall_ms": 0.0}
        )
        entry["count"] += 1
        entry["wall_ms"] = round(entry["wall_ms"] + wall_us / 1e3, 3)
    return dict(sorted(aggregates.items()))


def phase_summary(
    aggregates: Mapping[str, Mapping[str, Any]], width: int = 28
) -> str:
    """Terminal flamegraph-style phase table (advisory wall time)."""
    if not aggregates:
        return "trace: no spans recorded"
    rows = sorted(
        aggregates.items(), key=lambda item: (-item[1].get("wall_ms", 0.0), item[0])
    )
    total = sum(entry.get("wall_ms", 0.0) for _, entry in rows) or 1.0
    lines = ["phase summary (advisory wall time):"]
    header = f"  {'span':<18} {'cat':<8} {'count':>9} {'wall ms':>10}  share"
    lines.append(header)
    for name, entry in rows:
        wall_ms = entry.get("wall_ms", 0.0)
        share = wall_ms / total
        bar = "#" * max(int(share * width + 0.5), 1 if wall_ms else 0)
        lines.append(
            f"  {name:<18} {entry.get('cat', ''):<8} {entry.get('count', 0):>9} "
            f"{wall_ms:>10.2f}  {share:>5.1%} {bar}"
        )
    return "\n".join(lines)
