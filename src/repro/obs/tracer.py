"""Span tracing with a zero-overhead-when-disabled contract.

Every instrumentation point in the stack follows one pattern::

    tracer = self.tracer
    if tracer is not None:
        with tracer.span("fixpoint.round", cat="engine", host=self.address):
            ...

so a disabled tracer (the default: ``self.tracer is None``) costs exactly
one attribute load and one identity check — nothing is allocated, no
clock is read.  The hottest engine path avoids even that by rebinding its
instance methods when a tracer is installed (see
:meth:`repro.datalog.engine.NDlogEngine.set_tracer`).

Time axes
---------
Span ``ts``/``dur`` are **simulated seconds** read from the tracer's
clock (the owning simulator), which makes traces — like every other
result in this reproduction — a deterministic function of the workload.
Real elapsed time is measured with ``perf_counter_ns`` and carried as the
*advisory* ``wall_ns`` field: it is what the phase summaries report, and
it never feeds anything fingerprinted.

Causality
---------
Context-managed spans nest on a per-tracer stack, so children link to
their enclosing span automatically.  Asynchronous work (a provenance
resolution parked on a continuation) uses :meth:`Tracer.begin` /
:meth:`Span.end` and links explicitly via a ``(trace_id, parent_span_id)``
context tuple — the same tuple the query protocol ships across hosts
under :data:`TRACE_CONTEXT_KEY`, which is how one distributed query
renders as a single causally-linked tree spanning several hosts (and
shard processes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = ["SpanRecord", "Span", "Tracer", "TRACE_CONTEXT_KEY", "DEFAULT_MAX_SPANS"]

#: Reserved key carrying ``[trace_id, parent_span_id]`` on provenance query
#: payload dicts.  :func:`repro.net.message.payload_size` exempts it from
#: wire-size accounting so byte counters are identical with tracing on/off.
TRACE_CONTEXT_KEY = "_tc"

#: Default bound on retained span records per tracer.  Aggregates stay
#: exact past the cap (only raw records are dropped, and counted).
DEFAULT_MAX_SPANS = 200_000

#: A propagated trace context: ``(trace_id, parent_span_id)``.
TraceContext = Tuple[str, str]


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span.  Plain data: picklable across shard pipes."""

    name: str
    cat: str
    ts: float  # simulated seconds (span start)
    dur: float  # simulated seconds
    host: Any
    shard: int
    seq: int
    trace_id: Optional[str]
    span_id: str
    parent_id: Optional[str]
    wall_ns: int  # advisory real elapsed time
    args: Tuple[Tuple[str, Any], ...] = ()


class Span:
    """A span in progress; context manager or explicit :meth:`end`."""

    __slots__ = (
        "_tracer",
        "name",
        "cat",
        "host",
        "trace_id",
        "span_id",
        "parent_id",
        "_args",
        "_ts",
        "_wall0",
        "_stacked",
        "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        host: Any,
        trace_id: Optional[str],
        span_id: str,
        parent_id: Optional[str],
        args: Dict[str, Any],
    ):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.host = host
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self._args = args
        self._ts = tracer._clock()
        self._wall0 = time.perf_counter_ns()
        self._stacked = False
        self._ended = False

    def add(self, **extra: Any) -> None:
        """Attach attributes to the span (advisory; merged into ``args``)."""
        self._args.update(extra)

    def context(self) -> TraceContext:
        """The ``(trace_id, span_id)`` tuple children link against."""
        return (self.trace_id or self.span_id, self.span_id)

    def end(self, **extra: Any) -> None:
        """Finish the span (idempotent); records it with the tracer."""
        if self._ended:
            return
        self._ended = True
        if extra:
            self._args.update(extra)
        self._tracer._finish(self)

    def __enter__(self) -> "Span":
        self._stacked = True
        self._tracer._stack.append(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self.end()


class Tracer:
    """Collects spans for one simulation process (or shard worker).

    ``clock`` supplies simulated time (installed by the owning network once
    its simulator exists); ``shard`` tags every record so cross-shard
    merges stay deterministic.  Aggregates — per ``(cat, name)`` span
    counts and advisory wall time — are exact even past ``max_spans``.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        shard: int = 0,
        max_spans: int = DEFAULT_MAX_SPANS,
    ):
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.shard = shard
        self.max_spans = max_spans
        self.spans: List[SpanRecord] = []
        self.dropped_spans = 0
        #: (cat, name) -> [span count, advisory wall ns]
        self._aggregates: Dict[Tuple[str, str], List[int]] = {}
        self._stack: List[Span] = []
        self._next_span = 0
        self._next_trace = 0
        self._next_record = 0

    # ------------------------------------------------------------------ #
    # span creation
    # ------------------------------------------------------------------ #
    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def span(
        self,
        name: str,
        cat: str = "",
        host: Any = None,
        trace: Optional[TraceContext] = None,
        **args: Any,
    ) -> Span:
        """A context-managed span; nests under the enclosing span."""
        return self._open(name, cat, host, trace, args)

    def begin(
        self,
        name: str,
        cat: str = "",
        host: Any = None,
        trace: Optional[TraceContext] = None,
        **args: Any,
    ) -> Span:
        """An explicitly-ended span for work that outlives the call frame.

        Identical to :meth:`span` except the caller must invoke
        :meth:`Span.end` (typically from a continuation); it still inherits
        the enclosing stacked span as parent unless ``trace`` says
        otherwise.
        """
        return self._open(name, cat, host, trace, args)

    def _open(
        self,
        name: str,
        cat: str,
        host: Any,
        trace: Optional[TraceContext],
        args: Dict[str, Any],
    ) -> Span:
        self._next_span += 1
        span_id = f"s{self.shard}.{self._next_span}"
        trace_id: Optional[str] = None
        parent_id: Optional[str] = None
        if trace is not None:
            trace_id, parent_id = trace[0], trace[1]
        elif self._stack:
            parent = self._stack[-1]
            trace_id, parent_id = parent.trace_id, parent.span_id
        return Span(self, name, cat, host, trace_id, span_id, parent_id, args)

    def new_trace(self) -> str:
        """A fresh trace id (one per root query / logical request)."""
        self._next_trace += 1
        return f"t{self.shard}.{self._next_trace}"

    def request(
        self,
        name: str,
        cat: str = "service",
        host: Any = None,
        **args: Any,
    ) -> Span:
        """A context-managed root span in a fresh trace.

        The query service wraps every wire request in one of these, so
        everything the engine emits while handling the request — query
        resolution rounds, rule firings, cache probes — nests under one
        per-request trace id instead of the caller's ambient span stack.
        """
        return self._open(name, cat, host, (self.new_trace(), None), args)

    # ------------------------------------------------------------------ #
    # record collection
    # ------------------------------------------------------------------ #
    def _finish(self, span: Span) -> None:
        wall_ns = time.perf_counter_ns() - span._wall0
        key = (span.cat, span.name)
        aggregate = self._aggregates.get(key)
        if aggregate is None:
            self._aggregates[key] = [1, wall_ns]
        else:
            aggregate[0] += 1
            aggregate[1] += wall_ns
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        end_ts = self._clock()
        self._next_record += 1
        self.spans.append(
            SpanRecord(
                name=span.name,
                cat=span.cat,
                ts=span._ts,
                dur=max(end_ts - span._ts, 0.0),
                host=span.host,
                shard=self.shard,
                seq=self._next_record,
                trace_id=span.trace_id,
                span_id=span.span_id,
                parent_id=span.parent_id,
                wall_ns=wall_ns,
                args=tuple(sorted(span._args.items())),
            )
        )

    # ------------------------------------------------------------------ #
    # merging / export
    # ------------------------------------------------------------------ #
    def export_state(self) -> Tuple[Tuple[SpanRecord, ...], Dict[Tuple[str, str], Tuple[int, int]], int]:
        """Picklable state shipped from a shard worker to the driver."""
        return (
            tuple(self.spans),
            {key: (value[0], value[1]) for key, value in self._aggregates.items()},
            self.dropped_spans,
        )

    def absorb(
        self,
        state: Tuple[Iterable[SpanRecord], Dict[Tuple[str, str], Tuple[int, int]], int],
    ) -> None:
        """Merge another tracer's exported state (cross-shard trace merge)."""
        records, aggregates, dropped = state
        self.spans.extend(records)
        for key, (count, wall_ns) in sorted(aggregates.items()):
            aggregate = self._aggregates.get(key)
            if aggregate is None:
                self._aggregates[key] = [count, wall_ns]
            else:
                aggregate[0] += count
                aggregate[1] += wall_ns
        self.dropped_spans += dropped

    def sorted_spans(self) -> List[SpanRecord]:
        """Records in deterministic ``(sim time, shard, seq)`` order.

        The same (time, key)-style ordering the sharded engine uses for
        envelope exchange: independent of which shard's records were
        absorbed first.
        """
        return sorted(self.spans, key=lambda record: (record.ts, record.shard, record.seq))

    def phase_aggregates(self) -> Dict[str, Dict[str, Any]]:
        """Per-span-name totals: count and advisory wall milliseconds."""
        out: Dict[str, Dict[str, Any]] = {}
        for (cat, name), (count, wall_ns) in sorted(self._aggregates.items()):
            entry = out.setdefault(name, {"cat": cat, "count": 0, "wall_ms": 0.0})
            entry["count"] += count
            entry["wall_ms"] = round(entry["wall_ms"] + wall_ns / 1e6, 3)
        return out

    def __len__(self) -> int:
        return len(self.spans)
