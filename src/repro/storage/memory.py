"""In-RAM relation storage: interned-row tables, catalogs, MemoryBackend.

Each node in the network owns a :class:`Catalog` of :class:`Table` objects.
A table stores only the tuples whose location specifier equals the owning
node's address — this is the horizontal partitioning described throughout
the ExSPAN paper (e.g. the ``prov`` relation is "distributed across nodes,
partitioned based on the location specifier Loc").

Tables implement *derivation counting*: inserting an already-present fact
increments its count instead of duplicating it, and deleting decrements the
count, only removing the fact when the count reaches zero.  This is the
standard bookkeeping used by the pipelined semi-naive (PSN) evaluation to
handle tuples with multiple derivations.

Tables optionally declare primary-key positions.  When a new fact shares the
primary key of an existing fact with different non-key attributes, the old
fact is *replaced* (an update), which mirrors RapidNet's ``materialize``
semantics and is relied upon by routing tables such as ``bestHop``.

Rows are *interned*: each table hash-conses its stored tuples into one
canonical :class:`InternedRow` per distinct value tuple.  An interned row
caches its hash after the first computation, so the row dict, the
primary-key map and every secondary index stop re-hashing the same tuple on
each insert, delete and probe; sharing one object also makes the dict
equality checks on those structures identity hits.  The pool only holds
live rows (entries are dropped when the last derivation disappears), so its
memory is bounded by the table's current cardinality.

This module is the storage engine's in-RAM tier.  It used to live at
``repro.datalog.catalog``, which now re-exports it; every backend —
including the persistent ones — keeps this tier as the authoritative copy
consulted by evaluation, and :class:`MemoryBackend` is the backend that
adds nothing on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..datalog.ast import Fact, TableDecl
from ..datalog.errors import SchemaError
from .backend import StorageBackend

__all__ = [
    "InternedRow",
    "Table",
    "Catalog",
    "InsertOutcome",
    "DeleteOutcome",
    "freeze_value",
    "MemoryBackend",
]


class InternedRow(tuple):
    """A hash-consed table row: a tuple whose hash is computed once.

    Instances are created only by :meth:`Table.insert`, so at most one
    exists per distinct live row of a table.  Equality, ordering, repr and
    JSON serialization are inherited from ``tuple`` unchanged — interning
    is invisible to everything except the hash profile.  The canonical
    object also carries the row's *derivation count* (``count``), which
    lets insert/delete bump a plain attribute instead of rewriting a dict
    entry.
    """

    # Lazily cached in the instance dict on first hash (tuple subclasses
    # cannot carry nonempty __slots__, so the per-instance dict is the one
    # canonical copy's storage cost — shared with ``count``).
    _cached_hash: Optional[int] = None
    #: Derivation count maintained by the owning Table.
    count: int = 0

    def __hash__(self) -> int:
        cached = self._cached_hash
        if cached is None:
            cached = tuple.__hash__(self)
            self._cached_hash = cached
        return cached


@dataclass(frozen=True, slots=True)
class InsertOutcome:
    """Result of a table insert.

    ``became_visible`` is True when the fact was not previously present
    (count went 0 -> 1) and therefore must be propagated to dependent rules.
    ``replaced`` holds a fact evicted by primary-key update semantics, which
    the engine must propagate as a deletion.
    """

    became_visible: bool
    replaced: Optional[Fact] = None


@dataclass(frozen=True, slots=True)
class DeleteOutcome:
    """Result of a table delete.

    ``became_invisible`` is True when the count reached zero and the fact was
    actually removed, requiring downstream deletion propagation.
    """

    became_invisible: bool
    was_present: bool


# Immutable outcome singletons for the overwhelmingly common cases (one
# fresh frozen-dataclass allocation per table mutation adds up at delta
# rates); only primary-key replacement still allocates.
_INSERTED_NEW = InsertOutcome(became_visible=True, replaced=None)
_INSERTED_DUP = InsertOutcome(became_visible=False, replaced=None)
_DELETED_GONE = DeleteOutcome(became_invisible=True, was_present=True)
_DELETED_KEPT = DeleteOutcome(became_invisible=False, was_present=True)
_DELETED_ABSENT = DeleteOutcome(became_invisible=False, was_present=False)


class Table:
    """A horizontally-partitioned relation fragment stored at one node."""

    def __init__(
        self,
        name: str,
        arity: Optional[int] = None,
        key_positions: Sequence[int] = (),
        location_index: int = 0,
    ):
        self.name = name
        self.arity = arity
        self.key_positions: Tuple[int, ...] = tuple(key_positions)
        self.location_index = location_index
        self._key_getter = (
            _subkey_getter(self.key_positions) if self.key_positions else None
        )
        # frozen tuple -> canonical InternedRow (which carries .count).
        # One dict serves as row set, intern pool and count store at once.
        self._rows: Dict[Tuple[Any, ...], InternedRow] = {}
        # primary key -> full tuple (only when key_positions declared)
        self._by_key: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
        # (positions) -> {values -> ordered set (dict) of full tuples}.
        # Buckets are insertion-ordered dicts, NOT sets: indexed lookups must
        # enumerate rows in the same order a full scan of ``_rows`` would, so
        # that planned and naive evaluation break equal-cost ties (e.g. two
        # best paths of the same length) identically.
        self._indexes: Dict[
            Tuple[int, ...], Dict[Tuple[Any, ...], Dict[Tuple[Any, ...], None]]
        ] = {}
        # Maintenance view of _indexes: (max position, key getter, index
        # dict) triples, so insert/delete skip per-row position loops.
        self._index_list: List[
            Tuple[int, Callable[[Sequence[Any]], Tuple[Any, ...]], Dict]
        ] = []

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _check_arity(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        if type(values) is InternedRow:
            row: Tuple[Any, ...] = values
        else:
            row = tuple(map(_freeze, values))
        if self.arity is None:
            self.arity = len(row)
        elif len(row) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} expects arity {self.arity}, "
                f"got {len(row)}"
            )
        return row

    def _key_of(self, row: Tuple[Any, ...]) -> Optional[Tuple[Any, ...]]:
        getter = self._key_getter
        if getter is None:
            return None
        return getter(row)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, values: Sequence[Any]) -> InsertOutcome:
        """Insert one derivation of *values*; see :class:`InsertOutcome`."""
        row = self._check_arity(values)
        interned = self._rows.get(row)
        if interned is not None:
            interned.count += 1
            return _INSERTED_DUP
        # Always a fresh canonical object: the incoming row may be another
        # table's interned row, whose derivation count must not be touched.
        interned = InternedRow(row)
        interned.count = 1
        replaced: Optional[Fact] = None
        key = self._key_of(interned)
        if key is not None:
            existing = self._by_key.get(key)
            if existing is not None and existing != interned:
                # primary-key update: evict the old row entirely
                self._remove_row(existing)
                replaced = Fact(self.name, existing, self.location_index)
            self._by_key[key] = interned
        self._rows[interned] = interned
        self._index_add(interned)
        if replaced is None:
            return _INSERTED_NEW
        return InsertOutcome(became_visible=True, replaced=replaced)

    def delete(self, values: Sequence[Any]) -> DeleteOutcome:
        """Remove one derivation of *values*; see :class:`DeleteOutcome`."""
        row = self._check_arity(values)
        interned = self._rows.get(row)
        if interned is None:
            return _DELETED_ABSENT
        if interned.count <= 1:
            self._remove_row(interned)
            return _DELETED_GONE
        interned.count -= 1
        return _DELETED_KEPT

    def apply_delta_block(self, deltas: Sequence[Any]) -> List[Any]:
        """Apply a columnar block of deltas in order; per-delta fire codes.

        Semantically one :meth:`insert` / :meth:`delete` per delta (REFRESH
        is a storage no-op), with the per-call overhead — method dispatch,
        outcome allocation, unconditional value freezing — amortized over
        the block.  Returns one code per delta telling the caller what to
        propagate: ``None`` (nothing became visible/invisible), ``True``
        (the delta's own fact must fire), or an evicted :class:`Fact`
        (primary-key replacement: fire its DELETE, then the delta).

        The freeze fast path relies on equality, not identity: a row whose
        values are already hashable (no embedded lists/sets) looks up and
        stores identically to its frozen image, because ``_freeze`` only
        rewrites containers into equal tuples.
        """
        results: List[Any] = []
        append = results.append
        rows = self._rows
        rows_get = rows.get
        key_getter = self._key_getter
        by_key = self._by_key
        index_list = self._index_list
        name = self.name
        location_index = self.location_index
        for delta in deltas:
            action = delta.action
            if action == "insert":
                # Kernel-prefrozen rows (see Delta.frozen) skip the freeze;
                # getattr-with-default also absorbs deltas minted through
                # Delta.__new__ by the per-tuple emitters, whose slot is
                # never assigned.
                row = getattr(delta, "frozen", None)
                if row is None:
                    values = delta.fact.values
                    if type(values) is InternedRow:
                        row = values
                    else:
                        # Branchless freeze: per-value class checks beat the
                        # try-hash-except dance because list-carrying rows
                        # (paths, VID buffers) are common on this path and
                        # each would pay a raised TypeError.  Lists freeze
                        # shallowly (one C-level tuple() — they are flat
                        # scalar sequences in practice); a nested container
                        # surfaces as TypeError at the lookup and reruns the
                        # recursive deep freeze.
                        row = tuple(
                            [
                                v
                                if v.__class__ is str or v.__class__ is int
                                else tuple(v)
                                if v.__class__ is list
                                else _freeze(v)
                                for v in values
                            ]
                        )
                try:
                    interned = rows_get(row)
                except TypeError:
                    row = tuple([_freeze(v) for v in delta.fact.values])
                    interned = rows_get(row)
                if interned is not None:
                    interned.count += 1
                    append(None)
                    continue
                arity = self.arity
                if arity is None:
                    self.arity = len(row)
                elif len(row) != arity:
                    raise SchemaError(
                        f"relation {name!r} expects arity {arity}, "
                        f"got {len(row)}"
                    )
                interned = InternedRow(row)
                interned.count = 1
                code: Any = True
                if key_getter is not None:
                    key = key_getter(interned)
                    existing = by_key.get(key)
                    if existing is not None and existing != interned:
                        self._remove_row(existing)
                        code = Fact(name, existing, location_index)
                    by_key[key] = interned
                rows[interned] = interned
                length = len(interned)
                for max_position, getter, index in index_list:
                    if max_position < length:
                        index.setdefault(getter(interned), {})[interned] = None
                append(code)
            elif action == "delete":
                row = getattr(delta, "frozen", None)
                if row is None:
                    values = delta.fact.values
                    if type(values) is InternedRow:
                        row = values
                    else:
                        row = tuple(
                            [
                                v
                                if v.__class__ is str or v.__class__ is int
                                else tuple(v)
                                if v.__class__ is list
                                else _freeze(v)
                                for v in values
                            ]
                        )
                arity = self.arity
                if arity is None:
                    self.arity = len(row)
                elif len(row) != arity:
                    raise SchemaError(
                        f"relation {name!r} expects arity {arity}, "
                        f"got {len(row)}"
                    )
                try:
                    interned = rows_get(row)
                except TypeError:
                    row = tuple([_freeze(v) for v in delta.fact.values])
                    interned = rows_get(row)
                if interned is None:
                    append(None)
                elif interned.count <= 1:
                    self._remove_row(interned)
                    append(True)
                else:
                    interned.count -= 1
                    append(None)
            else:  # REFRESH: no storage effect
                append(None)
        return results

    def delete_all(self, values: Sequence[Any]) -> DeleteOutcome:
        """Remove every derivation of *values* regardless of count."""
        row = self._check_arity(values)
        if row not in self._rows:
            return _DELETED_ABSENT
        self._remove_row(row)
        return _DELETED_GONE

    def _remove_row(self, row: Tuple[Any, ...]) -> None:
        self._rows.pop(row, None)
        key = self._key_of(row)
        if key is not None and self._by_key.get(key) == row:
            del self._by_key[key]
        self._index_remove(row)

    def clear(self) -> None:
        self._rows.clear()
        self._by_key.clear()
        self._indexes.clear()
        self._index_list.clear()

    # ------------------------------------------------------------------ #
    # restore
    # ------------------------------------------------------------------ #
    def load_row(self, values: Sequence[Any], count: int) -> None:
        """Checkpoint-restore entry point: install one row with its count.

        Rows must be loaded in their original insertion order — ``_rows``
        and every index bucket are insertion-ordered dicts, and planned
        evaluation's equal-cost tie-breaks depend on that order — so a
        restored table enumerates identically to the table it snapshots.
        Bypasses primary-key replacement (a checkpoint never contains two
        rows with the same key) and fires no listeners.
        """
        outcome = self.insert(values)
        if not outcome.became_visible:
            raise SchemaError(
                f"relation {self.name!r}: duplicate checkpoint row {values!r}"
            )
        self._rows[self._check_arity(values)].count = int(count)

    # ------------------------------------------------------------------ #
    # indexes
    # ------------------------------------------------------------------ #
    def _index_add(self, row: Tuple[Any, ...]) -> None:
        length = len(row)
        for max_position, getter, index in self._index_list:
            if max_position >= length:
                continue  # row too short for this index; it can never match
            index.setdefault(getter(row), {})[row] = None

    def _index_remove(self, row: Tuple[Any, ...]) -> None:
        length = len(row)
        for max_position, getter, index in self._index_list:
            if max_position >= length:
                continue
            key = getter(row)
            bucket = index.get(key)
            if bucket is not None:
                bucket.pop(row, None)
                if not bucket:
                    del index[key]

    def _ensure_index(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[Any, ...], Dict[Tuple[Any, ...], None]]:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            getter = _subkey_getter(positions)
            max_position = positions[-1] if positions else -1
            for row in self._rows:
                if max_position >= len(row):
                    continue
                index.setdefault(getter(row), {})[row] = None
            self._indexes[positions] = index
            self._index_list.append((max_position, getter, index))
        return index

    def ensure_index(self, positions: Sequence[int]) -> None:
        """Materialize a secondary hash index over *positions* now.

        The index is maintained incrementally by every subsequent insert and
        delete.  The query planner registers the indexes its compiled plans
        will use through this entry point so the first delta does not pay a
        lazy build inside the evaluation loop.
        """
        canonical = tuple(sorted(set(int(p) for p in positions)))
        if not canonical:
            return
        if canonical[0] < 0:
            raise SchemaError(
                f"relation {self.name!r}: negative index position {canonical[0]}"
            )
        if self.arity is not None and canonical[-1] >= self.arity:
            raise SchemaError(
                f"relation {self.name!r} has arity {self.arity}; cannot index "
                f"position {canonical[-1]}"
            )
        self._ensure_index(canonical)

    def has_index(self, positions: Sequence[int]) -> bool:
        return tuple(sorted(set(positions))) in self._indexes

    def index_position_sets(self) -> List[Tuple[int, ...]]:
        """The position sets currently indexed, sorted (for explain/stats)."""
        return sorted(self._indexes)

    def index_size(self, positions: Sequence[int]) -> int:
        """Number of rows held by the index over *positions* (0 if absent)."""
        index = self._indexes.get(tuple(sorted(set(positions))))
        if not index:
            return 0
        return sum(len(bucket) for bucket in index.values())

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, values: Sequence[Any]) -> bool:
        return tuple(_freeze(v) for v in values) in self._rows

    def count(self, values: Sequence[Any]) -> int:
        """Return the derivation count for *values* (0 if absent)."""
        interned = self._rows.get(tuple(_freeze(v) for v in values))
        return interned.count if interned is not None else 0

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over distinct rows (ignoring derivation counts)."""
        return iter(list(self._rows))

    def rows_list(self) -> List[Tuple[Any, ...]]:
        """The distinct rows as a list (compiled full-scan entry point)."""
        return list(self._rows)

    def rows_with_counts(self) -> List[Tuple[Tuple[Any, ...], int]]:
        """``(row, derivation count)`` pairs in insertion order.

        The checkpoint serializer uses this: counts are part of PSN state
        (a restored table must survive the same number of deletions), and
        insertion order is part of determinism (see :meth:`load_row`).
        """
        return [(row, row.count) for row in self._rows.values()]

    def facts(self) -> Iterator[Fact]:
        for row in self.rows():
            yield Fact(self.name, row, self.location_index)

    def lookup(self, bound: Dict[int, Any]) -> Iterator[Tuple[Any, ...]]:
        """Yield rows whose attributes match the {position: value} constraints.

        Uses (and lazily builds) a hash index over the constrained positions
        whenever at least one position is constrained.
        """
        if not bound:
            yield from self.rows()
            return
        positions = tuple(sorted(bound))
        index = self._ensure_index(positions)
        key = tuple(_freeze(bound[i]) for i in positions)
        for row in list(index.get(key, ())):
            yield row

    def probe(
        self, positions: Tuple[int, ...], key: Tuple[Any, ...]
    ) -> Optional[Dict[Tuple[Any, ...], None]]:
        """The index bucket for *key* over *positions* (``None`` when empty).

        The compiled execution path uses this instead of :meth:`lookup`: the
        caller has already computed the canonical position tuple and the
        frozen key, so the bucket (an insertion-ordered dict of rows) is
        returned directly with no per-row generator machinery.  Callers must
        not mutate the table while iterating the bucket — rule evaluation
        never does (all table mutation happens between deltas).
        """
        index = self._indexes.get(positions)
        if index is None:
            index = self._ensure_index(positions)
        return index.get(key)

    def probe_index(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[Any, ...], Dict[Tuple[Any, ...], None]]:
        """The raw hash index over *positions* (built on first use).

        Returned for repeated probing against a table known to be stable;
        the columnar kernels hoist ``index.get`` out of their batch loops.
        Callers must not mutate the table while holding the reference.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = self._ensure_index(positions)
        return index

    def probe_many(
        self, positions: Tuple[int, ...], keys: Sequence[Tuple[Any, ...]]
    ) -> List[Optional[Dict[Tuple[Any, ...], None]]]:
        """Bulk index probe: the per-key bucket (or ``None``) for each key.

        One C-speed ``map`` over the whole key column instead of a Python
        call per probe — the probe half of the columnar hash-join kernels.
        Keys must already be frozen in canonical (sorted-position) order,
        exactly as :meth:`probe` expects them.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = self._ensure_index(positions)
        return list(map(index.get, keys))

    def column(self, position: int) -> List[Any]:
        """Extract one attribute column across the current rows."""
        return [row[position] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={len(self._rows)})"


def _subkey_getter(
    positions: Sequence[int],
) -> Callable[[Sequence[Any]], Tuple[Any, ...]]:
    """A C-speed ``row -> (row[p0], row[p1], ...)`` key extractor.

    Single-position getters are wrapped so every key stays a tuple (index
    and primary-key dictionaries key on tuples regardless of width).
    """
    if len(positions) == 1:
        position = positions[0]
        return lambda row: (row[position],)
    if not positions:
        return lambda row: ()
    return itemgetter(*positions)


def _freeze(value: Any) -> Any:
    """Convert mutable containers to hashable equivalents for storage."""
    cls = value.__class__
    if cls is str or cls is int:  # the dominant row-attribute types
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    return value


#: Public alias used by the compiled execution layer (index key freezing
#: must match storage freezing exactly).
freeze_value = _freeze


class Catalog:
    """The set of tables owned by a single node."""

    def __init__(self, declarations: Iterable[TableDecl] = ()):
        self._tables: Dict[str, Table] = {}
        for decl in declarations:
            self.declare(decl)

    def declare(self, decl: TableDecl) -> Table:
        table = Table(decl.name, decl.arity, decl.key_positions)
        self._tables[decl.name] = table
        return table

    def table(self, name: str, arity: Optional[int] = None) -> Table:
        """Return the table for *name*, creating it on first use."""
        table = self._tables.get(name)
        if table is None:
            table = Table(name, arity)
            self._tables[name] = table
        return table

    def get(self, name: str) -> Optional[Table]:
        """Return the table for *name* without creating it (None if absent).

        The planner's statistics use this: costing a rule must not litter
        the catalog with empty tables for relations (e.g. transient events)
        that evaluation itself would never materialize.
        """
        return self._tables.get(name)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def names(self) -> List[str]:
        return sorted(self._tables)

    def total_rows(self) -> int:
        return sum(len(table) for table in self._tables.values())

    def __getitem__(self, name: str) -> Table:
        return self.table(name)

    def __contains__(self, name: str) -> bool:
        return name in self._tables


class MemoryBackend(StorageBackend):
    """The default backend: the in-RAM tier and nothing else.

    Registers no listeners and shadows no state, so a network running on
    ``MemoryBackend`` executes the exact instruction stream it executed
    before the storage abstraction existed — the bit-identity guarantee the
    equivalence suite and the CI baseline gates enforce.
    """

    kind = "memory"
