"""The pluggable storage-backend interface and the process-wide default.

Every :class:`~repro.core.api.ExspanNetwork` owns exactly one
:class:`StorageBackend`.  The backend does **not** sit on the delta hot
path: the authoritative, always-consulted copy of every relation stays the
in-RAM interned-row :class:`~repro.storage.memory.Table`.  A backend is the
*durability and analytics* layer underneath it — it observes visibility
transitions through the engine's update-listener hook and may mirror them
to disk (write-behind), answer SQL-compiled provenance queries, and carry
checkpoint/restore bookkeeping.

Backend selection follows the execution-environment knob convention
established by ``--shards`` and ``--pipeline``: the spec is never part of a
trial fingerprint, and results (fixpoints, VIDs, prov/ruleExec rows,
annotations, planner/traffic counters) must be byte-identical under any
backend.  ``MemoryBackend`` registers no listeners at all, so the default
configuration is bit-identical to the pre-refactor engine by construction.

Specs
-----
``"memory"``
    RAM only (the default).
``"sqlite"``
    Write-behind sqlite (WAL) in an ephemeral temporary file, removed on
    :meth:`StorageBackend.close`.
``"sqlite:<path>"``
    Write-behind sqlite at an explicit path.  Sharded workers suffix the
    path with ``.shard<N>`` so forked processes never share one WAL.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "STORAGE_BACKENDS",
    "StorageBackend",
    "StorageError",
    "default_storage",
    "make_backend",
    "parse_storage_spec",
    "set_default_storage",
    "validate_storage_spec",
]

#: The backend kinds a spec may name.
STORAGE_BACKENDS: Tuple[str, ...] = ("memory", "sqlite")


class StorageError(RuntimeError):
    """A storage backend rejected an operation (bad spec, no SQL support)."""


def parse_storage_spec(spec: str) -> Tuple[str, Optional[str]]:
    """Split a storage spec into ``(kind, path)``; raise on a bad spec."""
    if not isinstance(spec, str) or not spec:
        raise StorageError(f"storage spec must be a non-empty string, got {spec!r}")
    kind, separator, path = spec.partition(":")
    if kind not in STORAGE_BACKENDS:
        raise StorageError(
            f"unknown storage backend {kind!r} (expected one of {STORAGE_BACKENDS})"
        )
    if not separator:
        return kind, None
    if kind != "sqlite":
        raise StorageError(f"storage backend {kind!r} does not take a path")
    if not path:
        raise StorageError("sqlite storage spec has an empty path")
    return kind, path


def validate_storage_spec(spec: str) -> str:
    """Validate *spec* and return it unchanged (config-layer entry point)."""
    parse_storage_spec(spec)
    return spec


# Process-wide default, mirroring ``default_pipeline``/``set_default_pipeline``
# in the engine: CLI layers set it once per process (and per pool worker) so
# trial functions never carry the knob in their fingerprinted kwargs.
_DEFAULT_STORAGE = "memory"


def default_storage() -> str:
    """The storage spec used when a network's config leaves it unset."""
    return _DEFAULT_STORAGE


def set_default_storage(spec: Optional[str]) -> str:
    """Set the process-wide default storage spec (``None`` resets to memory)."""
    global _DEFAULT_STORAGE
    _DEFAULT_STORAGE = validate_storage_spec(spec) if spec is not None else "memory"
    return _DEFAULT_STORAGE


class StorageBackend:
    """Base class for storage backends (one instance per network).

    Subclasses override the hooks they need; the base class implements the
    memory-resident behaviour so :class:`MemoryBackend` is nearly empty.
    """

    #: Spec kind this backend implements.
    kind = "abstract"
    #: True when the backend mirrors state to durable media.
    persistent = False
    #: True when :meth:`sql_query` is available.
    supports_sql = False
    #: Filesystem path of the durable store, when there is one.
    path: Optional[str] = None

    def __init__(self) -> None:
        # address -> (engine, provenance store), in attach order.
        self.nodes: Dict[Any, Tuple[Any, Any]] = {}
        self.counters: Dict[str, int] = {
            "journal_appends": 0,
            "flushes": 0,
            "flushed_ops": 0,
            "sql_queries": 0,
            "checkpoints": 0,
            "restores": 0,
        }

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def attach_node(self, address: Any, engine: Any, store: Any) -> None:
        """Register one node's engine + provenance store with the backend.

        Called once per node by ``ExspanNetwork._build_node``.  Persistent
        backends additionally subscribe to the engine's update listener
        here; the base class records the node and touches nothing else, so
        attaching the memory backend cannot perturb evaluation.
        """
        self.nodes[address] = (engine, store)

    def close(self) -> None:
        """Release resources (connections, ephemeral files)."""

    # ------------------------------------------------------------------ #
    # durability
    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Drain the write-behind journal; return the operation count."""
        return 0

    def record(self, address: Any, action: str, name: str, values: Any) -> None:
        """Record one visibility transition outside the listener path.

        Checkpoint restore uses this: rows loaded at the storage layer
        bypass the engine's update listeners, so the restorer replays them
        into the backend explicitly.  No-op for memory-resident backends.
        """

    # ------------------------------------------------------------------ #
    # lookups shared by both backends (served from the attached stores)
    # ------------------------------------------------------------------ #
    def fact_for_vid(self, vid: str) -> Optional[Any]:
        """Resolve *vid* through the attached nodes' VID indexes."""
        for _, store in self.nodes.values():
            fact = store.fact_for_vid(vid)
            if fact is not None:
                return fact
        return None

    def row_count(self) -> int:
        """Total materialized rows across every attached catalog."""
        return sum(engine.catalog.total_rows() for engine, _ in self.nodes.values())

    # ------------------------------------------------------------------ #
    # SQL query path
    # ------------------------------------------------------------------ #
    def sql_query(self, kind: str, root_vid: str) -> List[Any]:
        raise StorageError(
            f"storage backend {self.kind!r} has no SQL query path "
            "(use storage='sqlite')"
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        snapshot: Dict[str, Any] = {
            "kind": self.kind,
            "persistent": self.persistent,
            "supports_sql": self.supports_sql,
            "nodes": len(self.nodes),
            "rows": self.row_count(),
        }
        if self.path is not None:
            snapshot["path"] = self.path
        snapshot.update(self.counters)
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(nodes={len(self.nodes)})"


def make_backend(spec: Optional[str] = None) -> StorageBackend:
    """Build the backend named by *spec* (``None`` means the process default)."""
    kind, path = parse_storage_spec(spec if spec is not None else default_storage())
    if kind == "memory":
        from .memory import MemoryBackend

        return MemoryBackend()
    from .sqlite import SqliteBackend

    return SqliteBackend(path)
