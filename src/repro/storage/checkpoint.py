"""Snapshot-consistent checkpoint & restore for a whole network.

A checkpoint is one canonical-JSON file capturing everything a fresh
process needs to resume a quiesced :class:`~repro.core.api.ExspanNetwork`
bit-identically:

* per node, every table's rows **in insertion order** with their PSN
  derivation counts (insertion order is part of determinism: index buckets
  and equal-cost tie-breaks enumerate in that order);
* per node, the value-provenance annotations in their canonical encoded
  form (BDDs in bottom-up node order, polynomials as expression trees);
* per node, the engine's evaluation counters (so post-restore counter
  totals match an uninterrupted run);
* the network's :class:`~repro.core.config.ExspanConfig` and the simulated
  clock.

The network must be **quiesced** (``run_until_idle``) before
checkpointing — scheduled events hold closures that cannot be serialized,
and a consistent snapshot needs an empty event queue anyway.
``ExspanNetwork.checkpoint`` enforces this.

Restore builds a *fresh* network from the same topology and program
(checkpoints deliberately do not serialize those objects — they contain
user callables), verifies the member addresses match, then loads rows at
the storage layer, re-imports annotations into the node's live annotation
policy (BDDs into the network's shared manager, not a throwaway one), and
advances the simulated clock.  VIDs and RIDs are content-derived SHA-1s,
so they come back for free with the rows.

The file is written atomically (temp file + fsync + rename): a crash at
any point leaves either the old checkpoint or the new one, never a torn
file.  Format: ``{"format": "exspan-checkpoint", "version": 1, ...}`` —
see ``docs/STORAGE.md`` for the full schema.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List

from ..datalog.ast import Fact
from .memory import freeze_value

__all__ = ["CHECKPOINT_FORMAT", "CHECKPOINT_VERSION", "save_checkpoint", "load_checkpoint", "restore_network"]

CHECKPOINT_FORMAT = "exspan-checkpoint"
CHECKPOINT_VERSION = 1


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=list)


def _address_key(address: Any) -> str:
    """Canonical string key for a node address (JSON keys must be strings)."""
    return _canonical(address)


def _snapshot_node(node: Any) -> Dict[str, Any]:
    """Serialize one node's engine state (tables, annotations, counters)."""
    from ..core.requests import encode_annotation

    engine = node.engine
    tables: Dict[str, List[Any]] = {}
    for table in engine.catalog.tables():
        rows = [[list(row), count] for row, count in table.rows_with_counts()]
        if rows or table.key_positions:
            tables[table.name] = rows
    annotations = [
        [name, list(values), encode_annotation(annotation)]
        for (name, values), annotation in engine._annotations.items()
    ]
    # Aggregate rules keep runtime state outside the tables: one value
    # multiset + emitted row per group.  Counter insertion order is
    # semantic for AGGLIST (current() expands values in first-seen order),
    # so groups and their values are serialized in iteration order.
    aggregates: Dict[str, List[Any]] = {}
    for label, compiled in engine._aggregate_rules.items():
        groups = []
        for group_key, state in compiled.groups.items():
            values = [[value, count] for value, count in state._values.items()]
            emitted = compiled.emitted.get(group_key)
            groups.append(
                [
                    list(group_key),
                    values,
                    None if emitted is None else list(emitted),
                ]
            )
        if groups:
            aggregates[label] = groups
    return {
        "tables": tables,
        "annotations": annotations,
        "aggregates": aggregates,
        "stats": {key: value for key, value in sorted(engine.stats.items())},
    }


def save_checkpoint(network: Any, path: str) -> Dict[str, Any]:
    """Write a checkpoint of the quiesced *network* to *path* atomically.

    Returns a summary dict (path, node count, byte size, simulated time).
    """
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "config": network.config.to_dict(),
        "now": network.simulator.now,
        "events_executed": network.simulator.events_executed,
        "addresses": sorted(_address_key(address) for address in network.nodes),
        "nodes": {
            _address_key(address): _snapshot_node(node)
            for address, node in network.nodes.items()
        },
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=list)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(dir=directory, prefix=".checkpoint-")
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return {
        "path": path,
        "nodes": len(network.nodes),
        "bytes": len(text) + 1,
        "now": network.simulator.now,
    }


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read and validate a checkpoint file."""
    from ..core.errors import ProvenanceError

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise ProvenanceError(f"{path}: not an ExSPAN checkpoint file")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise ProvenanceError(
            f"{path}: unsupported checkpoint version {payload.get('version')!r}"
        )
    return payload


def _decode_annotation_into(policy: Any, encoded: Dict[str, Any]) -> Any:
    """Decode an annotation *into the node's live policy* where it matters.

    BDD annotations must be re-interned in the network's shared manager
    (``decode_annotation`` would build a private throwaway manager, whose
    nodes could never merge with newly derived annotations); everything
    else round-trips through the generic decoder.
    """
    from ..core.bdd import import_bdd
    from ..core.requests import decode_annotation

    if encoded.get("kind") == "bdd" and policy is not None:
        manager = getattr(policy, "manager", None)
        if manager is not None:
            nodes = tuple(tuple(node) for node in encoded["nodes"])
            return import_bdd(manager, (encoded["root"], nodes))
    return decode_annotation(encoded)


def _load_node(node: Any, snapshot: Dict[str, Any], backend: Any) -> None:
    engine = node.engine
    address = node.address
    replay = backend.persistent
    for name, rows in snapshot["tables"].items():
        table = engine.catalog.table(name)
        for row, count in rows:
            frozen = freeze_value(tuple(row))
            table.load_row(frozen, count)
            if replay:
                # Seed the write-behind mirror: storage-level loads bypass
                # the engine listeners, so the backend journal must see the
                # restored visible set explicitly.
                backend.record(address, "insert", name, frozen)
    from ..datalog.aggregates import AggregateState

    def _shallow(values: Any) -> Any:
        # The engine normalizes group keys, aggregate values and emitted
        # rows with a *top-level-only* list->tuple conversion (inner lists
        # stay lists); mirror it exactly so restored state compares equal.
        return tuple(v if not isinstance(v, list) else tuple(v) for v in values)

    for label, groups in snapshot.get("aggregates", {}).items():
        compiled = engine._aggregate_rules[label]
        func = compiled.spec.func
        for group_key, values, emitted in groups:
            key = _shallow(group_key)
            state = AggregateState(func)
            for value, count in values:
                for _ in range(int(count)):
                    state.insert(value)
            compiled.groups[key] = state
            if emitted is not None:
                compiled.emitted[key] = _shallow(emitted)
    policy = engine.annotation_policy
    for name, values, encoded in snapshot["annotations"]:
        key = (name, freeze_value(tuple(values)))
        engine._annotations[key] = _decode_annotation_into(policy, encoded)
    for key, value in snapshot["stats"].items():
        engine.stats[key] = value


def restore_network(
    path: str,
    topology: Any,
    program: Any,
    *,
    config: Any = None,
    storage: Any = None,
    tracer: Any = None,
) -> Any:
    """Rebuild a network from a checkpoint written by :func:`save_checkpoint`.

    *topology* and *program* must be the ones the checkpointed network was
    built from (the member addresses are verified; VIDs would diverge
    loudly on a mismatched program).  ``config`` overrides the saved
    config wholesale; ``storage`` overrides just the storage spec (e.g.
    restore a memory-backend checkpoint onto sqlite or vice versa — the
    backend is an execution-environment knob, never part of the state).
    """
    from ..core.api import ExspanNetwork
    from ..core.config import ExspanConfig
    from ..core.errors import ProvenanceError

    payload = load_checkpoint(path)
    if config is None:
        saved = dict(payload["config"])
        if storage is not None:
            saved["storage"] = storage
        elif "storage" in saved:
            # The saved spec may point at another process's database; only
            # reuse it when the caller asks for nothing else.
            saved["storage"] = payload["config"].get("storage")
        config = ExspanConfig.from_dict(saved)
    network = ExspanNetwork(topology, program, config=config, tracer=tracer)
    expected = payload["addresses"]
    actual = sorted(_address_key(address) for address in network.nodes)
    if actual != expected:
        raise ProvenanceError(
            f"{path}: checkpoint was taken on a different topology "
            f"({len(expected)} node(s) vs {len(actual)})"
        )
    backend = network.storage
    for address, node in network.nodes.items():
        snapshot = payload["nodes"][_address_key(address)]
        _load_node(node, snapshot, backend)
    if backend.persistent:
        backend.flush()
    backend.counters["restores"] += 1
    # The queue is empty (the checkpoint was quiesced), so run(until=...)
    # would return without touching the clock; set it directly along with
    # the executed-event counter so post-restore timings and stats line up
    # with the uninterrupted run.
    network.simulator._now = payload["now"]
    network.simulator.events_executed = payload["events_executed"]
    return network


def checkpoint_fact_key(fact: Fact) -> Any:  # pragma: no cover - debug helper
    """The canonical row a fact serializes to (debugging aid)."""
    return freeze_value(tuple(fact.values))
