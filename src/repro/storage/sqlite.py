"""Write-behind sqlite backend with an interval-encoded provenance DAG.

:class:`SqliteBackend` mirrors every visibility transition of every node
onto one sqlite database (WAL mode) — base and derived tuples, the
``prov``/``ruleExec`` relations, and the VID index (each mirrored tuple row
carries its content-derived VID).  The mirror is *write-behind*: the
engine's update listener only appends to an in-RAM journal, and
:meth:`SqliteBackend.flush` drains the journal in one WAL transaction, so
the batched/columnar delta hot paths keep their in-RAM speed and the
database lags the engine by at most one un-flushed journal.

On top of the mirrored ``prov``/``ruleExec`` rows the backend maintains a
**pre/post-order interval encoding** of the provenance DAG (the
XPath-accelerator trick): a DFS spanning forest assigns every tuple vertex
a ``[pre, post]`` interval such that tree descendants satisfy
``child.pre BETWEEN parent.pre AND parent.post`` — one indexed range scan —
and the residual non-tree DAG edges (shared sub-derivations, cycles) are
kept in ``extra_edges`` and closed with a recursive CTE whose ``UNION``
dedup guarantees termination on cyclic reachability.  Reachability,
reachable-base-tuple, node-set and subgraph queries all compile onto this
encoding, giving a second, independent oracle for the distributed query
engine (cross-checked in ``tests/test_storage_sql.py``).

The schema (see also ``docs/STORAGE.md``)::

    meta(key TEXT PRIMARY KEY, value TEXT)
    tuples(id INTEGER PRIMARY KEY, node TEXT, name TEXT, row TEXT, vid TEXT)
    prov(id INTEGER PRIMARY KEY, loc TEXT, vid TEXT, rid TEXT, rloc TEXT)
    rule_exec(id INTEGER PRIMARY KEY, rloc TEXT, rid TEXT, rule TEXT,
              inputs TEXT)
    intervals(vid TEXT PRIMARY KEY, pre INTEGER, post INTEGER)
    extra_edges(parent_pre INTEGER, child_vid TEXT)

Values, rows and node addresses are stored as canonical JSON
(sorted keys, compact separators) so the database contents are a
deterministic function of the engine state.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..datalog.ast import Fact, is_event_predicate
from .backend import StorageBackend, StorageError
from .memory import freeze_value

__all__ = ["SqliteBackend", "SQL_QUERY_KINDS"]

#: Query kinds :meth:`SqliteBackend.sql_query` compiles.
SQL_QUERY_KINDS = ("reachable", "reachable_base", "nodeset", "derivability", "subgraph")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta(
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tuples(
    id INTEGER PRIMARY KEY,
    node TEXT NOT NULL,
    name TEXT NOT NULL,
    row TEXT NOT NULL,
    vid TEXT NOT NULL,
    UNIQUE(node, name, row)
);
CREATE INDEX IF NOT EXISTS tuples_vid ON tuples(vid);
CREATE TABLE IF NOT EXISTS prov(
    id INTEGER PRIMARY KEY,
    loc TEXT NOT NULL,
    vid TEXT NOT NULL,
    rid TEXT,
    rloc TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS prov_vid ON prov(vid);
CREATE TABLE IF NOT EXISTS rule_exec(
    id INTEGER PRIMARY KEY,
    rloc TEXT NOT NULL,
    rid TEXT NOT NULL,
    rule TEXT NOT NULL,
    inputs TEXT NOT NULL,
    UNIQUE(rloc, rid)
);
CREATE INDEX IF NOT EXISTS rule_exec_rid ON rule_exec(rid);
CREATE TABLE IF NOT EXISTS intervals(
    vid TEXT PRIMARY KEY,
    pre INTEGER NOT NULL,
    post INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS intervals_pre ON intervals(pre);
CREATE TABLE IF NOT EXISTS extra_edges(
    parent_pre INTEGER NOT NULL,
    child_vid TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS extra_edges_parent ON extra_edges(parent_pre);
"""

#: Recursive interval-closure over the DAG: seed with the root's interval,
#: then repeatedly pull in the intervals of children reached through
#: non-tree edges whose parent lies inside an already-entered interval.
#: ``UNION`` (not ``UNION ALL``) dedups entries, so cyclic extra edges
#: terminate.  The final reachable set is every vertex whose ``pre`` falls
#: inside an entered interval — indexed range scans on ``intervals_pre``.
_REACHABLE_CTE = """
WITH RECURSIVE entry(pre, post) AS (
    SELECT pre, post FROM intervals WHERE vid = :root
    UNION
    SELECT i.pre, i.post
    FROM entry
    JOIN extra_edges e ON e.parent_pre BETWEEN entry.pre AND entry.post
    JOIN intervals i ON i.vid = e.child_vid
),
reach(vid) AS (
    SELECT DISTINCT t.vid
    FROM intervals t
    JOIN entry ON t.pre BETWEEN entry.pre AND entry.post
)
"""


def _encode(value: Any) -> str:
    """Canonical JSON for a (frozen) value, row or node address."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=list)


def _decode(text: str) -> Any:
    return json.loads(text)


class SqliteBackend(StorageBackend):
    """Durable mirror of the network's relations in one sqlite file."""

    kind = "sqlite"
    persistent = True
    supports_sql = True

    def __init__(self, path: Optional[str] = None):
        super().__init__()
        # Lazy core imports: repro.storage must be importable while
        # repro.core is still loading (api.py imports this package).
        from ..core.rewrite import PROV_TABLE, RULE_EXEC_TABLE
        from ..core.vid import fact_vid

        self._prov_table = PROV_TABLE
        self._rule_exec_table = RULE_EXEC_TABLE
        self._fact_vid = fact_vid
        self._ephemeral = path is None
        if path is None:
            handle, path = tempfile.mkstemp(prefix="exspan-storage-", suffix=".sqlite")
            os.close(handle)
        self.path = path
        self._connection = sqlite3.connect(path)
        self._connection.execute("PRAGMA journal_mode=WAL")
        self._connection.execute("PRAGMA synchronous=NORMAL")
        self._connection.executescript(_SCHEMA)
        self._connection.commit()
        # Journal of (address, action, name, frozen values) visibility
        # transitions, drained by flush() in arrival order.
        self._journal: List[Tuple[Any, str, str, Tuple[Any, ...]]] = []
        self._intervals_dirty = True

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def attach_node(self, address: Any, engine: Any, store: Any) -> None:
        super().attach_node(address, engine, store)
        journal = self._journal
        counters = self.counters

        def _observe(action: str, fact: Fact, _address: Any = address) -> None:
            # Freeze eagerly: the journal may outlive the fact's value
            # list, and flush-time encoding needs hashable canonical rows.
            journal.append((_address, action, fact.name, freeze_value(tuple(fact.values))))
            counters["journal_appends"] += 1

        engine.add_update_listener(_observe)

    def record(self, address: Any, action: str, name: str, values: Any) -> None:
        self._journal.append((address, action, name, freeze_value(tuple(values))))
        self.counters["journal_appends"] += 1

    def close(self) -> None:
        if self._connection is not None:
            try:
                self.flush()
            except sqlite3.Error:  # pragma: no cover - best-effort close
                pass
            self._connection.close()
            self._connection = None  # type: ignore[assignment]
        if self._ephemeral and self.path:
            for suffix in ("", "-wal", "-shm"):
                try:
                    os.unlink(self.path + suffix)
                except OSError:
                    pass

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        # Networks rarely close their backend explicitly (trial functions
        # build thousands of short-lived ones); reclaim the connection and
        # the ephemeral temp file when the backend is collected.
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # write-behind journal
    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Drain the journal into one WAL transaction; return op count."""
        journal = self._journal
        if not journal:
            return 0
        # Swap in a fresh list so listeners appending mid-flush (there are
        # none today, but the invariant is cheap) never hit a shared list.
        drained = journal[:]
        journal.clear()
        prov_name = self._prov_table
        rule_exec_name = self._rule_exec_table
        fact_vid = self._fact_vid
        connection = self._connection
        operations = 0
        graph_touched = False
        with connection:
            execute = connection.execute
            for address, action, name, values in drained:
                if name == prov_name:
                    loc, vid, rid, rloc = values[0], values[1], values[2], values[3]
                    row = (_encode(loc), vid, rid, _encode(rloc))
                    if action == "insert":
                        execute(
                            "INSERT INTO prov(loc, vid, rid, rloc) VALUES(?,?,?,?)",
                            row,
                        )
                    else:
                        execute(
                            "DELETE FROM prov WHERE loc = ? AND vid = ? "
                            "AND rid IS ? AND rloc = ?",
                            row,
                        )
                    graph_touched = True
                elif name == rule_exec_name:
                    rloc, rid, rule = values[0], values[1], values[2]
                    inputs = _encode(list(values[3]) if values[3] else [])
                    if action == "insert":
                        execute(
                            "INSERT OR REPLACE INTO rule_exec"
                            "(rloc, rid, rule, inputs) VALUES(?,?,?,?)",
                            (_encode(rloc), rid, rule, inputs),
                        )
                    else:
                        execute(
                            "DELETE FROM rule_exec WHERE rloc = ? AND rid = ?",
                            (_encode(rloc), rid),
                        )
                    graph_touched = True
                elif is_event_predicate(name):
                    continue  # transient events are never materialized
                else:
                    node = _encode(address)
                    row_text = _encode(values)
                    if action == "insert":
                        vid = fact_vid(Fact(name, values))
                        execute(
                            "INSERT OR REPLACE INTO tuples(node, name, row, vid) "
                            "VALUES(?,?,?,?)",
                            (node, name, row_text, vid),
                        )
                    else:
                        execute(
                            "DELETE FROM tuples WHERE node = ? AND name = ? "
                            "AND row = ?",
                            (node, name, row_text),
                        )
                operations += 1
        if graph_touched:
            self._intervals_dirty = True
        self.counters["flushes"] += 1
        self.counters["flushed_ops"] += operations
        return operations

    # ------------------------------------------------------------------ #
    # interval encoding
    # ------------------------------------------------------------------ #
    def _ensure_intervals(self) -> None:
        if not self._intervals_dirty:
            return
        self._rebuild_intervals()
        self._intervals_dirty = False

    def _rebuild_intervals(self) -> None:
        """Recompute the pre/post-order encoding from the mirrored graph.

        Deterministic: vertices are rooted in ``prov`` insertion order and
        children follow the stored ``ruleExec`` input order, so the same
        graph always yields the same intervals regardless of hash seed.
        """
        connection = self._connection
        prov_rows = connection.execute("SELECT vid, rid FROM prov ORDER BY id").fetchall()
        rule_inputs: Dict[str, List[str]] = {}
        for rid, inputs in connection.execute(
            "SELECT rid, inputs FROM rule_exec ORDER BY id"
        ):
            rule_inputs.setdefault(rid, _decode(inputs))
        children: Dict[str, List[str]] = {}
        order: List[str] = []
        for vid, rid in prov_rows:
            bucket = children.get(vid)
            if bucket is None:
                bucket = children[vid] = []
                order.append(vid)
            if rid is not None:
                bucket.extend(rule_inputs.get(rid, ()))
        pre: Dict[str, int] = {}
        post: Dict[str, int] = {}
        extra: List[Tuple[int, str]] = []
        counter = 0
        for root in order:
            if root in pre:
                continue
            pre[root] = counter
            counter += 1
            stack: List[Tuple[str, Iterator[str]]] = [
                (root, iter(children.get(root, ())))
            ]
            while stack:
                vertex, child_iter = stack[-1]
                descended = False
                for child in child_iter:
                    if child in pre:
                        # Non-tree DAG edge (shared sub-derivation or
                        # cycle): closed by the recursive CTE at query time.
                        extra.append((pre[vertex], child))
                    else:
                        pre[child] = counter
                        counter += 1
                        stack.append((child, iter(children.get(child, ()))))
                        descended = True
                        break
                if not descended:
                    post[vertex] = counter
                    counter += 1
                    stack.pop()
        with connection:
            connection.execute("DELETE FROM intervals")
            connection.execute("DELETE FROM extra_edges")
            connection.executemany(
                "INSERT INTO intervals(vid, pre, post) VALUES(?,?,?)",
                [(vid, pre[vid], post[vid]) for vid in pre],
            )
            connection.executemany(
                "INSERT INTO extra_edges(parent_pre, child_vid) VALUES(?,?)",
                extra,
            )

    # ------------------------------------------------------------------ #
    # SQL query path
    # ------------------------------------------------------------------ #
    def sql_query(self, kind: str, root_vid: str) -> Any:
        """Answer a provenance query from the database alone.

        Flushes the journal, refreshes the interval encoding if the graph
        changed, then compiles *kind* onto indexed range scans plus the
        recursive interval-closure CTE.  Supported kinds:

        ``reachable``
            Sorted VIDs of every tuple vertex in the derivation subgraph.
        ``reachable_base``
            Sorted VIDs of the base tuples (null-RID ``prov`` rows) the
            root transitively depends on.
        ``nodeset``
            Sorted node addresses participating in any derivation — the
            SQL twin of the distributed NODESET query / Figure 5's
            ``nodes_involved``.
        ``derivability``
            True when the root vertex exists in the provenance graph (the
            trust-free derivability check).
        ``subgraph``
            Sorted ``[parent_vid, rid, child_vid]`` edges of the
            derivation subgraph.
        """
        if kind not in SQL_QUERY_KINDS:
            raise StorageError(
                f"unknown SQL provenance query kind {kind!r} "
                f"(expected one of {SQL_QUERY_KINDS})"
            )
        self.flush()
        self._ensure_intervals()
        self.counters["sql_queries"] += 1
        connection = self._connection
        parameters = {"root": root_vid}
        if kind == "derivability":
            found = connection.execute(
                "SELECT 1 FROM intervals WHERE vid = :root LIMIT 1", parameters
            ).fetchone()
            return found is not None
        if kind == "reachable":
            rows = connection.execute(
                _REACHABLE_CTE + "SELECT vid FROM reach ORDER BY vid", parameters
            ).fetchall()
            return [vid for (vid,) in rows]
        if kind == "reachable_base":
            rows = connection.execute(
                _REACHABLE_CTE
                + """
                SELECT r.vid FROM reach r
                WHERE EXISTS (
                    SELECT 1 FROM prov p WHERE p.vid = r.vid AND p.rid IS NULL
                )
                ORDER BY r.vid
                """,
                parameters,
            ).fetchall()
            return [vid for (vid,) in rows]
        if kind == "nodeset":
            rows = connection.execute(
                _REACHABLE_CTE
                + """
                SELECT DISTINCT p.loc FROM prov p
                WHERE p.vid IN (SELECT vid FROM reach)
                UNION
                SELECT DISTINCT p.rloc FROM prov p
                WHERE p.rid IS NOT NULL AND p.vid IN (SELECT vid FROM reach)
                """,
                parameters,
            ).fetchall()
            return sorted((_decode(text) for (text,) in rows), key=lambda v: str(v))
        # subgraph: the reachable set comes from the interval encoding, the
        # edge list from the mirrored prov/ruleExec rows.
        reachable = set(
            vid
            for (vid,) in connection.execute(
                _REACHABLE_CTE + "SELECT vid FROM reach", parameters
            )
        )
        edges: List[Tuple[str, str, str]] = []
        for vid, rid in connection.execute(
            "SELECT vid, rid FROM prov WHERE rid IS NOT NULL ORDER BY id"
        ):
            if vid not in reachable:
                continue
            inputs_row = connection.execute(
                "SELECT inputs FROM rule_exec WHERE rid = ? LIMIT 1", (rid,)
            ).fetchone()
            if inputs_row is None:
                continue
            for child in _decode(inputs_row[0]):
                edges.append((vid, rid, child))
        return sorted(set(edges))

    # ------------------------------------------------------------------ #
    # inspection helpers (tests, durability gate)
    # ------------------------------------------------------------------ #
    def tuple_rows(self) -> List[Tuple[Any, str, Tuple[Any, ...], str]]:
        """Decoded ``(node, name, row, vid)`` mirror rows, flushed first."""
        self.flush()
        rows = self._connection.execute(
            "SELECT node, name, row, vid FROM tuples ORDER BY node, name, row"
        ).fetchall()
        return [
            (_decode(node), name, freeze_value(_decode(row)), vid)
            for node, name, row, vid in rows
        ]

    def graph_counts(self) -> Dict[str, int]:
        """Row counts of the mirrored provenance relations, flushed first."""
        self.flush()
        counts = {}
        for table in ("tuples", "prov", "rule_exec", "intervals", "extra_edges"):
            counts[table] = self._connection.execute(
                f"SELECT COUNT(*) FROM {table}"  # noqa: S608 - fixed names
            ).fetchone()[0]
        return counts

    def stats(self) -> Dict[str, Any]:
        snapshot = super().stats()
        snapshot["journal_pending"] = len(self._journal)
        return snapshot
