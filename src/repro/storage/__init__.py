"""Pluggable storage engine: the in-RAM tier and durable backends.

This package owns tuple storage for the whole system:

* :mod:`repro.storage.memory` — the interned-row :class:`Table` /
  :class:`Catalog` machinery (formerly ``repro.datalog.catalog``, which
  re-exports it for compatibility) plus :class:`MemoryBackend`, the
  default backend that adds nothing on top of the in-RAM tier;
* :mod:`repro.storage.backend` — the :class:`StorageBackend` interface,
  spec parsing (``"memory"`` / ``"sqlite"`` / ``"sqlite:<path>"``) and
  the process-wide default knob (:func:`default_storage` /
  :func:`set_default_storage`, the ``--storage`` CLI convention);
* :mod:`repro.storage.sqlite` — the write-behind sqlite (WAL) mirror with
  the pre/post-order interval encoding of the provenance DAG and the
  SQL-compiled reachability/subgraph query path;
* :mod:`repro.storage.checkpoint` — snapshot-consistent network
  checkpoint & restore (``ExspanNetwork.checkpoint``/``restore``).

Backend choice is an execution-environment knob like ``--shards`` and
``--pipeline``: never fingerprinted, and results are byte-identical under
any backend.
"""

# Imported first to break the import cycle with repro.datalog: its catalog
# module re-exports repro.storage.memory, so whichever package is imported
# first must let the other finish loading the memory tier (see trace in
# the module docstrings).
from .. import datalog as _datalog  # noqa: F401

from .backend import (
    STORAGE_BACKENDS,
    StorageBackend,
    StorageError,
    default_storage,
    make_backend,
    parse_storage_spec,
    set_default_storage,
    validate_storage_spec,
)
from .memory import (
    Catalog,
    DeleteOutcome,
    InsertOutcome,
    InternedRow,
    MemoryBackend,
    Table,
    freeze_value,
)
from .sqlite import SQL_QUERY_KINDS, SqliteBackend

__all__ = [
    "STORAGE_BACKENDS",
    "SQL_QUERY_KINDS",
    "StorageBackend",
    "StorageError",
    "MemoryBackend",
    "SqliteBackend",
    "default_storage",
    "set_default_storage",
    "make_backend",
    "parse_storage_spec",
    "validate_storage_spec",
    "InternedRow",
    "Table",
    "Catalog",
    "InsertOutcome",
    "DeleteOutcome",
    "freeze_value",
]
