"""ExSPAN reproduction: network provenance for declarative networks.

This package reproduces *Efficient Querying and Maintenance of Network
Provenance at Internet-Scale* (Zhou et al., SIGMOD 2010).  See README.md for
a tour and DESIGN.md for the system inventory.

Subpackages
-----------
``repro.datalog``
    NDlog language and per-node pipelined semi-naive evaluation engine.
``repro.net``
    Discrete-event network simulator, topologies, churn and traffic stats.
``repro.core``
    ExSPAN itself: provenance data model, maintenance rewrite, provenance
    modes, distributed query engine, optimizations and representations.
``repro.protocols``
    The MINCOST, PATHVECTOR and PACKETFORWARD applications.
``repro.experiments``
    Runners that regenerate every figure of the paper's evaluation.
"""

from .datalog import Fact, Program, parse_program
from .net import (
    Network,
    Simulator,
    Topology,
    grid_topology,
    line_topology,
    ring_topology,
    transit_stub_topology,
)
from .protocols import (
    mincost_program,
    packet_event,
    packetforward_program,
    pathvector_program,
)

__version__ = "1.0.0"

__all__ = [
    "Fact",
    "Program",
    "parse_program",
    "Network",
    "Simulator",
    "Topology",
    "grid_topology",
    "line_topology",
    "ring_topology",
    "transit_stub_topology",
    "mincost_program",
    "packet_event",
    "packetforward_program",
    "pathvector_program",
    "__version__",
]
