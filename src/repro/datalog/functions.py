"""Builtin function registry for NDlog rule evaluation.

The ExSPAN paper relies on a small set of builtin functions inside rewritten
provenance rules — ``f_sha1`` for vertex identifiers, ``f_concat`` /
``f_append`` for VID lists, ``f_size`` and ``f_item`` for buffer handling,
and ``f_empty`` for buffer initialization.  This module implements them plus
a handful of generally useful helpers, and exposes a
:class:`FunctionRegistry` that rules evaluate against.

User code may register additional functions (for example the provenance
query UDFs ``f_pEDB`` / ``f_pIDB`` / ``f_pRULE``) on a per-engine basis.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, Iterable, List, Sequence

from .errors import EvaluationError, UnknownFunctionError

__all__ = [
    "FunctionRegistry",
    "default_registry",
    "sha1_hex",
    "freeze_cache_key",
    "set_sha1_caching",
    "sha1_cache_stats",
    "clear_sha1_cache",
]


#: Number of hex characters kept from the SHA-1 digest.  The paper ships
#: 20-byte identifiers (raw SHA-1); we keep identifiers printable by using
#: 20 hex characters (80 bits), so a VID string occupies exactly the 20
#: bytes the paper charges per pointer while remaining collision-resistant
#: at simulation scale.
DIGEST_LENGTH = 20


def sha1_hex(text: str) -> str:
    """Return the (truncated) SHA-1 hex digest of *text* (UTF-8 encoded).

    This is the hash the paper uses for vertex identifiers (VIDs and RIDs);
    see :data:`DIGEST_LENGTH` for the truncation rationale.
    """
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:DIGEST_LENGTH]


# ---------------------------------------------------------------------- #
# f_sha1 memoization
# ---------------------------------------------------------------------- #
#: Upper bound on cached ``f_sha1`` results.  Each entry holds the frozen
#: argument tuple plus a 20-character digest (roughly 200-400 bytes), so the
#: cache tops out around 30-60 MB before it is dropped wholesale and
#: rebuilt — crude but bounded, and the hit rate recovers within one
#: fixpoint round because the hot keys (tuple VID preimages) recur densely.
SHA1_CACHE_LIMIT = 1 << 17

_sha1_cache: Dict[tuple, str] = {}
_sha1_caching = True
_sha1_hits = 0
_sha1_misses = 0


def set_sha1_caching(enabled: bool) -> None:
    """Toggle ``f_sha1`` memoization (benchmarks use this for before/after)."""
    global _sha1_caching
    _sha1_caching = bool(enabled)
    if not _sha1_caching:
        _sha1_cache.clear()


def clear_sha1_cache() -> None:
    """Drop every cached digest (tests / benchmark isolation)."""
    global _sha1_hits, _sha1_misses
    _sha1_cache.clear()
    _sha1_hits = 0
    _sha1_misses = 0


def sha1_cache_stats() -> Dict[str, int]:
    """Entries / hits / misses / limit of the ``f_sha1`` memo (diagnostics)."""
    return {
        "entries": len(_sha1_cache),
        "hits": _sha1_hits,
        "misses": _sha1_misses,
        "limit": SHA1_CACHE_LIMIT,
    }


def freeze_cache_key(value: Any) -> Any:
    """Hashable cache-key form of one hash-input value.

    Lists become tuples, which is safe because :func:`_stringify` (and
    ``repro.core.vid.render_value``) render both identically — equal keys
    always map to equal digests.  Shared by the ``f_sha1`` memo here and
    the ``tuple_vid`` memo in :mod:`repro.core.vid`; values that remain
    unhashable (sets, dicts) surface as ``TypeError`` at the cache lookup,
    which callers treat as "skip the cache".
    """
    cls = value.__class__
    if cls is str:  # the dominant case: names, addresses, digests
        return value
    if cls is list or cls is tuple or isinstance(value, (list, tuple)):
        return tuple(map(freeze_cache_key, value))
    return value


def _stringify(value: Any) -> str:
    """Render *value* for hashing the way NDlog string concatenation does.

    Lists and tuples are rendered as the concatenation of their members so
    that ``f_sha1(R + RLoc + List)`` in rewritten provenance rules matches
    :func:`repro.core.vid.rule_rid`, which joins the input VIDs directly.
    """
    if value.__class__ is str:  # the dominant case on the provenance path
        return value
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if value is None:
        return ""
    if isinstance(value, (list, tuple)):
        return "".join(map(_stringify, value))
    return str(value)


def _f_sha1(args: Sequence[Any]) -> str:
    """``f_sha1(X)`` — SHA-1 of the concatenation of all arguments.

    Memoized on the (frozen) argument tuple: the provenance rewrite
    recomputes the same tuple-VID preimages on every rule firing a tuple
    participates in, so each distinct preimage is stringified and hashed
    once per cache lifetime instead of once per firing.
    """
    global _sha1_hits, _sha1_misses
    if _sha1_caching:
        # Most calls carry only scalars: try the raw argument tuple first
        # (C-speed) and freeze lists into tuples only when hashing rejects
        # it.  Both key forms coexist safely: a hashable raw tuple IS its
        # own frozen image (lists are the only values freeze_cache_key changes,
        # and any list makes the raw tuple unhashable).
        try:
            key = tuple(args)
            digest = _sha1_cache.get(key)
        except TypeError:
            try:
                key = tuple(map(freeze_cache_key, args))
                digest = _sha1_cache.get(key)
            except TypeError:  # unhashable argument (e.g. a dict): no cache
                key = None
                digest = None
        if key is not None:
            if digest is not None:
                _sha1_hits += 1
                return digest
            _sha1_misses += 1
            digest = sha1_hex("".join(map(_stringify, args)))
            if len(_sha1_cache) >= SHA1_CACHE_LIMIT:
                _sha1_cache.clear()
            _sha1_cache[key] = digest
            return digest
    return sha1_hex("".join(map(_stringify, args)))


def sha1_for_preimage(preimage: str) -> str:
    """Digest (and cache) an already-concatenated ``f_sha1`` preimage.

    The columnar batch kernels build the stringified preimage inline (the
    static argument structure of the provenance rewrite's ``f_sha1`` calls
    is known at kernel-generation time, so the per-call list allocation and
    argument freezing of :func:`_f_sha1` can be skipped entirely) and memo
    their digests by the preimage string itself.  Preimage-keyed and
    frozen-argument-keyed entries coexist safely in the one bounded cache:
    string keys never compare equal to tuple keys, and both map to the same
    digest values.
    """
    global _sha1_misses
    digest = sha1_hex(preimage)
    if _sha1_caching:
        _sha1_misses += 1
        if len(_sha1_cache) >= SHA1_CACHE_LIMIT:
            _sha1_cache.clear()
        _sha1_cache[preimage] = digest
    return digest


def note_sha1_hits(count: int) -> None:
    """Credit *count* memo hits observed by an inlined batch-kernel loop."""
    global _sha1_hits
    _sha1_hits += count


def _f_concat(args: Sequence[Any]) -> List[Any]:
    """``f_concat(A, B, ...)`` — concatenate scalars and lists into one list."""
    result: List[Any] = []
    for arg in args:
        if isinstance(arg, (list, tuple)):
            result.extend(arg)
        else:
            result.append(arg)
    return result


def _f_append(args: Sequence[Any]) -> List[Any]:
    """``f_append(A, B, ...)`` — build a list of the arguments, flattening lists."""
    return _f_concat(args)


def _f_empty(args: Sequence[Any]) -> List[Any]:
    """``f_empty()`` — an empty list (used to initialize result buffers)."""
    if args:
        raise EvaluationError("f_empty takes no arguments")
    return []


def _f_size(args: Sequence[Any]) -> int:
    """``f_size(L)`` — number of elements in a list (or length of a string)."""
    if len(args) != 1:
        raise EvaluationError("f_size takes exactly one argument")
    value = args[0]
    if value is None:
        return 0
    return len(value)


def _f_item(args: Sequence[Any]) -> Any:
    """``f_item(L)`` or ``f_item(L, I)`` — the first (or *I*-th) element of a list."""
    if not args:
        raise EvaluationError("f_item requires a list argument")
    sequence = args[0]
    index = int(args[1]) if len(args) > 1 else 0
    try:
        return sequence[index]
    except (IndexError, TypeError) as exc:
        raise EvaluationError(f"f_item: cannot take item {index} of {sequence!r}") from exc


def _f_member(args: Sequence[Any]) -> bool:
    """``f_member(L, X)`` — membership test."""
    if len(args) != 2:
        raise EvaluationError("f_member takes exactly two arguments")
    sequence, value = args
    return value in (sequence or ())


def _f_first(args: Sequence[Any]) -> Any:
    """``f_first(L)`` — first element of a non-empty list."""
    return _f_item([args[0], 0])


def _f_last(args: Sequence[Any]) -> Any:
    """``f_last(L)`` — last element of a non-empty list."""
    return _f_item([args[0], -1])


def _f_min(args: Sequence[Any]) -> Any:
    """``f_min(A, B, ...)`` — minimum of the arguments."""
    if not args:
        raise EvaluationError("f_min requires at least one argument")
    return min(args)


def _f_max(args: Sequence[Any]) -> Any:
    """``f_max(A, B, ...)`` — maximum of the arguments."""
    if not args:
        raise EvaluationError("f_max requires at least one argument")
    return max(args)


def _f_tostr(args: Sequence[Any]) -> str:
    """``f_tostr(X)`` — string rendering of the argument."""
    if len(args) != 1:
        raise EvaluationError("f_tostr takes exactly one argument")
    return _stringify(args[0])


class FunctionRegistry:
    """A lookup table of builtin functions.

    Each function receives the already-evaluated argument values as a list
    and returns a plain Python value.
    """

    def __init__(self, functions: Dict[str, Callable[[Sequence[Any]], Any]] | None = None):
        self._functions: Dict[str, Callable[[Sequence[Any]], Any]] = dict(functions or {})

    def register(self, name: str, function: Callable[[Sequence[Any]], Any]) -> None:
        """Register *function* under *name*, replacing any existing binding."""
        self._functions[name] = function

    def unregister(self, name: str) -> None:
        self._functions.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def call(self, name: str, args: Sequence[Any]) -> Any:
        """Invoke the builtin *name* with *args*; raise if it is unknown."""
        try:
            function = self._functions[name]
        except KeyError:
            raise UnknownFunctionError(name) from None
        return function(args)

    def names(self) -> Iterable[str]:
        return sorted(self._functions)

    def copy(self) -> "FunctionRegistry":
        """Return an independent copy (per-engine customization)."""
        return FunctionRegistry(dict(self._functions))


_DEFAULTS: Dict[str, Callable[[Sequence[Any]], Any]] = {
    "f_sha1": _f_sha1,
    "f_concat": _f_concat,
    "f_append": _f_append,
    "f_empty": _f_empty,
    "f_size": _f_size,
    "f_item": _f_item,
    "f_member": _f_member,
    "f_first": _f_first,
    "f_last": _f_last,
    "f_min": _f_min,
    "f_max": _f_max,
    "f_tostr": _f_tostr,
}


def default_registry() -> FunctionRegistry:
    """Return a fresh registry pre-populated with the standard builtins."""
    return FunctionRegistry(dict(_DEFAULTS))
