"""Exception hierarchy for the NDlog language and runtime.

All errors raised by :mod:`repro.datalog` derive from :class:`DatalogError`
so callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class DatalogError(Exception):
    """Base class for all NDlog language and runtime errors."""


class ParseError(DatalogError):
    """Raised when NDlog source text cannot be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token in the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ValidationError(DatalogError):
    """Raised when a syntactically valid program violates NDlog semantics.

    Examples include unsafe rules (head variables not bound in the body),
    missing location specifiers, or aggregates in unsupported positions.
    """


class EvaluationError(DatalogError):
    """Raised when rule evaluation fails at runtime.

    Typical causes are unbound variables reaching an expression, type errors
    inside arithmetic, or unknown builtin functions.
    """


class UnknownFunctionError(EvaluationError):
    """Raised when a rule references a builtin function that is not registered."""

    def __init__(self, name: str):
        super().__init__(f"unknown builtin function: {name!r}")
        self.name = name


class UnknownRelationError(DatalogError):
    """Raised when a rule or fact references a relation absent from the catalog."""

    def __init__(self, name: str):
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class SchemaError(DatalogError):
    """Raised when a fact does not match its relation's declared schema."""
