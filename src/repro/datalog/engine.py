"""Per-node NDlog evaluation engine (batched pipelined semi-naive evaluation).

Each network node runs one :class:`NDlogEngine`.  The engine owns the node's
:class:`~repro.datalog.catalog.Catalog` of materialized tables, a FIFO queue
of pending :class:`Delta` updates, and a compiled form of the NDlog program.

Evaluation follows the pipelined semi-naive (PSN) strategy described in the
declarative networking literature and summarized in Section 4.2 of the
ExSPAN paper:

* every insertion or deletion of a tuple is a *delta*;
* deltas are processed in FIFO order;
* for a rule ``d :- d1, ..., dn`` and a delta on ``dk``, the engine joins the
  delta tuple against the materialized fragments of the other body
  predicates, evaluates assignments and conditions, and produces head deltas;
* head deltas whose location specifier equals the local address are enqueued
  locally, everything else is handed to the ``send`` callback (wired to the
  network substrate by :mod:`repro.net.host`);
* duplicate derivations are tracked with per-tuple derivation counts so a
  tuple is only propagated when it first appears and only deleted when its
  last derivation disappears (cascaded deletions).

The default ``pipeline="batched"`` drains the queue in maximal runs of
consecutive deltas sharing one (predicate, action) pair and routes each
through the closure-compiled plan executors
(:mod:`repro.datalog.plan.compiler`).  Batching amortizes the per-delta
dispatch (event check, table resolution, rule-list lookup, counter updates)
without reordering anything: deltas inside a batch are still applied and
fired strictly in FIFO order, and derived deltas always join the back of
the queue, so the batched pipeline is bit-identical to the legacy
``pipeline="delta"`` interpreter — same fixpoints, same provenance VIDs,
same annotation merges, same ``tuples_scanned`` counters.  The legacy
pipeline is retained as the equivalence-test reference and the "before"
measurement of the speedup benchmarks.

The engine exposes two extension points used by the ExSPAN provenance layer:

* an :class:`AnnotationPolicy` for *value-based* provenance, which attaches
  an annotation to every tuple and combines annotations through joins and
  unions (the annotation travels with remote deltas and its serialized size
  is charged to the message);
* *rule listeners*, callbacks invoked on every successful rule firing, used
  for centralized provenance collection and for debugging.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .aggregates import AggregateState
from .ast import (
    Assignment,
    Atom,
    Condition,
    Fact,
    Program,
    Rule,
    is_event_predicate,
)
from .catalog import Catalog, Table
from .errors import EvaluationError, ValidationError
from .functions import FunctionRegistry, default_registry
from .plan import (
    CatalogStatistics,
    CompiledDeltaPlan,
    IndexManager,
    PlanCompiler,
    compile_term,
    explain_plans,
)
from .plan.columnar import EmissionCapture
from .plan.columnar import predicate_info as _columnar_predicate_info
from .plan.columnar import process_window as _columnar_process_window
from .plan.compiler import STALENESS_CHECK_PERIOD
from .terms import AggregateSpec, Constant, Variable

__all__ = [
    "Delta",
    "RuleFiring",
    "AnnotationPolicy",
    "NDlogEngine",
    "INSERT",
    "DELETE",
    "REFRESH",
    "PLANNERS",
    "PIPELINES",
    "default_planner",
    "set_default_planner",
    "default_pipeline",
    "set_default_pipeline",
]

#: Evaluation strategies: "greedy" routes deltas through compiled plans from
#: the cost-based planner (:mod:`repro.datalog.plan`); "naive" is the
#: unoptimized left-to-right nested-loop join with no secondary indexes,
#: kept so benchmarks can quantify what the planner buys.
PLANNERS = ("greedy", "naive")

#: Delta pipelines: "batched" drains the queue in per-(predicate, action)
#: runs and executes closure-compiled plans; "delta" is the legacy
#: one-delta-at-a-time interpreter, kept as the equivalence reference and
#: the "before" side of the batching benchmarks; "columnar" drains whole
#: queue windows and evaluates join plans as vectorized batch kernels over
#: column blocks (:mod:`repro.datalog.plan.columnar`).  Results are
#: bit-identical across all three.
PIPELINES = ("batched", "delta", "columnar")

_DEFAULT_PLANNER = "greedy"
_DEFAULT_PIPELINE = "batched"


def default_planner() -> str:
    """The strategy engines use when constructed without an explicit one."""
    return _DEFAULT_PLANNER


def set_default_planner(name: str) -> None:
    """Set the process-wide default planner (experiment harness plumbing)."""
    global _DEFAULT_PLANNER
    if name not in PLANNERS:
        raise ValueError(f"unknown planner {name!r}; expected one of {PLANNERS}")
    _DEFAULT_PLANNER = name


def default_pipeline() -> str:
    """The pipeline engines use when constructed without an explicit one."""
    return _DEFAULT_PIPELINE


def set_default_pipeline(name: str) -> None:
    """Set the process-wide default pipeline (experiment harness plumbing).

    Like :func:`set_default_planner` this is an execution-environment knob:
    all pipelines produce bit-identical results, so it never participates
    in scenario fingerprints — the CI artifact gates exploit exactly that.
    """
    global _DEFAULT_PIPELINE
    if name not in PIPELINES:
        raise ValueError(f"unknown pipeline {name!r}; expected one of {PIPELINES}")
    _DEFAULT_PIPELINE = name


INSERT = "insert"
DELETE = "delete"
#: A provenance-annotation update for an already-present tuple.  Only used
#: in value-based provenance mode: when a tuple gains a new alternative
#: derivation, its merged annotation must be re-propagated to every tuple
#: derived from it (the "propagation of provenance updates" the paper cites
#: as a cost of value-based distribution).
REFRESH = "refresh"


@dataclass(slots=True)
class Delta:
    """A single insertion, deletion or annotation refresh of a fact.

    ``frozen`` is a storage-layer side channel: columnar batch kernels that
    can prove the frozen (hashable) image of the head value tuple at
    code-generation time attach it here, letting
    :meth:`~repro.datalog.catalog.Table.apply_delta_block` skip the
    per-value freeze entirely.  It never participates in equality, repr or
    the wire format, and ``None`` (the default everywhere else) simply
    means "freeze from ``fact.values`` as usual".
    """

    action: str
    fact: Fact
    annotation: Any = None
    frozen: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.action not in (INSERT, DELETE, REFRESH):
            raise ValueError(f"invalid delta action {self.action!r}")

    @property
    def is_insert(self) -> bool:
        return self.action == INSERT

    @property
    def is_refresh(self) -> bool:
        return self.action == REFRESH

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        sign = {"insert": "+", "delete": "-", "refresh": "~"}[self.action]
        return f"{sign}{self.fact}"


@dataclass(frozen=True, slots=True)
class RuleFiring:
    """Details of one successful rule execution, passed to rule listeners."""

    rule: Rule
    action: str
    head_fact: Fact
    body_facts: Tuple[Fact, ...]
    binding: Mapping[str, Any]
    node: Any


class AnnotationPolicy:
    """Strategy object for value-based provenance annotations.

    Subclasses define how annotations are created for base tuples, combined
    across a rule's body (join / ``·``), merged across alternative
    derivations (union / ``+``), and how many bytes an annotation contributes
    to a network message.

    ``propagate_updates`` controls whether a change to an existing tuple's
    annotation (a new alternative derivation arriving) is re-propagated to
    the tuples derived from it via REFRESH deltas.  Full propagation models
    the paper's "propagation of provenance updates" cost of value-based
    provenance, but its cascades can be expensive on dense provenance graphs
    (that is the paper's point); it is therefore opt-in.
    """

    propagate_updates: bool = False

    def base(self, fact: Fact) -> Any:
        """Annotation of an externally-inserted base tuple."""
        raise NotImplementedError

    def combine(self, rule: Rule, body_annotations: Sequence[Any], node: Any) -> Any:
        """Annotation of a tuple derived by *rule* from the given inputs."""
        raise NotImplementedError

    def merge(self, existing: Any, new: Any) -> Any:
        """Merge annotations of two alternative derivations of the same tuple."""
        raise NotImplementedError

    def size(self, annotation: Any) -> int:
        """Serialized size in bytes charged to messages carrying *annotation*."""
        raise NotImplementedError


@dataclass
class _CompiledAggregateRule:
    """Runtime state of an aggregate rule: group -> aggregate + emitted row."""

    rule: Rule
    aggregate_index: int
    spec: AggregateSpec
    groups: Dict[Tuple[Any, ...], AggregateState] = field(default_factory=dict)
    emitted: Dict[Tuple[Any, ...], Tuple[Any, ...]] = field(default_factory=dict)
    #: closure-compiled evaluators of the non-aggregate head arguments, in
    #: head order (used by both pipelines; equivalent to Term.evaluate).
    group_fns: Tuple[Any, ...] = ()


class _Firing:
    """One (rule, trigger position) registration with its resolved plan.

    The batched pipeline iterates these instead of re-looking plans up in
    the ``(id(rule), position)`` dict on every delta; ``plan`` is swapped in
    place on staleness recompiles.
    """

    __slots__ = ("rule", "position", "plan")

    def __init__(self, rule: Rule, position: int, plan: Optional[CompiledDeltaPlan]):
        self.rule = rule
        self.position = position
        self.plan = plan


class NDlogEngine:
    """The NDlog runtime for a single node."""

    def __init__(
        self,
        address: Any,
        program: Optional[Program] = None,
        functions: Optional[FunctionRegistry] = None,
        send: Optional[Callable[[Any, Delta], None]] = None,
        annotation_policy: Optional[AnnotationPolicy] = None,
        planner: Optional[str] = None,
        pipeline: Optional[str] = None,
    ):
        self.address = address
        self.functions = functions if functions is not None else default_registry()
        self.catalog = Catalog()
        self._send = send
        self.annotation_policy = annotation_policy
        self._queue: deque[Delta] = deque()
        self._rules_by_predicate: Dict[str, List[Tuple[Rule, int]]] = defaultdict(list)
        self._firings_by_predicate: Dict[str, List[_Firing]] = defaultdict(list)
        #: name -> is_event_predicate(name), filled on first sight.
        self._event_names: Dict[str, bool] = {}
        self._aggregate_rules: Dict[str, _CompiledAggregateRule] = {}
        self._rule_listeners: List[Callable[[RuleFiring], None]] = []
        self._update_listeners: List[Callable[[str, Fact], None]] = []
        self._annotations: Dict[Tuple[str, Tuple[Any, ...]], Any] = {}
        self.rules: List[Rule] = []
        self.stats: Dict[str, int] = defaultdict(int)
        #: Tracer installed via :meth:`set_tracer`; ``None`` when untraced.
        #: Never feeds :attr:`stats` — engine counters are part of the
        #: deterministic state digest and must not see tracing.
        self.tracer = None
        self.planner = planner if planner is not None else default_planner()
        if self.planner not in PLANNERS:
            raise ValidationError(
                f"unknown planner {self.planner!r}; expected one of {PLANNERS}"
            )
        self.pipeline = pipeline if pipeline is not None else default_pipeline()
        if self.pipeline not in PIPELINES:
            raise ValidationError(
                f"unknown pipeline {self.pipeline!r}; expected one of {PIPELINES}"
            )
        #: True when the batched pipeline (and compiled plan execution) runs.
        #: The columnar pipeline is a superset of batched: configurations
        #: its kernels cannot vectorize fall back to this exact loop.
        self._batched = self.pipeline in ("batched", "columnar")
        #: True when _fire_rules may take the compiled fast path.
        self._fast = self._batched and self.planner == "greedy"
        #: True when run() may enter the columnar window evaluator (the
        #: per-run annotation-policy / rule-listener checks still apply).
        self._columnar = self.pipeline == "columnar" and self.planner == "greedy"
        #: ``engine.columnar.*`` observability counters.  Deliberately NOT
        #: part of :attr:`stats`: stats feed the deterministic artifact
        #: digests (and the equivalence tests compare them verbatim), while
        #: window/segment/kernel counts are pipeline-specific by nature.
        self.columnar_counters: Dict[str, int] = defaultdict(int)
        #: predicate name -> plan.columnar.PredicateInfo, invalidated on
        #: add_rule (firings lists and their kernels change).
        self._columnar_info: Dict[str, Any] = {}
        #: Shared emission-capture shim for the columnar fallback paths.
        self._columnar_capture = EmissionCapture()
        # keyed by (id(rule), position): rule *identity*, not label, because
        # load_program may be called more than once and distinct rules with
        # the same label must not clobber each other's plans (self.rules
        # keeps every rule alive, so ids stay stable)
        self._plans: Dict[Tuple[int, int], CompiledDeltaPlan] = {}
        self._statistics = CatalogStatistics(self.catalog)
        self.index_manager = IndexManager(self.catalog, counters=self.stats)
        self._plan_compiler = PlanCompiler(self._statistics, self.index_manager)
        if program is not None:
            self.load_program(program)

    # ------------------------------------------------------------------ #
    # program loading
    # ------------------------------------------------------------------ #
    def load_program(self, program: Program) -> None:
        """Compile *program* into the engine (may be called more than once)."""
        program.validate()
        for decl in program.declarations:
            if not self.catalog.has_table(decl.name):
                self.catalog.declare(decl)
        for rule in program.rules:
            self.add_rule(rule)
        if self._columnar:
            # Warm the columnar dispatch metadata (and generate the batch
            # kernels, which are memoized program-wide) at load time, so the
            # first fixpoint pays evaluation cost only — matching the
            # batched pipeline's load-time plan compilation.
            for name in self._firings_by_predicate:
                _columnar_predicate_info(self, name)
        for fact in program.facts:
            if fact.location == self.address:
                self.insert(fact)

    def add_rule(self, rule: Rule) -> None:
        """Register a single rule with the engine."""
        rule.validate()
        self.rules.append(rule)
        aggregate = rule.head.aggregate()
        if aggregate is not None:
            index, spec = aggregate
            self._aggregate_rules[rule.label] = _CompiledAggregateRule(
                rule=rule,
                aggregate_index=index,
                spec=spec,
                group_fns=tuple(
                    compile_term(arg)
                    for position, arg in enumerate(rule.head.args)
                    if position != index
                ),
            )
        for position, atom in enumerate(rule.body_atoms):
            self._rules_by_predicate[atom.name].append((rule, position))
            plan = None
            if self.planner == "greedy":
                plan = self._plan_compiler.compile(rule, position)
                self._plans[(id(rule), position)] = plan
                self.stats["plans_compiled"] += 1
            self._firings_by_predicate[atom.name].append(_Firing(rule, position, plan))
        if self._columnar_info:
            # Firings lists (and their batch kernels) just changed shape.
            self._columnar_info.clear()

    def explain(self, label: Optional[str] = None) -> str:
        """Render the compiled evaluation plans (``EXPLAIN`` for NDlog).

        Returns the plans of every (rule, delta position) pair, or just the
        rule named by *label*.  A label with no exact match falls back to
        prefix matching (``label_*``) so asking for a source rule like
        ``sp1`` shows its provenance-rewritten variants (``sp1_phead``,
        ``sp1_pexec``, ...).  Only available with ``planner="greedy"``.
        """
        if self.planner != "greedy":
            return f"planner={self.planner!r}: no compiled plans (nested-loop joins)"

        def matching(predicate) -> List[CompiledDeltaPlan]:
            return sorted(
                (plan for plan in self._plans.values() if predicate(plan.rule.label)),
                key=lambda plan: (plan.rule.label, plan.trigger_position),
            )

        if label is None:
            plans = matching(lambda _: True)
        else:
            plans = matching(lambda rule_label: rule_label == label)
            if not plans:
                plans = matching(lambda rule_label: rule_label.startswith(label + "_"))
        if not plans:
            return f"no compiled plans for rule label {label!r}"
        if self.pipeline == "columnar":
            from .plan.explain import columnar_summary

            return (
                explain_plans(plans, pipeline="columnar")
                + "\n\n"
                + columnar_summary(self.columnar_counters)
            )
        return explain_plans(plans)

    def add_rule_listener(self, listener: Callable[[RuleFiring], None]) -> None:
        """Register a callback invoked after every successful rule firing."""
        self._rule_listeners.append(listener)

    def add_update_listener(self, listener: Callable[[str, Fact], None]) -> None:
        """Register a callback invoked when a materialized tuple appears/disappears.

        The callback receives ``(action, fact)`` where action is ``"insert"``
        when the tuple first becomes visible and ``"delete"`` when its last
        derivation is removed.  The ExSPAN query layer uses this hook for
        cache invalidation (Section 6.1).
        """
        self._update_listeners.append(listener)

    def set_send(self, send: Callable[[Any, Delta], None]) -> None:
        """Set the callback used to ship deltas to remote nodes."""
        self._send = send

    def set_tracer(self, tracer) -> None:
        """Install (or remove, with ``None``) an observability tracer.

        Enabling tracing rebinds :meth:`run`, :meth:`_process_batch` and
        :meth:`_fire_rules` to traced wrappers through the instance dict, so
        the untraced hot path carries *zero* per-delta overhead — not even a
        ``tracer is None`` check — which is what keeps the disabled-tracer
        cost on the batch benchmarks at noise level.
        """
        self.tracer = tracer
        if tracer is None:
            self.__dict__.pop("run", None)
            self.__dict__.pop("_process_batch", None)
            self.__dict__.pop("_fire_rules", None)
            self.__dict__.pop("_process_window", None)
        else:
            self.__dict__["run"] = self._traced_run
            self.__dict__["_process_batch"] = self._traced_process_batch
            self.__dict__["_fire_rules"] = self._traced_fire_rules
            self.__dict__["_process_window"] = self._traced_process_window

    def _traced_run(self, max_steps: Optional[int] = None) -> int:
        if not self._queue:
            return NDlogEngine.run(self, max_steps)
        with self.tracer.span(
            "fixpoint.round", cat="engine", host=self.address
        ) as span:
            steps = NDlogEngine.run(self, max_steps)
            span.add(deltas=steps)
        return steps

    def _traced_process_batch(self, name: str, action: str, batch) -> None:
        with self.tracer.span(
            "engine.batch",
            cat="engine",
            host=self.address,
            predicate=name,
            action=action,
            deltas=len(batch),
        ):
            NDlogEngine._process_batch(self, name, action, batch)

    def _traced_fire_rules(self, firings, delta: Delta) -> None:
        with self.tracer.span(
            "plan.exec",
            cat="engine",
            host=self.address,
            predicate=delta.fact.name,
            action=delta.action,
            rule=",".join(firing.rule.label for firing in firings),
        ):
            NDlogEngine._fire_rules(self, firings, delta)

    def _traced_process_window(self, window: List[Delta]) -> None:
        with self.tracer.span(
            "engine.columnar.window",
            cat="engine",
            host=self.address,
            deltas=len(window),
        ):
            _columnar_process_window(self, window, tracer=self.tracer)

    # ------------------------------------------------------------------ #
    # external updates
    # ------------------------------------------------------------------ #
    def insert(self, fact: Fact, annotation: Any = None) -> None:
        """Enqueue insertion of a base or derived *fact* at this node."""
        if annotation is None and self.annotation_policy is not None:
            annotation = self.annotation_policy.base(fact)
        self.enqueue(Delta(INSERT, fact, annotation))

    def delete(self, fact: Fact) -> None:
        """Enqueue deletion of *fact* at this node."""
        self.enqueue(Delta(DELETE, fact))

    def enqueue(self, delta: Delta) -> None:
        """Add *delta* to this node's FIFO processing queue."""
        self._queue.append(delta)

    def receive(self, delta: Delta) -> None:
        """Entry point for deltas arriving from the network."""
        self.stats["deltas_received"] += 1
        self.enqueue(delta)

    @property
    def pending(self) -> int:
        """Number of deltas waiting in the local queue."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # evaluation loop
    # ------------------------------------------------------------------ #
    def run(self, max_steps: Optional[int] = None) -> int:
        """Process queued deltas until the queue drains (local fixpoint).

        Returns the number of deltas processed.  ``max_steps`` bounds the
        work done in one call, which the simulator uses to interleave nodes.

        The batched pipeline drains maximal runs of *consecutive* deltas
        sharing one (predicate, action) pair and processes them together.
        Derived deltas always join the back of the queue, exactly as when
        they are produced one delta at a time, so batching changes dispatch
        cost only — never processing order or results.

        The columnar pipeline drains whole queue *windows* and hands them to
        the vectorized kernels (:mod:`repro.datalog.plan.columnar`); every
        buffered emission rejoins the queue in exact per-tuple order, so it
        too is bit-identical.  Configurations the kernels cannot vectorize
        (annotation policies, rule listeners, the naive planner) run the
        batched loop below unchanged.
        """
        if (
            self._columnar
            and self.annotation_policy is None
            and not self._rule_listeners
        ):
            queue = self._queue
            steps = 0
            while queue:
                if max_steps is not None:
                    limit = max_steps - steps
                    if limit <= 0:
                        break
                    if limit < len(queue):
                        window = [queue.popleft() for _ in range(limit)]
                    else:
                        window = list(queue)
                        queue.clear()
                else:
                    window = list(queue)
                    queue.clear()
                self._process_window(window)
                steps += len(window)
            return steps
        if not self._batched:
            steps = 0
            while self._queue:
                if max_steps is not None and steps >= max_steps:
                    break
                delta = self._queue.popleft()
                self._process_delta(delta)
                steps += 1
            return steps
        queue = self._queue
        stats = self.stats
        event_names = self._event_names
        steps = 0
        while queue:
            if max_steps is not None and steps >= max_steps:
                break
            delta = queue.popleft()
            fact = delta.fact
            name = fact.name
            action = delta.action
            limit = None if max_steps is None else max_steps - steps
            if queue and (limit is None or limit >= 2):
                head = queue[0]
                if head.fact.name == name and head.action == action:
                    # A run of same-(predicate, action) deltas: drain it and
                    # process with one dispatch.  `limit` bounds the batch so
                    # run(max_steps=N) never processes more than N deltas.
                    batch = [delta, queue.popleft()]
                    while queue and (limit is None or len(batch) < limit):
                        head = queue[0]
                        if head.fact.name != name or head.action != action:
                            break
                        batch.append(queue.popleft())
                    self._process_batch(name, action, batch)
                    steps += len(batch)
                    continue
            # Singleton: skip the batch list entirely.
            stats["deltas_processed"] += 1
            is_event = event_names.get(name)
            if is_event is None:
                is_event = event_names[name] = is_event_predicate(name)
            firings = self._firings_by_predicate.get(name, ())
            if is_event:
                if firings:
                    self._fire_rules(firings, delta)
            else:
                table = self.catalog.table(name, fact.arity)
                if action == INSERT:
                    self._apply_insert(table, firings, delta)
                elif action == DELETE:
                    self._apply_delete(table, firings, delta)
                else:
                    self._apply_refresh(table, firings, delta)
            steps += 1
        return steps

    def _process_window(self, window: List[Delta]) -> None:
        """Evaluate one drained queue window through the columnar kernels."""
        _columnar_process_window(self, window)

    def columnar_stats(self) -> Dict[str, int]:
        """Snapshot of the ``engine.columnar.*`` observability counters."""
        return dict(self.columnar_counters)

    def _process_batch(self, name: str, action: str, batch: List[Delta]) -> None:
        """Apply one (predicate, action) run of deltas, strictly in order."""
        self.stats["deltas_processed"] += len(batch)
        firings = self._firings_by_predicate.get(name, ())
        is_event = self._event_names.get(name)
        if is_event is None:
            is_event = self._event_names[name] = is_event_predicate(name)
        if is_event:
            # Events are transient: they trigger rules but never materialize.
            # Deletion deltas flow through events too, so that cascaded
            # deletions reach the prov / ruleExec tables maintained by the
            # provenance rewrite (Section 4.2.1).
            if firings:
                for delta in batch:
                    self._fire_rules(firings, delta)
            return
        table = self.catalog.table(name, batch[0].fact.arity)
        if action == INSERT:
            for delta in batch:
                self._apply_insert(table, firings, delta)
        elif action == DELETE:
            for delta in batch:
                self._apply_delete(table, firings, delta)
        else:
            for delta in batch:
                self._apply_refresh(table, firings, delta)

    def _process_delta(self, delta: Delta) -> None:
        """Legacy single-delta processing (``pipeline="delta"``)."""
        self.stats["deltas_processed"] += 1
        fact = delta.fact
        name = fact.name
        firings = self._firings_by_predicate.get(name, ())
        if is_event_predicate(name):
            self._fire_rules(firings, delta)
            return
        table = self.catalog.table(name, fact.arity)
        if delta.is_refresh:
            self._apply_refresh(table, firings, delta)
        elif delta.is_insert:
            self._apply_insert(table, firings, delta)
        else:
            self._apply_delete(table, firings, delta)

    # ------------------------------------------------------------------ #
    # delta application (shared by both pipelines)
    # ------------------------------------------------------------------ #
    def _apply_insert(self, table: Table, firings, delta: Delta) -> None:
        fact = delta.fact
        outcome = table.insert(fact.values)
        if outcome.replaced is not None:
            self._clear_annotation(outcome.replaced)
            if self._update_listeners:
                self._notify_update(DELETE, outcome.replaced)
            self._fire_rules(firings, Delta(DELETE, outcome.replaced))
        annotation_changed = False
        if self.annotation_policy is not None and delta.annotation is not None:
            annotation_changed = self._store_annotation(fact, delta.annotation)
        if outcome.became_visible:
            if self._update_listeners:
                self._notify_update(INSERT, fact)
            self._fire_rules(firings, delta)
        elif annotation_changed and self.annotation_policy.propagate_updates:
            # Value-based provenance: a new alternative derivation changed
            # this tuple's annotation, so the update must be propagated to
            # everything derived from it.
            self._fire_rules(
                firings, Delta(REFRESH, fact, self._lookup_annotation(fact))
            )

    def _apply_delete(self, table: Table, firings, delta: Delta) -> None:
        fact = delta.fact
        outcome = table.delete(fact.values)
        if outcome.became_invisible:
            self._clear_annotation(fact)
            if self._update_listeners:
                self._notify_update(DELETE, fact)
            self._fire_rules(firings, delta)

    def _apply_refresh(self, table: Table, firings, delta: Delta) -> None:
        # Annotation update for a tuple that is (normally) already stored.
        if self.annotation_policy is None or delta.annotation is None:
            return
        fact = delta.fact
        if fact.values not in table:
            # The refresh raced ahead of the insert (deltas from different
            # derivations interleave freely).  Apply it as an insert *at
            # this queue position*: re-enqueueing at the back would let the
            # converted insert jump behind deltas that arrived after it —
            # and behind the rest of its own batch — reordering annotation
            # merges relative to FIFO arrival order.
            self._apply_insert(table, firings, Delta(INSERT, fact, delta.annotation))
            return
        changed = self._store_annotation(fact, delta.annotation)
        if changed:
            self._fire_rules(
                firings, Delta(REFRESH, fact, self._lookup_annotation(fact))
            )

    def _notify_update(self, action: str, fact: Fact) -> None:
        for listener in self._update_listeners:
            listener(action, fact)

    def _trigger_rules(self, delta: Delta) -> None:
        firings = self._firings_by_predicate.get(delta.fact.name, ())
        if firings:
            self._fire_rules(firings, delta)

    def _fire_rules(self, firings, delta: Delta) -> None:
        """Fire every registered (rule, position) for *delta*'s predicate.

        The batched pipeline routes matches through the closure-compiled
        plan executors; the legacy pipeline (and the naive planner) use the
        interpreted path.  Both preserve rule registration order, so head
        deltas are enqueued identically.
        """
        if self._fast:
            values = delta.fact.values
            for firing in firings:
                plan = firing.plan
                if plan is None:
                    # Plan not compiled yet (rule added outside add_rule's
                    # greedy path); match generically, then compile.
                    self._evaluate_delta_rule(firing.rule, firing.position, delta)
                    continue
                fused = plan.fused_exec
                if fused is not None:
                    # Fully fused path (zero- and one-step plans): trigger
                    # match + probe + literals + emission in one generated
                    # function, no binding dict.  Such plans never go stale
                    # (staleness needs >= 2 reorderable steps).
                    fused(plan, self, values, delta)
                    continue
                binder = plan.trigger_binder
                if binder is not None:
                    binding = binder(values)
                else:
                    binding = self._match_atom(plan.trigger_atom, values, {})
                if binding is None:
                    continue
                # Staleness re-check mirrors _plan_for: only after a trigger
                # match, so `executions` counts (and recompile points) are
                # identical to the legacy pipeline's.
                if (
                    plan.multi_step
                    and plan.executions % STALENESS_CHECK_PERIOD == 0
                    and plan.is_stale(self._statistics)
                ):
                    plan = self._plan_compiler.compile(firing.rule, firing.position)
                    plan.executions = 1  # keep the staleness period aligned
                    firing.plan = plan
                    self._plans[(id(firing.rule), firing.position)] = plan
                    self.stats["plans_recompiled"] += 1
                plan.execute(self, delta, binding)
            return
        for firing in firings:
            self._evaluate_delta_rule(firing.rule, firing.position, delta)

    # ------------------------------------------------------------------ #
    # delta-rule evaluation (interpreted path)
    # ------------------------------------------------------------------ #
    def _evaluate_delta_rule(self, rule: Rule, position: int, delta: Delta) -> None:
        body_atoms = rule.body_atoms
        trigger_atom = body_atoms[position]
        binding = self._match_atom(trigger_atom, delta.fact.values, {})
        if binding is None:
            return
        if self.planner == "greedy":
            plan = self._plan_for(rule, position)
            if self._batched:
                plan.execute(self, delta, binding)
            else:
                plan.execute_interpreted(self, delta, binding)
            return
        partial = [(trigger_atom, delta.fact)]
        self._join_remaining(rule, body_atoms, position, binding, partial, delta)

    def _plan_for(self, rule: Rule, position: int) -> CompiledDeltaPlan:
        """Fetch the compiled plan, recompiling when cardinalities drifted.

        Plans are compiled at :meth:`add_rule` time with whatever the tables
        held then (usually nothing).  Multi-step plans are therefore
        re-costed periodically against live cardinalities — a different join
        order never changes results, only scan counts.
        """
        plan = self._plans.get((id(rule), position))
        if plan is None:
            plan = self._plan_compiler.compile(rule, position)
            self._plans[(id(rule), position)] = plan
            self.stats["plans_compiled"] += 1
            return plan
        if plan.should_check_staleness() and plan.is_stale(self._statistics):
            plan = self._plan_compiler.compile(rule, position)
            plan.executions = 1  # keep the staleness check period aligned
            self._plans[(id(rule), position)] = plan
            self.stats["plans_recompiled"] += 1
        return plan

    def _join_remaining(
        self,
        rule: Rule,
        body_atoms: Tuple[Atom, ...],
        trigger_position: int,
        binding: Dict[str, Any],
        matched: List[Tuple[Atom, Fact]],
        delta: Delta,
        next_index: int = 0,
    ) -> None:
        """Naive depth-first nested-loop join of the remaining body atoms.

        This is the ``planner="naive"`` baseline: atoms are joined strictly
        left to right and every candidate row of each body table is examined
        with no secondary-index support — the textbook strategy the planner
        subsystem (:mod:`repro.datalog.plan`) is measured against.

        Note this is deliberately *not* the pre-planner engine's code path,
        which already constrained lookups with lazily-built hash indexes;
        that behaviour lives on inside the greedy planner (which adds join
        ordering, eager index registration, expression constraints and
        condition pushdown on top).  Benchmark numbers comparing the two
        planners therefore quantify the full cost of unindexed evaluation,
        not the delta against the previous engine.
        """
        index = next_index
        while index < len(body_atoms) and (
            index == trigger_position or body_atoms[index] is None
        ):
            index += 1
        if index >= len(body_atoms):
            self._finalize_binding(rule, binding, matched, delta)
            return
        atom = body_atoms[index]
        table = self.catalog.table(atom.name)
        self.stats["full_scans"] += 1
        scanned = 0
        for row in table.rows():
            scanned += 1
            extended = self._match_atom(atom, row, binding)
            if extended is None:
                continue
            fact = Fact(atom.name, row, atom.location_index)
            self._join_remaining(
                rule,
                body_atoms,
                trigger_position,
                extended,
                matched + [(atom, fact)],
                delta,
                index + 1,
            )
        self.stats["tuples_scanned"] += scanned

    def _match_atom(
        self, atom: Atom, values: Sequence[Any], binding: Mapping[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """Unify *atom*'s arguments with *values*, extending *binding*."""
        if len(values) != len(atom.args):
            return None
        extended = dict(binding)
        for arg, value in zip(atom.args, values):
            if isinstance(arg, Variable):
                if arg.is_wildcard:
                    continue
                bound = extended.get(arg.name, _UNBOUND)
                if bound is _UNBOUND:
                    extended[arg.name] = value
                elif bound != value:
                    return None
            elif isinstance(arg, Constant):
                if arg.value != value:
                    return None
            else:
                # expression argument: must be evaluable under current binding
                try:
                    expected = arg.evaluate(extended, self.functions)
                except EvaluationError:
                    return None
                if expected != value:
                    return None
        return extended

    def _finalize_binding(
        self,
        rule: Rule,
        binding: Dict[str, Any],
        matched: List[Tuple[Atom, Fact]],
        delta: Delta,
    ) -> None:
        """Evaluate assignments and conditions, then emit the head delta."""
        env = dict(binding)
        for literal in rule.body:
            if isinstance(literal, Assignment):
                try:
                    env[literal.variable.name] = literal.expression.evaluate(
                        env, self.functions
                    )
                except EvaluationError as exc:
                    raise EvaluationError(
                        f"rule {rule.label}: failed to evaluate {literal}: {exc}"
                    ) from exc
            elif isinstance(literal, Condition):
                try:
                    if not literal.expression.evaluate(env, self.functions):
                        return
                except EvaluationError as exc:
                    raise EvaluationError(
                        f"rule {rule.label}: failed to evaluate {literal}: {exc}"
                    ) from exc
        body_facts = tuple(fact for _, fact in matched)
        if rule.label in self._aggregate_rules:
            self._apply_aggregate(rule, env, body_facts, delta)
            return
        head_values = self._evaluate_head(rule.head, env)
        head_fact = Fact(rule.head.name, head_values, rule.head.location_index)
        self._emit(rule, delta.action, head_fact, env, body_facts, delta)

    def _evaluate_head(self, head: Atom, env: Mapping[str, Any]) -> List[Any]:
        values: List[Any] = []
        for arg in head.args:
            if isinstance(arg, AggregateSpec):
                raise EvaluationError(
                    "aggregate head attribute reached scalar evaluation"
                )
            values.append(arg.evaluate(env, self.functions))
        return values

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #
    def _apply_aggregate(
        self,
        rule: Rule,
        env: Mapping[str, Any],
        body_facts: Tuple[Fact, ...],
        delta: Delta,
    ) -> None:
        compiled = self._aggregate_rules[rule.label]
        spec = compiled.spec
        group_values: List[Any] = [fn(env, self.functions) for fn in compiled.group_fns]
        # Fast path: scalar group values (the common case) key directly; an
        # unhashable tuple means a list member, which freezes to the same
        # key form the slow path always produced.
        group_key = tuple(group_values)
        try:
            hash(group_key)
        except TypeError:
            group_key = tuple(
                tuple(v) if isinstance(v, list) else v for v in group_values
            )
        if spec.is_star:
            aggregated_value: Any = 1
        elif len(spec.variables_) == 1:
            aggregated_value = env[spec.variables_[0]]
        else:
            aggregated_value = tuple(env[name] for name in spec.variables_)
        state = compiled.groups.get(group_key)
        if state is None:
            state = AggregateState(spec.func)
            compiled.groups[group_key] = state
        if delta.is_refresh:
            # Annotation refresh: the group's membership is unchanged, but the
            # annotation of the currently-emitted row must be re-propagated.
            emitted_row = compiled.emitted.get(group_key)
            if emitted_row is not None:
                emitted_fact = Fact(rule.head.name, emitted_row, rule.head.location_index)
                self._emit(rule, REFRESH, emitted_fact, env, body_facts, delta)
            return
        if delta.is_insert:
            state.insert(aggregated_value)
        else:
            state.delete(aggregated_value)

        old_row = compiled.emitted.get(group_key)
        new_row: Optional[Tuple[Any, ...]] = None
        if not state.is_empty or spec.func in ("count", "sum"):
            if state.is_empty and spec.func in ("count", "sum"):
                new_row = None
            else:
                aggregate_result = state.current()
                row: List[Any] = []
                group_iter = iter(group_values)
                for index in range(len(rule.head.args)):
                    if index == compiled.aggregate_index:
                        row.append(aggregate_result)
                    else:
                        row.append(next(group_iter))
                new_row = tuple(
                    tuple(v) if isinstance(v, list) else v for v in row
                )
        if new_row == old_row:
            return
        if old_row is not None:
            old_fact = Fact(rule.head.name, old_row, rule.head.location_index)
            self._emit(rule, DELETE, old_fact, env, body_facts, delta)
            del compiled.emitted[group_key]
        if new_row is not None:
            new_fact = Fact(rule.head.name, new_row, rule.head.location_index)
            compiled.emitted[group_key] = new_row
            self._emit(rule, INSERT, new_fact, env, body_facts, delta)

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def _emit(
        self,
        rule: Rule,
        action: str,
        head_fact: Fact,
        env: Mapping[str, Any],
        body_facts: Tuple[Fact, ...],
        source_delta: Delta,
    ) -> None:
        self.stats["rule_firings"] += 1
        if self._rule_listeners and action != REFRESH:
            firing = RuleFiring(
                rule=rule,
                action=action,
                head_fact=head_fact,
                body_facts=body_facts,
                binding=dict(env),
                node=self.address,
            )
            for listener in self._rule_listeners:
                listener(firing)

        annotation = None
        if self.annotation_policy is not None and action in (INSERT, REFRESH):
            body_annotations = [
                self._annotation_for(fact, source_delta) for fact in body_facts
            ]
            annotation = self.annotation_policy.combine(
                rule, body_annotations, self.address
            )

        destination = head_fact.values[head_fact.location_index]
        # Construct the delta without __init__: `action` was validated when
        # the source delta (or aggregate emission constant) was built.
        delta = _new_delta(Delta)
        delta.action = action
        delta.fact = head_fact
        delta.annotation = annotation
        if destination == self.address:
            self._queue.append(delta)
        else:
            self.stats["deltas_sent"] += 1
            if self._send is None:
                raise EvaluationError(
                    f"rule {rule.label} derived remote tuple {head_fact} but no "
                    "send callback is configured"
                )
            self._send(destination, delta)

    # ------------------------------------------------------------------ #
    # annotations (value-based provenance support)
    # ------------------------------------------------------------------ #
    def _annotation_key(self, fact: Fact) -> Tuple[str, Tuple[Any, ...]]:
        values = fact.values
        try:
            hash(values)
        except TypeError:
            values = tuple(_hashable(v) for v in values)
        return (fact.name, values)

    def _store_annotation(self, fact: Fact, annotation: Any) -> bool:
        """Merge *annotation* into the store; return True when it changed."""
        key = self._annotation_key(fact)
        existing = self._annotations.get(key)
        if existing is None:
            self._annotations[key] = annotation
            return True
        merged = self.annotation_policy.merge(existing, annotation)
        self._annotations[key] = merged
        return not self._annotations_equal(existing, merged)

    @staticmethod
    def _annotations_equal(left: Any, right: Any) -> bool:
        try:
            return bool(left == right)
        except Exception:  # pragma: no cover - exotic annotation types
            return left is right

    def _merge_annotation(self, fact: Fact, annotation: Any) -> None:
        self._store_annotation(fact, annotation)

    def _lookup_annotation(self, fact: Fact) -> Any:
        return self._annotations.get(self._annotation_key(fact))

    def _clear_annotation(self, fact: Fact) -> None:
        if self._annotations:
            self._annotations.pop(self._annotation_key(fact), None)

    def _annotation_for(self, fact: Fact, source_delta: Delta) -> Any:
        if (
            fact.name == source_delta.fact.name
            and tuple(fact.values) == tuple(source_delta.fact.values)
            and source_delta.annotation is not None
        ):
            return source_delta.annotation
        stored = self._lookup_annotation(fact)
        if stored is not None:
            return stored
        if self.annotation_policy is not None:
            return self.annotation_policy.base(fact)
        return None

    def annotation_of(self, fact: Fact) -> Any:
        """Public accessor for a stored value-based provenance annotation."""
        return self._lookup_annotation(fact)

    # ------------------------------------------------------------------ #
    # convenience queries
    # ------------------------------------------------------------------ #
    def table_rows(self, name: str) -> List[Tuple[Any, ...]]:
        """Return the rows of local table *name* (sorted, for stable tests)."""
        table = self.catalog.table(name)
        return sorted(table.rows(), key=repr)

    def has_fact(self, name: str, values: Sequence[Any]) -> bool:
        return tuple(values) in self.catalog.table(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NDlogEngine(address={self.address!r}, rules={len(self.rules)})"


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()

#: Raw allocator used by _emit to skip Delta.__init__ validation for
#: internally-constructed deltas (their action is always already valid).
_new_delta = Delta.__new__


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value
