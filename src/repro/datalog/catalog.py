"""Relation storage for a single NDlog node.

Each node in the network owns a :class:`Catalog` of :class:`Table` objects.
A table stores only the tuples whose location specifier equals the owning
node's address — this is the horizontal partitioning described throughout
the ExSPAN paper (e.g. the ``prov`` relation is "distributed across nodes,
partitioned based on the location specifier Loc").

Tables implement *derivation counting*: inserting an already-present fact
increments its count instead of duplicating it, and deleting decrements the
count, only removing the fact when the count reaches zero.  This is the
standard bookkeeping used by the pipelined semi-naive (PSN) evaluation to
handle tuples with multiple derivations.

Tables optionally declare primary-key positions.  When a new fact shares the
primary key of an existing fact with different non-key attributes, the old
fact is *replaced* (an update), which mirrors RapidNet's ``materialize``
semantics and is relied upon by routing tables such as ``bestHop``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .ast import Fact, TableDecl
from .errors import SchemaError

__all__ = ["Table", "Catalog", "InsertOutcome", "DeleteOutcome"]


@dataclass(frozen=True)
class InsertOutcome:
    """Result of a table insert.

    ``became_visible`` is True when the fact was not previously present
    (count went 0 -> 1) and therefore must be propagated to dependent rules.
    ``replaced`` holds a fact evicted by primary-key update semantics, which
    the engine must propagate as a deletion.
    """

    became_visible: bool
    replaced: Optional[Fact] = None


@dataclass(frozen=True)
class DeleteOutcome:
    """Result of a table delete.

    ``became_invisible`` is True when the count reached zero and the fact was
    actually removed, requiring downstream deletion propagation.
    """

    became_invisible: bool
    was_present: bool


class Table:
    """A horizontally-partitioned relation fragment stored at one node."""

    def __init__(
        self,
        name: str,
        arity: Optional[int] = None,
        key_positions: Sequence[int] = (),
        location_index: int = 0,
    ):
        self.name = name
        self.arity = arity
        self.key_positions: Tuple[int, ...] = tuple(key_positions)
        self.location_index = location_index
        # full tuple -> derivation count
        self._rows: Dict[Tuple[Any, ...], int] = {}
        # primary key -> full tuple (only when key_positions declared)
        self._by_key: Dict[Tuple[Any, ...], Tuple[Any, ...]] = {}
        # (positions) -> {values -> ordered set (dict) of full tuples}.
        # Buckets are insertion-ordered dicts, NOT sets: indexed lookups must
        # enumerate rows in the same order a full scan of ``_rows`` would, so
        # that planned and naive evaluation break equal-cost ties (e.g. two
        # best paths of the same length) identically.
        self._indexes: Dict[
            Tuple[int, ...], Dict[Tuple[Any, ...], Dict[Tuple[Any, ...], None]]
        ] = {}

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _check_arity(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        row = tuple(_freeze(v) for v in values)
        if self.arity is None:
            self.arity = len(row)
        elif len(row) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} expects arity {self.arity}, "
                f"got {len(row)}"
            )
        return row

    def _key_of(self, row: Tuple[Any, ...]) -> Optional[Tuple[Any, ...]]:
        if not self.key_positions:
            return None
        return tuple(row[i] for i in self.key_positions)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def insert(self, values: Sequence[Any]) -> InsertOutcome:
        """Insert one derivation of *values*; see :class:`InsertOutcome`."""
        row = self._check_arity(values)
        replaced: Optional[Fact] = None
        key = self._key_of(row)
        if key is not None:
            existing = self._by_key.get(key)
            if existing is not None and existing != row:
                # primary-key update: evict the old row entirely
                self._remove_row(existing)
                replaced = Fact(self.name, existing, self.location_index)
            self._by_key[key] = row
        count = self._rows.get(row, 0)
        self._rows[row] = count + 1
        if count == 0:
            self._index_add(row)
        return InsertOutcome(became_visible=(count == 0), replaced=replaced)

    def delete(self, values: Sequence[Any]) -> DeleteOutcome:
        """Remove one derivation of *values*; see :class:`DeleteOutcome`."""
        row = self._check_arity(values)
        count = self._rows.get(row)
        if count is None:
            return DeleteOutcome(became_invisible=False, was_present=False)
        if count <= 1:
            self._remove_row(row)
            return DeleteOutcome(became_invisible=True, was_present=True)
        self._rows[row] = count - 1
        return DeleteOutcome(became_invisible=False, was_present=True)

    def delete_all(self, values: Sequence[Any]) -> DeleteOutcome:
        """Remove every derivation of *values* regardless of count."""
        row = self._check_arity(values)
        if row not in self._rows:
            return DeleteOutcome(became_invisible=False, was_present=False)
        self._remove_row(row)
        return DeleteOutcome(became_invisible=True, was_present=True)

    def _remove_row(self, row: Tuple[Any, ...]) -> None:
        self._rows.pop(row, None)
        key = self._key_of(row)
        if key is not None and self._by_key.get(key) == row:
            del self._by_key[key]
        self._index_remove(row)

    def clear(self) -> None:
        self._rows.clear()
        self._by_key.clear()
        self._indexes.clear()

    # ------------------------------------------------------------------ #
    # indexes
    # ------------------------------------------------------------------ #
    def _index_add(self, row: Tuple[Any, ...]) -> None:
        for positions, index in self._indexes.items():
            if positions and positions[-1] >= len(row):
                continue  # row too short for this index; it can never match
            index.setdefault(tuple(row[i] for i in positions), {})[row] = None

    def _index_remove(self, row: Tuple[Any, ...]) -> None:
        for positions, index in self._indexes.items():
            if positions and positions[-1] >= len(row):
                continue
            key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.pop(row, None)
                if not bucket:
                    del index[key]

    def _ensure_index(
        self, positions: Tuple[int, ...]
    ) -> Dict[Tuple[Any, ...], Dict[Tuple[Any, ...], None]]:
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self._rows:
                if positions and positions[-1] >= len(row):
                    continue
                index.setdefault(tuple(row[i] for i in positions), {})[row] = None
            self._indexes[positions] = index
        return index

    def ensure_index(self, positions: Sequence[int]) -> None:
        """Materialize a secondary hash index over *positions* now.

        The index is maintained incrementally by every subsequent insert and
        delete.  The query planner registers the indexes its compiled plans
        will use through this entry point so the first delta does not pay a
        lazy build inside the evaluation loop.
        """
        canonical = tuple(sorted(set(int(p) for p in positions)))
        if not canonical:
            return
        if canonical[0] < 0:
            raise SchemaError(
                f"relation {self.name!r}: negative index position {canonical[0]}"
            )
        if self.arity is not None and canonical[-1] >= self.arity:
            raise SchemaError(
                f"relation {self.name!r} has arity {self.arity}; cannot index "
                f"position {canonical[-1]}"
            )
        self._ensure_index(canonical)

    def has_index(self, positions: Sequence[int]) -> bool:
        return tuple(sorted(set(positions))) in self._indexes

    def index_position_sets(self) -> List[Tuple[int, ...]]:
        """The position sets currently indexed, sorted (for explain/stats)."""
        return sorted(self._indexes)

    def index_size(self, positions: Sequence[int]) -> int:
        """Number of rows held by the index over *positions* (0 if absent)."""
        index = self._indexes.get(tuple(sorted(set(positions))))
        if not index:
            return 0
        return sum(len(bucket) for bucket in index.values())

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __contains__(self, values: Sequence[Any]) -> bool:
        return tuple(_freeze(v) for v in values) in self._rows

    def count(self, values: Sequence[Any]) -> int:
        """Return the derivation count for *values* (0 if absent)."""
        return self._rows.get(tuple(_freeze(v) for v in values), 0)

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over distinct rows (ignoring derivation counts)."""
        return iter(list(self._rows))

    def facts(self) -> Iterator[Fact]:
        for row in self.rows():
            yield Fact(self.name, row, self.location_index)

    def lookup(self, bound: Dict[int, Any]) -> Iterator[Tuple[Any, ...]]:
        """Yield rows whose attributes match the {position: value} constraints.

        Uses (and lazily builds) a hash index over the constrained positions
        whenever at least one position is constrained.
        """
        if not bound:
            yield from self.rows()
            return
        positions = tuple(sorted(bound))
        index = self._ensure_index(positions)
        key = tuple(_freeze(bound[i]) for i in positions)
        for row in list(index.get(key, ())):
            yield row

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, rows={len(self._rows)})"


def _freeze(value: Any) -> Any:
    """Convert mutable containers to hashable equivalents for storage."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    return value


class Catalog:
    """The set of tables owned by a single node."""

    def __init__(self, declarations: Iterable[TableDecl] = ()):
        self._tables: Dict[str, Table] = {}
        for decl in declarations:
            self.declare(decl)

    def declare(self, decl: TableDecl) -> Table:
        table = Table(decl.name, decl.arity, decl.key_positions)
        self._tables[decl.name] = table
        return table

    def table(self, name: str, arity: Optional[int] = None) -> Table:
        """Return the table for *name*, creating it on first use."""
        table = self._tables.get(name)
        if table is None:
            table = Table(name, arity)
            self._tables[name] = table
        return table

    def get(self, name: str) -> Optional[Table]:
        """Return the table for *name* without creating it (None if absent).

        The planner's statistics use this: costing a rule must not litter
        the catalog with empty tables for relations (e.g. transient events)
        that evaluation itself would never materialize.
        """
        return self._tables.get(name)

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def names(self) -> List[str]:
        return sorted(self._tables)

    def total_rows(self) -> int:
        return sum(len(table) for table in self._tables.values())

    def __getitem__(self, name: str) -> Table:
        return self.table(name)

    def __contains__(self, name: str) -> bool:
        return name in self._tables
