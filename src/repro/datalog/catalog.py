"""Relation storage for a single NDlog node (compatibility re-export).

The interned-row :class:`Table` / :class:`Catalog` machinery moved to
:mod:`repro.storage.memory` when the pluggable storage engine landed —
storage is a subsystem of its own now, with the in-RAM tier as its default
backend and sqlite as the durable one.  This module keeps the historical
``repro.datalog.catalog`` import surface working unchanged; see the new
home for the full documentation.
"""

from __future__ import annotations

from ..storage.memory import (
    Catalog,
    DeleteOutcome,
    InsertOutcome,
    InternedRow,
    Table,
    _freeze,
    _subkey_getter,
    freeze_value,
)

__all__ = [
    "InternedRow",
    "Table",
    "Catalog",
    "InsertOutcome",
    "DeleteOutcome",
    "freeze_value",
]
