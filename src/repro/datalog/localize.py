"""Rule localization checks.

Declarative networking requires *localized* rules before distributed
execution: every body predicate of a rule must share a single location
specifier so the rule's joins can be evaluated at one node; the head may
reside at a different node, in which case the derivation is shipped there.

The programs in the ExSPAN paper (MINCOST, PATHVECTOR, PACKETFORWARD and the
rewritten provenance rules) are already localized.  This module provides the
validation pass the engine runs before accepting a program, plus a helper to
report which rules produce cross-node traffic (useful for documentation and
the experiment harness).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import Program, Rule
from .errors import ValidationError
from .terms import Constant, Variable

__all__ = ["check_localized", "is_localized", "remote_head_rules", "body_location"]


def body_location(rule: Rule) -> Optional[str]:
    """Return the common body location variable/constant of *rule*.

    Returns ``None`` for rules with no body atoms (fact-like rules).
    Raises :class:`ValidationError` when body atoms disagree on location.
    """
    location: Optional[str] = None
    for atom in rule.body_atoms:
        term = atom.location_term
        if isinstance(term, Variable):
            name = term.name
        elif isinstance(term, Constant):
            name = f"<{term.value!r}>"
        else:
            raise ValidationError(
                f"rule {rule.label}: location specifier of {atom.name} must be "
                "a variable or constant"
            )
        if location is None:
            location = name
        elif location != name:
            raise ValidationError(
                f"rule {rule.label} is not localized: body atoms use location "
                f"specifiers {location!r} and {name!r}"
            )
    return location


def is_localized(rule: Rule) -> bool:
    """Return True when *rule* is localized (single body location)."""
    try:
        body_location(rule)
    except ValidationError:
        return False
    return True


def check_localized(program: Program) -> None:
    """Validate that every rule of *program* is localized."""
    for rule in program.rules:
        body_location(rule)


def remote_head_rules(program: Program) -> List[Tuple[Rule, str, str]]:
    """Return rules whose head lives at a different node than the body.

    Each entry is ``(rule, body_location, head_location)`` using variable
    names; these are the rules that generate network messages when executed.
    """
    remote: List[Tuple[Rule, str, str]] = []
    for rule in program.rules:
        body_loc = body_location(rule)
        if body_loc is None:
            continue
        head_term = rule.head.location_term
        if isinstance(head_term, Variable):
            head_loc = head_term.name
        elif isinstance(head_term, Constant):
            head_loc = f"<{head_term.value!r}>"
        else:
            head_loc = str(head_term)
        if head_loc != body_loc:
            remote.append((rule, body_loc, head_loc))
    return remote
